//! Randomized property tests: every engine is an exact range-query oracle.
//!
//! Deterministic SplitMix64-driven instance loops; fixed seeds make every
//! failure exactly reproducible.

use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;
use dbsvec_index::{CountingIndex, GridIndex, KdTree, LinearScan, RStarTree, RangeIndex};

fn point_set(rng: &mut SplitMix64, max_n: usize, max_d: usize) -> PointSet {
    let d = 1 + rng.next_below(max_d as u64) as usize;
    let n = 1 + rng.next_below(max_n as u64) as usize;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            (0..d)
                .map(|_| rng.next_f64_range(-1000.0, 1000.0))
                .collect()
        })
        .collect();
    PointSet::from_rows(&rows)
}

#[test]
fn count_equals_materialized_for_every_engine() {
    let mut rng = SplitMix64::new(0x1DEA);
    for _ in 0..48 {
        let ps = point_set(&mut rng, 100, 3);
        let eps = rng.next_f64_range(0.0, 500.0);
        let q = ps.point(rng.next_below(ps.len() as u64) as u32).to_vec();
        let engines: Vec<Box<dyn RangeIndex + '_>> = vec![
            Box::new(LinearScan::build(&ps)),
            Box::new(KdTree::build(&ps)),
            Box::new(RStarTree::build(&ps)),
            Box::new(GridIndex::build(&ps, eps.max(1.0))),
        ];
        let expected = engines[0].range_vec(&q, eps).len();
        for engine in &engines {
            assert_eq!(engine.count_range(&q, eps), expected);
            assert_eq!(engine.range_vec(&q, eps).len(), expected);
        }
        // The query point itself is always in its own closed neighborhood.
        assert!(expected >= 1);
    }
}

#[test]
fn results_are_unique_ids() {
    let mut rng = SplitMix64::new(0x2BAD);
    for _ in 0..48 {
        let ps = point_set(&mut rng, 80, 2);
        let eps = rng.next_f64_range(0.0, 2000.0);
        let q = ps.point(0).to_vec();
        for result in [
            KdTree::build(&ps).range_vec(&q, eps),
            RStarTree::build(&ps).range_vec(&q, eps),
            GridIndex::build(&ps, eps.max(0.5)).range_vec(&q, eps),
        ] {
            let mut sorted = result.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), result.len(), "duplicate ids reported");
        }
    }
}

#[test]
fn monotone_in_radius() {
    let mut rng = SplitMix64::new(0x3CAB);
    for _ in 0..48 {
        let ps = point_set(&mut rng, 60, 3);
        let eps = rng.next_f64_range(0.1, 300.0);
        let q = ps.point(0).to_vec();
        let tree = KdTree::build(&ps);
        let small = tree.count_range(&q, eps);
        let large = tree.count_range(&q, eps * 2.0);
        assert!(large >= small);
    }
}

#[test]
fn counting_wrapper_is_transparent() {
    let mut rng = SplitMix64::new(0x4FAB);
    for _ in 0..48 {
        let ps = point_set(&mut rng, 50, 2);
        let eps = rng.next_f64_range(0.0, 500.0);
        let q = ps.point(0).to_vec();
        let plain = KdTree::build(&ps);
        let counted = CountingIndex::new(KdTree::build(&ps));
        let mut a = plain.range_vec(&q, eps);
        let mut b = counted.range_vec(&q, eps);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(counted.stats().queries, 1);
    }
}

#[test]
fn rstar_incremental_never_loses_points() {
    let mut rng = SplitMix64::new(0x5EED);
    for _ in 0..48 {
        let ps = point_set(&mut rng, 70, 3);
        let mut tree = RStarTree::new(&ps);
        for id in 0..ps.len() as u32 {
            tree.insert(id);
        }
        // A huge ball must return every point exactly once.
        let q = vec![0.0; ps.dims()];
        let mut all = tree.range_vec(&q, 1e9);
        all.sort_unstable();
        let expected: Vec<u32> = (0..ps.len() as u32).collect();
        assert_eq!(all, expected);
    }
}
