//! Property tests: every engine is an exact range-query oracle.

use proptest::prelude::*;

use dbsvec_geometry::PointSet;
use dbsvec_index::{CountingIndex, GridIndex, KdTree, LinearScan, RStarTree, RangeIndex};

fn point_set(max_n: usize, max_d: usize) -> impl Strategy<Value = PointSet> {
    (1..=max_d).prop_flat_map(move |d| {
        prop::collection::vec(prop::collection::vec(-1000.0..1000.0f64, d), 1..=max_n)
            .prop_map(|rows| PointSet::from_rows(&rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn count_equals_materialized_for_every_engine(
        ps in point_set(100, 3),
        eps in 0.0..500.0f64,
        qidx in 0usize..100,
    ) {
        let q = ps.point((qidx % ps.len()) as u32).to_vec();
        let engines: Vec<Box<dyn RangeIndex + '_>> = vec![
            Box::new(LinearScan::build(&ps)),
            Box::new(KdTree::build(&ps)),
            Box::new(RStarTree::build(&ps)),
            Box::new(GridIndex::build(&ps, eps.max(1.0))),
        ];
        let expected = engines[0].range_vec(&q, eps).len();
        for engine in &engines {
            prop_assert_eq!(engine.count_range(&q, eps), expected);
            prop_assert_eq!(engine.range_vec(&q, eps).len(), expected);
        }
        // The query point itself is always in its own closed neighborhood.
        prop_assert!(expected >= 1);
    }

    #[test]
    fn results_are_unique_ids(ps in point_set(80, 2), eps in 0.0..2000.0f64) {
        let q = ps.point(0).to_vec();
        for result in [
            KdTree::build(&ps).range_vec(&q, eps),
            RStarTree::build(&ps).range_vec(&q, eps),
            GridIndex::build(&ps, eps.max(0.5)).range_vec(&q, eps),
        ] {
            let mut sorted = result.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), result.len(), "duplicate ids reported");
        }
    }

    #[test]
    fn monotone_in_radius(ps in point_set(60, 3), eps in 0.1..300.0f64) {
        let q = ps.point(0).to_vec();
        let tree = KdTree::build(&ps);
        let small = tree.count_range(&q, eps);
        let large = tree.count_range(&q, eps * 2.0);
        prop_assert!(large >= small);
    }

    #[test]
    fn counting_wrapper_is_transparent(ps in point_set(50, 2), eps in 0.0..500.0f64) {
        let q = ps.point(0).to_vec();
        let plain = KdTree::build(&ps);
        let counted = CountingIndex::new(KdTree::build(&ps));
        let mut a = plain.range_vec(&q, eps);
        let mut b = counted.range_vec(&q, eps);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(counted.stats().queries, 1);
    }

    #[test]
    fn rstar_incremental_never_loses_points(ps in point_set(70, 3)) {
        let mut tree = RStarTree::new(&ps);
        for id in 0..ps.len() as u32 {
            tree.insert(id);
        }
        // A huge ball must return every point exactly once.
        let q = vec![0.0; ps.dims()];
        let mut all = tree.range_vec(&q, 1e9);
        all.sort_unstable();
        let expected: Vec<u32> = (0..ps.len() as u32).collect();
        prop_assert_eq!(all, expected);
    }
}
