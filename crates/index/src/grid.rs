//! Uniform grid range-query engine.
//!
//! Points are bucketed into hypercubic cells of side `cell_width` (callers
//! typically pass ε). A range query with radius `eps <= cell_width` only
//! needs to inspect the 3^d neighborhood of the query's cell; for larger
//! radii the neighborhood widens accordingly.
//!
//! Enumerating `(2k+1)^d` neighbor cells is exponential in the
//! dimensionality, so beyond a crossover the engine switches to scanning the
//! *occupied* cells (there are at most `n` of them) and pruning each by the
//! distance from the query to the cell's box. This keeps the engine correct
//! in any dimension while staying fast in the low-dimensional regime it is
//! designed for (the paper's §II-C discussion of grid methods).

use std::collections::HashMap;

use crate::traits::RangeIndex;
use dbsvec_geometry::{PointId, PointSet};

/// Integer coordinates of a grid cell.
pub type CellCoord = Vec<i64>;

/// A uniform grid over a borrowed [`PointSet`].
pub struct GridIndex<'a> {
    points: &'a PointSet,
    cell_width: f64,
    cells: HashMap<CellCoord, Vec<PointId>>,
}

impl<'a> GridIndex<'a> {
    /// Builds the grid in O(n) expected time.
    ///
    /// # Panics
    ///
    /// Panics if `cell_width` is not strictly positive and finite.
    pub fn build(points: &'a PointSet, cell_width: f64) -> Self {
        assert!(
            cell_width.is_finite() && cell_width > 0.0,
            "cell width must be positive and finite, got {cell_width}"
        );
        let mut cells: HashMap<CellCoord, Vec<PointId>> = HashMap::new();
        for (id, p) in points.iter() {
            cells.entry(cell_of(p, cell_width)).or_default().push(id);
        }
        Self {
            points,
            cell_width,
            cells,
        }
    }

    /// Cell side length.
    pub fn cell_width(&self) -> f64 {
        self.cell_width
    }

    /// Number of occupied cells.
    pub fn occupied_cells(&self) -> usize {
        self.cells.len()
    }

    /// The ids bucketed in the cell containing `p`, if any.
    pub fn cell_points(&self, p: &[f64]) -> Option<&[PointId]> {
        self.cells
            .get(&cell_of(p, self.cell_width))
            .map(Vec::as_slice)
    }

    /// Iterates over `(cell, member ids)` pairs.
    pub fn iter_cells(&self) -> impl Iterator<Item = (&CellCoord, &[PointId])> {
        self.cells.iter().map(|(c, ids)| (c, ids.as_slice()))
    }

    /// Visits every candidate id whose cell intersects the query ball.
    fn for_each_candidate(&self, query: &[f64], eps: f64, mut f: impl FnMut(PointId)) {
        let dims = self.points.dims();
        let reach = (eps / self.cell_width).ceil() as i64;
        let cells_to_enumerate = (2 * reach + 1).pow(dims.min(10) as u32) as usize;

        if dims <= 10 && cells_to_enumerate <= 4 * self.cells.len().max(1) {
            // Enumerate the (2k+1)^d neighborhood around the query cell.
            let base = cell_of(query, self.cell_width);
            let mut offset = vec![-reach; dims];
            loop {
                let cell: CellCoord = base.iter().zip(&offset).map(|(b, o)| b + o).collect();
                if self.cell_intersects_ball(&cell, query, eps) {
                    if let Some(ids) = self.cells.get(&cell) {
                        for &id in ids {
                            f(id);
                        }
                    }
                }
                // Odometer increment over the offset vector.
                let mut carry = true;
                for slot in offset.iter_mut() {
                    *slot += 1;
                    if *slot <= reach {
                        carry = false;
                        break;
                    }
                    *slot = -reach;
                }
                if carry {
                    break;
                }
            }
        } else {
            // High dimension / wide radius: scan occupied cells instead.
            for (cell, ids) in &self.cells {
                if self.cell_intersects_ball(cell, query, eps) {
                    for &id in ids {
                        f(id);
                    }
                }
            }
        }
    }

    fn cell_intersects_ball(&self, cell: &[i64], query: &[f64], eps: f64) -> bool {
        let w = self.cell_width;
        let mut acc = 0.0;
        for (&c, &q) in cell.iter().zip(query) {
            let lo = c as f64 * w;
            let hi = lo + w;
            let diff = if q < lo {
                lo - q
            } else if q > hi {
                q - hi
            } else {
                0.0
            };
            acc += diff * diff;
            if acc > eps * eps {
                return false;
            }
        }
        true
    }
}

/// The integer cell containing `p` for the given cell width.
pub fn cell_of(p: &[f64], cell_width: f64) -> CellCoord {
    p.iter().map(|&x| (x / cell_width).floor() as i64).collect()
}

impl RangeIndex for GridIndex<'_> {
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        let eps_sq = eps * eps;
        self.for_each_candidate(query, eps, |id| {
            if self.points.squared_distance_to(id, query) <= eps_sq {
                out.push(id);
            }
        });
    }

    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        let eps_sq = eps * eps;
        let mut n = 0;
        self.for_each_candidate(query, eps, |id| {
            if self.points.squared_distance_to(id, query) <= eps_sq {
                n += 1;
            }
        });
        n
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dbsvec_geometry::rng::SplitMix64;

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::with_capacity(d, n);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for x in &mut row {
                *x = rng.next_f64() * 100.0 - 50.0; // negative coords too
            }
            ps.push(&row);
        }
        ps
    }

    #[test]
    fn matches_linear_scan_low_dim() {
        for d in [1, 2, 3] {
            let ps = random_points(500, d, 3 + d as u64);
            let grid = GridIndex::build(&ps, 10.0);
            let oracle = LinearScan::build(&ps);
            let mut rng = SplitMix64::new(17);
            for _ in 0..50 {
                let q: Vec<f64> = (0..d).map(|_| rng.next_f64() * 100.0 - 50.0).collect();
                let eps = rng.next_f64() * 25.0;
                let mut got = grid.range_vec(&q, eps);
                let mut want = oracle.range_vec(&q, eps);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "d={d} eps={eps}");
                assert_eq!(grid.count_range(&q, eps), want.len());
            }
        }
    }

    #[test]
    fn matches_linear_scan_high_dim_fallback() {
        // d = 16 forces the occupied-cell scan path.
        let ps = random_points(300, 16, 101);
        let grid = GridIndex::build(&ps, 5.0);
        let oracle = LinearScan::build(&ps);
        let mut rng = SplitMix64::new(19);
        for _ in 0..20 {
            let q: Vec<f64> = (0..16).map(|_| rng.next_f64() * 100.0 - 50.0).collect();
            let eps = rng.next_f64() * 60.0;
            let mut got = grid.range_vec(&q, eps);
            let mut want = oracle.range_vec(&q, eps);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn negative_coordinates_bucket_correctly() {
        let ps = PointSet::from_rows(&[vec![-0.5], vec![0.5], vec![-1.5]]);
        let grid = GridIndex::build(&ps, 1.0);
        assert_eq!(cell_of(&[-0.5], 1.0), vec![-1]);
        assert_eq!(grid.cell_points(&[-0.5]).unwrap(), &[0]);
        let mut hits = grid.range_vec(&[0.0], 1.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "cell width must be positive")]
    fn zero_cell_width_rejected() {
        let ps = PointSet::from_rows(&[vec![0.0]]);
        let _ = GridIndex::build(&ps, 0.0);
    }

    #[test]
    fn occupied_cell_count() {
        let ps = PointSet::from_rows(&[vec![0.1, 0.1], vec![0.2, 0.2], vec![5.0, 5.0]]);
        let grid = GridIndex::build(&ps, 1.0);
        assert_eq!(grid.occupied_cells(), 2);
        assert_eq!(grid.len(), 3);
    }
}
