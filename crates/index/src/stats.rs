//! Query-counting wrapper used by the Table II complexity experiment.

use std::cell::Cell;

use crate::traits::RangeIndex;
use dbsvec_geometry::PointId;

/// Counters accumulated by a [`CountingIndex`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of `range` / `count_range` calls issued.
    pub queries: u64,
    /// Total number of result points reported across all queries.
    pub results: u64,
}

impl QueryStats {
    /// Average result-set size per query; zero when no queries ran.
    pub fn mean_result_size(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.results as f64 / self.queries as f64
        }
    }
}

/// Wraps any [`RangeIndex`] and counts the queries flowing through it.
///
/// The paper's complexity analysis (§III-D) claims DBSVEC issues
/// `O(s + 1 + k + m + MinPts·l)` range queries versus DBSCAN's `n`; wrapping
/// both algorithms' indexes in `CountingIndex` lets the Table II harness
/// verify that claim empirically. Counters use [`Cell`] so the wrapper stays
/// usable behind the `&self` query interface (the clustering algorithms are
/// single-threaded, matching the paper's implementation).
pub struct CountingIndex<I> {
    inner: I,
    queries: Cell<u64>,
    results: Cell<u64>,
}

impl<I: RangeIndex> CountingIndex<I> {
    /// Wraps an engine with zeroed counters.
    pub fn new(inner: I) -> Self {
        Self {
            inner,
            queries: Cell::new(0),
            results: Cell::new(0),
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            queries: self.queries.get(),
            results: self.results.get(),
        }
    }

    /// Resets the counters to zero.
    pub fn reset(&self) {
        self.queries.set(0);
        self.results.set(0);
    }

    /// Unwraps the inner engine.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: RangeIndex> RangeIndex for CountingIndex<I> {
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        let before = out.len();
        self.inner.range(query, eps, out);
        self.queries.set(self.queries.get() + 1);
        self.results
            .set(self.results.get() + (out.len() - before) as u64);
    }

    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        let n = self.inner.count_range(query, eps);
        self.queries.set(self.queries.get() + 1);
        self.results.set(self.results.get() + n as u64);
        n
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dbsvec_geometry::PointSet;

    #[test]
    fn counts_queries_and_results() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let idx = CountingIndex::new(LinearScan::build(&ps));
        let mut out = Vec::new();
        idx.range(&[0.0], 1.0, &mut out);
        idx.range(&[0.0], 5.0, &mut out);
        let _ = idx.count_range(&[9.0], 0.5);
        let stats = idx.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.results, 2 + 3);
        assert!((stats.mean_result_size() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_counters() {
        let ps = PointSet::from_rows(&[vec![0.0]]);
        let idx = CountingIndex::new(LinearScan::build(&ps));
        let _ = idx.range_vec(&[0.0], 1.0);
        idx.reset();
        assert_eq!(idx.stats(), QueryStats::default());
        assert_eq!(idx.stats().mean_result_size(), 0.0);
    }

    #[test]
    fn delegates_len() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0]]);
        let idx = CountingIndex::new(LinearScan::build(&ps));
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }
}
