//! Query-counting wrapper used by the Table II complexity experiment.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::traits::RangeIndex;
use dbsvec_geometry::PointId;

/// Counters accumulated by a [`CountingIndex`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Number of `range` / `count_range` calls issued.
    pub queries: u64,
    /// Total number of result points reported across all queries.
    pub results: u64,
}

impl QueryStats {
    /// Average result-set size per query; zero when no queries ran.
    pub fn mean_result_size(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.results as f64 / self.queries as f64
        }
    }
}

/// Wraps any [`RangeIndex`] and counts the queries flowing through it.
///
/// The paper's complexity analysis (§III-D) claims DBSVEC issues
/// `O(s + 1 + k + m + MinPts·l)` range queries versus DBSCAN's `n`; wrapping
/// both algorithms' indexes in `CountingIndex` lets the Table II harness
/// verify that claim empirically. Counters use relaxed [`AtomicU64`]s so the
/// wrapper stays usable behind the `&self` query interface *and* stays
/// `Sync` — DBSVEC's parallel fit path fans range queries out across scoped
/// threads against a shared index, and the totals must still come out exact
/// (each query increments once; no ordering between queries is needed).
pub struct CountingIndex<I> {
    inner: I,
    queries: AtomicU64,
    results: AtomicU64,
}

impl<I: RangeIndex> CountingIndex<I> {
    /// Wraps an engine with zeroed counters.
    pub fn new(inner: I) -> Self {
        Self {
            inner,
            queries: AtomicU64::new(0),
            results: AtomicU64::new(0),
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            queries: self.queries.load(Ordering::Relaxed),
            results: self.results.load(Ordering::Relaxed),
        }
    }

    /// Resets the counters to zero.
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.results.store(0, Ordering::Relaxed);
    }

    /// Unwraps the inner engine.
    pub fn into_inner(self) -> I {
        self.inner
    }
}

impl<I: RangeIndex> RangeIndex for CountingIndex<I> {
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        let before = out.len();
        self.inner.range(query, eps, out);
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.results
            .fetch_add((out.len() - before) as u64, Ordering::Relaxed);
    }

    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        let n = self.inner.count_range(query, eps);
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.results.fetch_add(n as u64, Ordering::Relaxed);
        n
    }

    fn len(&self) -> usize {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dbsvec_geometry::PointSet;

    #[test]
    fn counts_queries_and_results() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let idx = CountingIndex::new(LinearScan::build(&ps));
        let mut out = Vec::new();
        idx.range(&[0.0], 1.0, &mut out);
        idx.range(&[0.0], 5.0, &mut out);
        let _ = idx.count_range(&[9.0], 0.5);
        let stats = idx.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.results, 2 + 3);
        assert!((stats.mean_result_size() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes_counters() {
        let ps = PointSet::from_rows(&[vec![0.0]]);
        let idx = CountingIndex::new(LinearScan::build(&ps));
        let _ = idx.range_vec(&[0.0], 1.0);
        idx.reset();
        assert_eq!(idx.stats(), QueryStats::default());
        assert_eq!(idx.stats().mean_result_size(), 0.0);
    }

    #[test]
    fn delegates_len() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0]]);
        let idx = CountingIndex::new(LinearScan::build(&ps));
        assert_eq!(idx.len(), 2);
        assert!(!idx.is_empty());
    }
}
