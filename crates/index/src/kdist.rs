//! k-distance profiles for choosing DBSCAN's ε.
//!
//! The standard parameterization methodology (Ester et al. 1996; refined
//! by Schubert et al. 2017, which the paper cites): plot the sorted
//! distances from each point to its k-th nearest neighbor and pick ε at
//! the "knee" — the density level separating cluster interiors from noise.
//!
//! Distances are found by a doubling radius search on any [`RangeIndex`],
//! so no dedicated k-NN structure is needed.

use dbsvec_geometry::{PointId, PointSet};

use crate::traits::RangeIndex;

/// Distance from point `id` to its `k`-th nearest *other* neighbor
/// (`k = 1` is the classic nearest neighbor).
///
/// Returns `None` when the set holds fewer than `k + 1` points.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn kth_neighbor_distance<I: RangeIndex>(
    points: &PointSet,
    index: &I,
    id: PointId,
    k: usize,
) -> Option<f64> {
    assert!(k >= 1, "k must be at least 1");
    if points.len() <= k {
        return None;
    }
    let q = points.point(id);

    // Doubling search for a radius containing at least k+1 points
    // (the query point itself is always reported).
    let mut radius = initial_radius(points);
    let mut hits: Vec<PointId> = Vec::new();
    loop {
        hits.clear();
        index.range(q, radius, &mut hits);
        if hits.len() > k {
            break;
        }
        radius *= 2.0;
        if !radius.is_finite() {
            return None; // duplicate-only data cannot reach k distinct radii
        }
    }

    let mut dists: Vec<f64> = hits
        .iter()
        .filter(|&&j| j != id)
        .map(|&j| points.squared_distance(id, j))
        .collect();
    let kth = k - 1;
    dists.select_nth_unstable_by(kth, |a, b| a.partial_cmp(b).expect("NaN distance"));
    Some(dists[kth].sqrt())
}

/// The sorted (descending) k-distance profile over a deterministic sample
/// of at most `sample` points — the curve practitioners eyeball for the
/// knee.
///
/// # Panics
///
/// Panics if `k == 0` or `sample == 0`.
pub fn k_distance_profile<I: RangeIndex>(
    points: &PointSet,
    index: &I,
    k: usize,
    sample: usize,
) -> Vec<f64> {
    assert!(sample >= 1, "sample must be at least 1");
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let stride = (n / sample).max(1);
    let mut profile: Vec<f64> = (0..n)
        .step_by(stride)
        .filter_map(|i| kth_neighbor_distance(points, index, i as PointId, k))
        .collect();
    profile.sort_by(|a, b| b.partial_cmp(a).expect("NaN distance"));
    profile
}

/// [`k_distance_profile`] with the per-point doubling searches fanned out
/// across `threads` scoped worker threads (`0` means all available cores,
/// `1` takes the exact sequential path).
///
/// The strided sample is chunked in order and the chunk results are
/// concatenated before the final sort, so the profile is identical to the
/// sequential one at every thread count: each `kth_neighbor_distance` is a
/// pure function of the immutable index, and concatenation-then-sort of an
/// order-preserving partition reproduces the sequential collection exactly.
///
/// # Panics
///
/// Panics if `k == 0` or `sample == 0`.
pub fn k_distance_profile_threaded<I: RangeIndex + Sync>(
    points: &PointSet,
    index: &I,
    k: usize,
    sample: usize,
    threads: usize,
) -> Vec<f64> {
    assert!(k >= 1, "k must be at least 1");
    assert!(sample >= 1, "sample must be at least 1");
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let stride = (n / sample).max(1);
    let ids: Vec<PointId> = (0..n).step_by(stride).map(|i| i as PointId).collect();
    k_distance_profile_for_ids(points, index, k, &ids, threads)
}

/// The sorted (descending) k-distance profile over an explicit id set —
/// the entry point sampled fits use to derive ε from the drawn subsample
/// while the exact path keeps its strided default.
///
/// Each id's k-th-neighbor search still ranges over the **full** index, so
/// a candidate subset profiles the same density landscape as the classic
/// sweep, just evaluated at fewer probes. When `ids` covers every point in
/// natural order the profile is identical to
/// [`k_distance_profile`]`(…, sample = n)`, so ε derivation at sampling
/// rate 1.0 matches the exact fit bit-for-bit.
///
/// Threading follows [`k_distance_profile_threaded`]: `0` means all
/// available cores, `1` (or fewer than 2 ids) takes the sequential path,
/// and the chunked fan-out is order-preserving, so the result is identical
/// at every thread count.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn k_distance_profile_for_ids<I: RangeIndex + Sync>(
    points: &PointSet,
    index: &I,
    k: usize,
    ids: &[PointId],
    threads: usize,
) -> Vec<f64> {
    assert!(k >= 1, "k must be at least 1");
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let mut profile: Vec<f64> = if threads <= 1 || ids.len() < 2 {
        ids.iter()
            .filter_map(|&id| kth_neighbor_distance(points, index, id, k))
            .collect()
    } else {
        let workers = threads.min(ids.len());
        let chunk = ids.len().div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || {
                        part.iter()
                            .filter_map(|&id| kth_neighbor_distance(points, index, id, k))
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(ids.len());
            for handle in handles {
                all.extend(handle.join().expect("k-dist worker panicked"));
            }
            all
        })
    };
    profile.sort_by(|a, b| b.partial_cmp(a).expect("NaN distance"));
    profile
}

/// Picks ε from a k-distance profile by the maximum-curvature ("knee")
/// heuristic: the sorted curve's point farthest from the chord between its
/// endpoints.
///
/// Returns `None` for profiles with fewer than 3 points.
pub fn knee_epsilon(profile: &[f64]) -> Option<f64> {
    if profile.len() < 3 {
        return None;
    }
    let n = profile.len() as f64;
    let (y0, y1) = (profile[0], profile[profile.len() - 1]);
    let mut best = (0.0, profile[profile.len() / 2]);
    for (i, &y) in profile.iter().enumerate() {
        // Distance from (i, y) to the chord (0, y0) -> (n-1, y1), up to a
        // constant factor (the chord length), which is rank-irrelevant.
        let t = i as f64 / (n - 1.0);
        let chord_y = y0 + t * (y1 - y0);
        let gap = (chord_y - y).abs();
        if gap > best.0 {
            best = (gap, y);
        }
    }
    Some(best.1)
}

fn initial_radius(points: &PointSet) -> f64 {
    match points.bounding_box() {
        Some(bbox) => {
            let diag = bbox.margin();
            if diag > 0.0 {
                diag / points.len() as f64
            } else {
                1.0
            }
        }
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;

    fn line(n: usize, step: f64) -> PointSet {
        let mut ps = PointSet::new(1);
        for i in 0..n {
            ps.push(&[i as f64 * step]);
        }
        ps
    }

    #[test]
    fn kth_distance_on_a_uniform_line() {
        let ps = line(100, 2.0);
        let idx = LinearScan::build(&ps);
        // Interior point: 1st neighbor at 2, 2nd at 2, 3rd at 4.
        assert_eq!(kth_neighbor_distance(&ps, &idx, 50, 1), Some(2.0));
        assert_eq!(kth_neighbor_distance(&ps, &idx, 50, 2), Some(2.0));
        assert_eq!(kth_neighbor_distance(&ps, &idx, 50, 3), Some(4.0));
        // Endpoint: neighbors only on one side.
        assert_eq!(kth_neighbor_distance(&ps, &idx, 0, 3), Some(6.0));
    }

    #[test]
    fn too_few_points_is_none() {
        let ps = line(3, 1.0);
        let idx = LinearScan::build(&ps);
        assert_eq!(kth_neighbor_distance(&ps, &idx, 0, 3), None);
        assert!(kth_neighbor_distance(&ps, &idx, 0, 2).is_some());
    }

    #[test]
    fn profile_is_sorted_descending() {
        let ps = line(60, 1.5);
        let idx = LinearScan::build(&ps);
        let profile = k_distance_profile(&ps, &idx, 4, 30);
        assert!(!profile.is_empty());
        for w in profile.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn knee_separates_cluster_from_noise_scale() {
        // Dense cluster (spacing 1) plus sparse outliers (spacing 100):
        // the knee ε should land between the two scales.
        let mut ps = PointSet::new(1);
        for i in 0..80 {
            ps.push(&[i as f64]);
        }
        for i in 0..8 {
            ps.push(&[10_000.0 + i as f64 * 100.0]);
        }
        let idx = LinearScan::build(&ps);
        let profile = k_distance_profile(&ps, &idx, 3, 88);
        let eps = knee_epsilon(&profile).unwrap();
        assert!(eps > 2.0 && eps < 400.0, "knee eps {eps} outside the gap");
    }

    #[test]
    fn knee_needs_three_points() {
        assert_eq!(knee_epsilon(&[1.0, 0.5]), None);
        assert!(knee_epsilon(&[9.0, 3.0, 1.0]).is_some());
    }

    #[test]
    fn threaded_profile_is_identical_to_sequential() {
        let mut ps = PointSet::new(2);
        for i in 0..90 {
            ps.push(&[(i % 10) as f64 * 1.5, (i / 10) as f64 * 2.0]);
        }
        for i in 0..6 {
            ps.push(&[500.0 + i as f64 * 40.0, 0.0]);
        }
        let idx = LinearScan::build(&ps);
        for (k, sample) in [(1, 96), (3, 96), (4, 17)] {
            let sequential = k_distance_profile(&ps, &idx, k, sample);
            for threads in [1, 2, 3, 8] {
                let threaded = k_distance_profile_threaded(&ps, &idx, k, sample, threads);
                assert_eq!(
                    sequential, threaded,
                    "k={k} sample={sample} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn threaded_profile_handles_tiny_inputs() {
        let ps = line(1, 1.0);
        let idx = LinearScan::build(&ps);
        assert!(k_distance_profile_threaded(&ps, &idx, 3, 4, 4).is_empty());
        let empty = PointSet::new(2);
        let idx2 = LinearScan::build(&empty);
        assert!(k_distance_profile_threaded(&empty, &idx2, 1, 1, 4).is_empty());
    }

    #[test]
    fn full_coverage_id_profile_matches_the_classic_sweep() {
        // Sampling rate 1.0 must derive the exact fit's ε: profiling every
        // id in natural order reproduces the strided sweep (stride 1) and
        // therefore the same knee, at every thread count.
        let mut ps = PointSet::new(2);
        for i in 0..70 {
            ps.push(&[(i % 7) as f64 * 1.2, (i / 7) as f64 * 0.9]);
        }
        for i in 0..5 {
            ps.push(&[300.0 + i as f64 * 50.0, 80.0]);
        }
        let idx = LinearScan::build(&ps);
        let classic = k_distance_profile(&ps, &idx, 4, ps.len());
        let all_ids: Vec<PointId> = (0..ps.len() as PointId).collect();
        for threads in [1, 2, 4, 8] {
            let by_ids = k_distance_profile_for_ids(&ps, &idx, 4, &all_ids, threads);
            assert_eq!(classic, by_ids, "threads={threads}");
            assert_eq!(knee_epsilon(&classic), knee_epsilon(&by_ids));
        }
    }

    #[test]
    fn subset_id_profile_probes_only_the_subset() {
        let ps = line(40, 1.0);
        let idx = LinearScan::build(&ps);
        let ids: Vec<PointId> = vec![3, 11, 27];
        let profile = k_distance_profile_for_ids(&ps, &idx, 2, &ids, 1);
        assert_eq!(profile.len(), ids.len());
        // Every probed point still sees the full index: interior spacing 1,
        // so the 2nd neighbor is at distance 1 for each chosen id.
        assert!(profile.iter().all(|&d| d == 1.0), "profile {profile:?}");
        assert!(k_distance_profile_for_ids(&ps, &idx, 2, &[], 4).is_empty());
    }

    #[test]
    fn duplicate_points_terminate() {
        let ps = PointSet::from_rows(&vec![vec![1.0]; 10]);
        let idx = LinearScan::build(&ps);
        // All duplicates: the k-th neighbor is at distance 0.
        assert_eq!(kth_neighbor_distance(&ps, &idx, 0, 3), Some(0.0));
    }
}
