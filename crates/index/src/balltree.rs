//! Ball-tree range-query engine.
//!
//! Axis-aligned boxes (kd-tree, R\*-tree) degrade as dimensionality grows:
//! a box's corners recede from its center as `√d`, so box-based pruning
//! admits ever more false candidates. A ball tree bounds each subtree by a
//! *sphere* (center + radius), whose pruning condition
//! `‖q − c‖ − r > ε` does not loosen with d. For the paper's
//! high-dimensional workloads (Dim64, Corel-Image at d = 32, the d = 24
//! sweep) it is the better engine.
//!
//! Construction splits by the dimension of largest spread at the median
//! (same O(n log n) recursion as [`crate::KdTree`]); each node stores the
//! exact centroid and covering radius of its points.

use crate::traits::RangeIndex;
use dbsvec_geometry::{PointId, PointSet};

struct BallNode {
    /// Centroid of the points below this node.
    center: Vec<f64>,
    /// Covering radius: max distance from `center` to any point below.
    radius: f64,
    /// Children node ids, or `None` for a leaf.
    children: Option<(u32, u32)>,
    /// Range into `BallTree::ids`.
    start: u32,
    end: u32,
}

/// A static ball tree over a borrowed [`PointSet`].
pub struct BallTree<'a> {
    points: &'a PointSet,
    nodes: Vec<BallNode>,
    ids: Vec<PointId>,
    root: Option<u32>,
}

impl<'a> BallTree<'a> {
    /// Maximum number of points in one leaf.
    pub const LEAF_SIZE: usize = 16;

    /// Builds the tree in O(n log n).
    pub fn build(points: &'a PointSet) -> Self {
        let mut ids: Vec<PointId> = (0..points.len() as u32).collect();
        let mut nodes = Vec::new();
        let root = if ids.is_empty() {
            None
        } else {
            let n = ids.len();
            Some(build_recursive(points, &mut ids, 0, n, &mut nodes))
        };
        Self {
            points,
            nodes,
            ids,
            root,
        }
    }

    /// The indexed point set.
    pub fn points(&self) -> &'a PointSet {
        self.points
    }

    /// Number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn range_recursive(&self, node: u32, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        let n = &self.nodes[node as usize];
        let center_dist = dbsvec_geometry::euclidean(&n.center, query);
        if center_dist - n.radius > eps {
            return; // ball entirely outside the query sphere
        }
        if center_dist + n.radius <= eps {
            // Ball entirely inside: report the whole contiguous id range.
            out.extend_from_slice(&self.ids[n.start as usize..n.end as usize]);
            return;
        }
        match n.children {
            None => {
                let eps_sq = eps * eps;
                for &id in &self.ids[n.start as usize..n.end as usize] {
                    if self.points.squared_distance_to(id, query) <= eps_sq {
                        out.push(id);
                    }
                }
            }
            Some((left, right)) => {
                self.range_recursive(left, query, eps, out);
                self.range_recursive(right, query, eps, out);
            }
        }
    }

    fn count_recursive(&self, node: u32, query: &[f64], eps: f64) -> usize {
        let n = &self.nodes[node as usize];
        let center_dist = dbsvec_geometry::euclidean(&n.center, query);
        if center_dist - n.radius > eps {
            return 0;
        }
        if center_dist + n.radius <= eps {
            return (n.end - n.start) as usize;
        }
        match n.children {
            None => {
                let eps_sq = eps * eps;
                self.ids[n.start as usize..n.end as usize]
                    .iter()
                    .filter(|&&id| self.points.squared_distance_to(id, query) <= eps_sq)
                    .count()
            }
            Some((left, right)) => {
                self.count_recursive(left, query, eps) + self.count_recursive(right, query, eps)
            }
        }
    }
}

fn build_recursive(
    points: &PointSet,
    ids: &mut [PointId],
    offset: usize,
    len: usize,
    nodes: &mut Vec<BallNode>,
) -> u32 {
    let slice = &mut ids[offset..offset + len];
    let dims = points.dims();

    // Centroid and covering radius of this subtree.
    let mut center = vec![0.0; dims];
    for &id in slice.iter() {
        for (c, &x) in center.iter_mut().zip(points.point(id)) {
            *c += x;
        }
    }
    for c in &mut center {
        *c /= len as f64;
    }
    let radius = slice
        .iter()
        .map(|&id| dbsvec_geometry::squared_euclidean(points.point(id), &center))
        .fold(0.0, f64::max)
        .sqrt();

    if len <= BallTree::LEAF_SIZE {
        nodes.push(BallNode {
            center,
            radius,
            children: None,
            start: offset as u32,
            end: (offset + len) as u32,
        });
        return (nodes.len() - 1) as u32;
    }

    // Split at the median of the widest-spread dimension.
    let dim = widest_dimension(points, slice);
    let mid = len / 2;
    slice.select_nth_unstable_by(mid, |&a, &b| {
        points.point(a)[dim]
            .partial_cmp(&points.point(b)[dim])
            .expect("NaN coordinate")
    });

    let left = build_recursive(points, ids, offset, mid, nodes);
    let right = build_recursive(points, ids, offset + mid, len - mid, nodes);
    nodes.push(BallNode {
        center,
        radius,
        children: Some((left, right)),
        start: offset as u32,
        end: (offset + len) as u32,
    });
    (nodes.len() - 1) as u32
}

fn widest_dimension(points: &PointSet, ids: &[PointId]) -> usize {
    let dims = points.dims();
    let mut lo = points.point(ids[0]).to_vec();
    let mut hi = lo.clone();
    for &id in &ids[1..] {
        for (d, &x) in points.point(id).iter().enumerate() {
            if x < lo[d] {
                lo[d] = x;
            }
            if x > hi[d] {
                hi[d] = x;
            }
        }
    }
    (0..dims)
        .max_by(|&a, &b| {
            (hi[a] - lo[a])
                .partial_cmp(&(hi[b] - lo[b]))
                .expect("NaN extent")
        })
        .unwrap_or(0)
}

impl RangeIndex for BallTree<'_> {
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        if let Some(root) = self.root {
            self.range_recursive(root, query, eps, out);
        }
    }

    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        match self.root {
            Some(root) => self.count_recursive(root, query, eps),
            None => 0,
        }
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dbsvec_geometry::rng::SplitMix64;

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::with_capacity(d, n);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for x in &mut row {
                *x = rng.next_f64() * 100.0;
            }
            ps.push(&row);
        }
        ps
    }

    #[test]
    fn matches_linear_scan_including_high_dimensions() {
        for d in [1, 2, 8, 32] {
            let ps = random_points(400, d, 3 + d as u64);
            let tree = BallTree::build(&ps);
            let oracle = LinearScan::build(&ps);
            let mut rng = SplitMix64::new(11);
            for _ in 0..40 {
                let q: Vec<f64> = (0..d).map(|_| rng.next_f64() * 100.0).collect();
                let eps = rng.next_f64() * 80.0;
                let mut got = tree.range_vec(&q, eps);
                let mut want = oracle.range_vec(&q, eps);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "d={d} eps={eps}");
                assert_eq!(tree.count_range(&q, eps), want.len());
            }
        }
    }

    #[test]
    fn empty_and_single_point() {
        let empty = PointSet::new(4);
        let tree = BallTree::build(&empty);
        assert!(tree.is_empty());
        assert!(tree.range_vec(&[0.0; 4], 100.0).is_empty());

        let one = PointSet::from_rows(&[vec![1.0, 2.0]]);
        let tree = BallTree::build(&one);
        assert_eq!(tree.range_vec(&[1.0, 2.0], 0.0), vec![0]);
        assert_eq!(tree.count_range(&[5.0, 5.0], 1.0), 0);
    }

    #[test]
    fn whole_ball_shortcut_reports_everything() {
        let ps = random_points(300, 3, 7);
        let tree = BallTree::build(&ps);
        let hits = tree.range_vec(&[50.0; 3], 1e6);
        assert_eq!(hits.len(), 300);
    }

    #[test]
    fn duplicates_are_all_reported() {
        let ps = PointSet::from_rows(&vec![vec![3.0, 3.0]; 50]);
        let tree = BallTree::build(&ps);
        assert_eq!(tree.count_range(&[3.0, 3.0], 0.0), 50);
    }

    #[test]
    fn node_count_is_linear() {
        let ps = random_points(1000, 2, 9);
        let tree = BallTree::build(&ps);
        // Leaves hold ~16 points; total nodes ~ 2 * n / leaf_size.
        assert!(tree.node_count() <= 2 * 1000 / 8);
    }
}
