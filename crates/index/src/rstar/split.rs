//! R\* insertion heuristics: ChooseSubtree and topological node splitting.
//!
//! Both follow Beckmann et al., "The R\*-tree: an efficient and robust
//! access method for points and rectangles" (SIGMOD 1990), §4:
//!
//! * **ChooseSubtree** — when the children are leaves, pick the child whose
//!   bounding box needs the least *overlap* enlargement (ties: least area
//!   enlargement, then least area); otherwise least area enlargement.
//! * **Split** — for every axis, sort entries by lower then upper bbox edge
//!   and evaluate all legal distributions; pick the axis with minimum total
//!   margin, then the distribution on that axis with minimum overlap (ties:
//!   minimum combined area).

use dbsvec_geometry::BoundingBox;

use super::{Entries, Node, RStarTree};

/// Picks the child of inner node `node` that should receive point `p`.
pub(crate) fn choose_subtree(tree: &RStarTree<'_>, node: u32, p: &[f64]) -> u32 {
    let children: &[u32] = match &tree.nodes[node as usize].entries {
        Entries::Inner(children) => children,
        Entries::Leaf(_) => unreachable!("choose_subtree called on a leaf"),
    };
    debug_assert!(!children.is_empty());

    let children_are_leaves = matches!(tree.nodes[children[0] as usize].entries, Entries::Leaf(_));

    let mut best = children[0];
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for &child in children {
        let bbox = &tree.nodes[child as usize].bbox;
        let mut enlarged = bbox.clone();
        enlarged.expand_to_point(p);
        let area = bbox.volume();
        let area_enlargement = enlarged.volume() - area;
        let overlap_enlargement = if children_are_leaves {
            let mut delta = 0.0;
            for &other in children {
                if other == child {
                    continue;
                }
                let other_bbox = &tree.nodes[other as usize].bbox;
                delta += enlarged.overlap_volume(other_bbox) - bbox.overlap_volume(other_bbox);
            }
            delta
        } else {
            0.0
        };
        let key = (overlap_enlargement, area_enlargement, area);
        if key < best_key {
            best_key = key;
            best = child;
        }
    }
    best
}

/// Splits the overflowing `node` in place; returns the id of the new sibling.
pub(crate) fn split_node(tree: &mut RStarTree<'_>, node: u32) -> u32 {
    let (second_entries, first_bbox, second_bbox) = match &tree.nodes[node as usize].entries {
        Entries::Leaf(ids) => {
            let boxes: Vec<BoundingBox> = ids
                .iter()
                .map(|&id| BoundingBox::around_point(tree.points.point(id)))
                .collect();
            let (left, right) = partition(ids, &boxes);
            let (lb, rb) = (
                cover(&boxes, &left_mask(ids, &left)),
                cover(&boxes, &left_mask(ids, &right)),
            );
            (Entries::Leaf(right), lb, rb)
        }
        Entries::Inner(children) => {
            let boxes: Vec<BoundingBox> = children
                .iter()
                .map(|&c| tree.nodes[c as usize].bbox.clone())
                .collect();
            let (left, right) = partition(children, &boxes);
            let (lb, rb) = (
                cover(&boxes, &left_mask(children, &left)),
                cover(&boxes, &left_mask(children, &right)),
            );
            (Entries::Inner(right), lb, rb)
        }
    };

    // Install the left half back into `node` and create the sibling.
    match (&mut tree.nodes[node as usize].entries, &second_entries) {
        (Entries::Leaf(ids), Entries::Leaf(right)) => {
            ids.retain(|id| !right.contains(id));
        }
        (Entries::Inner(children), Entries::Inner(right)) => {
            children.retain(|c| !right.contains(c));
        }
        _ => unreachable!("split halves must share the node kind"),
    }
    tree.nodes[node as usize].bbox = first_bbox;
    tree.nodes.push(Node {
        bbox: second_bbox,
        entries: second_entries,
    });
    (tree.nodes.len() - 1) as u32
}

/// Indices (into the original entry list) retained by one half.
fn left_mask<T: Copy + Eq>(all: &[T], half: &[T]) -> Vec<usize> {
    all.iter()
        .enumerate()
        .filter(|(_, e)| half.contains(e))
        .map(|(i, _)| i)
        .collect()
}

fn cover(boxes: &[BoundingBox], idx: &[usize]) -> BoundingBox {
    let mut bb = boxes[idx[0]].clone();
    for &i in &idx[1..] {
        bb.expand_to_box(&boxes[i]);
    }
    bb
}

/// R\* topological split over generic entries with precomputed boxes.
///
/// Returns the two halves as owned entry lists.
fn partition<T: Copy + Eq>(entries: &[T], boxes: &[BoundingBox]) -> (Vec<T>, Vec<T>) {
    let total = entries.len();
    let min = RStarTree::MIN_ENTRIES.min(total / 2).max(1);
    let dims = boxes[0].dims();

    // Step 1: choose the split axis by minimum total margin over all
    // candidate distributions.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..dims {
        let order = sorted_order(boxes, axis);
        let mut margin_sum = 0.0;
        for k in min..=(total - min) {
            let left = cover_order(boxes, &order[..k]);
            let right = cover_order(boxes, &order[k..]);
            margin_sum += left.margin() + right.margin();
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }

    // Step 2: on the chosen axis, pick the distribution with minimum overlap
    // (ties: minimum combined area).
    let order = sorted_order(boxes, best_axis);
    let mut best_k = min;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for k in min..=(total - min) {
        let left = cover_order(boxes, &order[..k]);
        let right = cover_order(boxes, &order[k..]);
        let key = (left.overlap_volume(&right), left.volume() + right.volume());
        if key < best_key {
            best_key = key;
            best_k = k;
        }
    }

    let left: Vec<T> = order[..best_k].iter().map(|&i| entries[i]).collect();
    let right: Vec<T> = order[best_k..].iter().map(|&i| entries[i]).collect();
    (left, right)
}

/// Entry indices sorted by (lower edge, upper edge) along `axis`.
fn sorted_order(boxes: &[BoundingBox], axis: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    order.sort_by(|&a, &b| {
        let ka = (boxes[a].min()[axis], boxes[a].max()[axis]);
        let kb = (boxes[b].min()[axis], boxes[b].max()[axis]);
        ka.partial_cmp(&kb).expect("NaN coordinate in bounding box")
    });
    order
}

fn cover_order(boxes: &[BoundingBox], idx: &[usize]) -> BoundingBox {
    let mut bb = boxes[idx[0]].clone();
    for &i in &idx[1..] {
        bb.expand_to_box(&boxes[i]);
    }
    bb
}
