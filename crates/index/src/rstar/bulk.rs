//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Leutenegger, Lopez & Edgington, "STR: a simple and efficient algorithm
//! for R-tree packing" (ICDE 1997). The point set is recursively sorted and
//! sliced one dimension at a time so every leaf receives a spatially compact
//! tile of at most `M` points; upper levels are packed the same way over the
//! child bounding-box centers.

use dbsvec_geometry::{BoundingBox, PointId, PointSet};

use super::{Entries, Node, RStarTree};

/// Builds a packed tree over the whole point set.
pub(crate) fn str_bulk_load(points: &PointSet) -> RStarTree<'_> {
    let n = points.len();
    if n == 0 {
        return RStarTree::from_parts(points, Vec::new(), None);
    }

    let m = RStarTree::MAX_ENTRIES;
    let dims = points.dims();

    // ---- Leaf level: tile the point ids.
    let mut ids: Vec<PointId> = (0..n as u32).collect();
    let mut tiles: Vec<&mut [PointId]> = vec![&mut ids[..]];
    let coord = |id: PointId, d: usize| points.point(id)[d];
    for d in 0..dims {
        tiles = slice_tiles(tiles, m, dims - d, |a, b| {
            coord(a, d)
                .partial_cmp(&coord(b, d))
                .expect("NaN coordinate")
        });
    }

    let mut nodes: Vec<Node> = Vec::new();
    let mut level: Vec<u32> = Vec::with_capacity(tiles.len());
    for tile in tiles {
        debug_assert!(!tile.is_empty() && tile.len() <= m);
        let mut bbox = BoundingBox::around_point(points.point(tile[0]));
        for &id in tile[1..].iter() {
            bbox.expand_to_point(points.point(id));
        }
        nodes.push(Node {
            bbox,
            entries: Entries::Leaf(tile.to_vec()),
        });
        level.push((nodes.len() - 1) as u32);
    }

    // ---- Upper levels: pack child nodes by bbox center until one remains.
    while level.len() > 1 {
        let centers: Vec<Vec<f64>> = level
            .iter()
            .map(|&nid| nodes[nid as usize].bbox.center())
            .collect();
        let pos: std::collections::HashMap<u32, usize> =
            level.iter().enumerate().map(|(i, &nid)| (nid, i)).collect();

        let mut current = level.clone();
        let mut tiles: Vec<&mut [u32]> = vec![&mut current[..]];
        // `d` indexes into the inner center vectors, not `centers` itself.
        #[allow(clippy::needless_range_loop)]
        for d in 0..dims {
            tiles = slice_tiles(tiles, m, dims - d, |a, b| {
                centers[pos[&a]][d]
                    .partial_cmp(&centers[pos[&b]][d])
                    .expect("NaN bounding-box center")
            });
        }

        let mut next_level = Vec::with_capacity(tiles.len());
        for tile in tiles {
            let mut bbox = nodes[tile[0] as usize].bbox.clone();
            for &child in tile[1..].iter() {
                let child_bbox = nodes[child as usize].bbox.clone();
                bbox.expand_to_box(&child_bbox);
            }
            nodes.push(Node {
                bbox,
                entries: Entries::Inner(tile.to_vec()),
            });
            next_level.push((nodes.len() - 1) as u32);
        }
        level = next_level;
    }

    let root = level[0];
    RStarTree::from_parts(points, nodes, Some(root))
}

/// Splits every tile into `s` slabs along the current sort order, where
/// `s = ceil(pages^(1/dims_remaining))` and `pages = ceil(len / m)`.
///
/// With `dims_remaining == 1` this degenerates to chunking into pages of at
/// most `m` entries, terminating the recursion.
fn slice_tiles<T: Copy>(
    tiles: Vec<&mut [T]>,
    m: usize,
    dims_remaining: usize,
    mut cmp: impl FnMut(T, T) -> std::cmp::Ordering,
) -> Vec<&mut [T]> {
    let mut out = Vec::new();
    for tile in tiles {
        tile.sort_unstable_by(|&a, &b| cmp(a, b));
        let pages = tile.len().div_ceil(m);
        let slabs = if dims_remaining <= 1 {
            pages
        } else {
            (pages as f64).powf(1.0 / dims_remaining as f64).ceil() as usize
        };
        let slabs = slabs.max(1);
        let slab_size = tile.len().div_ceil(slabs);
        let mut rest = tile;
        while !rest.is_empty() {
            let take = slab_size.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            out.push(head);
            rest = tail;
        }
    }
    out
}
