//! R\*-tree range-query engine.
//!
//! The paper's ground-truth algorithm *R-DBSCAN* is "the original DBSCAN
//! algorithm implementation using an in-memory R-tree" (§V-A, after
//! Beckmann et al.'s R\*-tree \[7\]). This module provides:
//!
//! * **STR bulk loading** (`bulk`) — the Sort-Tile-Recursive packing of
//!   Leutenegger et al., which builds a near-optimal static tree in
//!   O(n log n); this is how all experiment datasets are indexed,
//! * **dynamic insertion** with the R\* heuristics (`split`): ChooseSubtree
//!   minimizes overlap enlargement at the leaf level and area enlargement
//!   above it, and node splits pick the axis by minimum margin sum and the
//!   distribution by minimum overlap. Forced reinsertion is intentionally
//!   omitted — it only pays off under adversarial insertion orders, and the
//!   workspace always has bulk loading available for those.
//!
//! Fanout is [`RStarTree::MAX_ENTRIES`] = 32 with a 40% minimum fill, the
//! conventional in-memory configuration.

mod bulk;
mod split;

use crate::traits::RangeIndex;
use dbsvec_geometry::{BoundingBox, PointId, PointSet};

pub(crate) enum Entries {
    /// Point ids stored in a leaf.
    Leaf(Vec<PointId>),
    /// Child node ids stored in an inner node.
    Inner(Vec<u32>),
}

pub(crate) struct Node {
    pub(crate) bbox: BoundingBox,
    pub(crate) entries: Entries,
}

impl Node {
    fn is_leaf(&self) -> bool {
        matches!(self.entries, Entries::Leaf(_))
    }

    fn entry_count(&self) -> usize {
        match &self.entries {
            Entries::Leaf(ids) => ids.len(),
            Entries::Inner(children) => children.len(),
        }
    }
}

/// An R\*-tree over a borrowed [`PointSet`].
pub struct RStarTree<'a> {
    points: &'a PointSet,
    pub(crate) nodes: Vec<Node>,
    root: Option<u32>,
    len: usize,
}

impl<'a> RStarTree<'a> {
    /// Maximum entries per node (fanout M).
    pub const MAX_ENTRIES: usize = 32;
    /// Minimum entries per node after a split (m = 40% of M).
    pub const MIN_ENTRIES: usize = 13;

    /// Bulk-loads the whole point set with Sort-Tile-Recursive packing.
    pub fn build(points: &'a PointSet) -> Self {
        bulk::str_bulk_load(points)
    }

    /// Creates an empty tree for incremental insertion.
    pub fn new(points: &'a PointSet) -> Self {
        Self {
            points,
            nodes: Vec::new(),
            root: None,
            len: 0,
        }
    }

    /// Inserts one point by id using the R\* heuristics.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the underlying point set.
    pub fn insert(&mut self, id: PointId) {
        let p = self.points.point(id).to_vec();
        match self.root {
            None => {
                self.nodes.push(Node {
                    bbox: BoundingBox::around_point(&p),
                    entries: Entries::Leaf(vec![id]),
                });
                self.root = Some((self.nodes.len() - 1) as u32);
            }
            Some(root) => {
                if let Some(sibling) = self.insert_recursive(root, id, &p) {
                    // Root split: grow the tree by one level.
                    let new_bbox = self.nodes[root as usize]
                        .bbox
                        .union(&self.nodes[sibling as usize].bbox);
                    self.nodes.push(Node {
                        bbox: new_bbox,
                        entries: Entries::Inner(vec![root, sibling]),
                    });
                    self.root = Some((self.nodes.len() - 1) as u32);
                }
            }
        }
        self.len += 1;
    }

    /// Inserts below `node`; returns the id of a new sibling if `node` split.
    fn insert_recursive(&mut self, node: u32, id: PointId, p: &[f64]) -> Option<u32> {
        self.nodes[node as usize].bbox.expand_to_point(p);
        if self.nodes[node as usize].is_leaf() {
            if let Entries::Leaf(ids) = &mut self.nodes[node as usize].entries {
                ids.push(id);
            }
            if self.nodes[node as usize].entry_count() > Self::MAX_ENTRIES {
                return Some(split::split_node(self, node));
            }
            return None;
        }

        let child = split::choose_subtree(self, node, p);
        if let Some(new_child) = self.insert_recursive(child, id, p) {
            if let Entries::Inner(children) = &mut self.nodes[node as usize].entries {
                children.push(new_child);
            }
            if self.nodes[node as usize].entry_count() > Self::MAX_ENTRIES {
                return Some(split::split_node(self, node));
            }
        }
        None
    }

    /// The indexed point set.
    pub fn points(&self) -> &'a PointSet {
        self.points
    }

    /// Tree height (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut cursor = self.root;
        while let Some(n) = cursor {
            h += 1;
            cursor = match &self.nodes[n as usize].entries {
                Entries::Leaf(_) => None,
                Entries::Inner(children) => Some(children[0]),
            };
        }
        h
    }

    pub(crate) fn from_parts(points: &'a PointSet, nodes: Vec<Node>, root: Option<u32>) -> Self {
        let len = points.len();
        Self {
            points,
            nodes,
            root,
            len,
        }
    }

    fn range_recursive(&self, node: u32, query: &[f64], eps_sq: f64, out: &mut Vec<PointId>) {
        let n = &self.nodes[node as usize];
        if n.bbox.max_squared_distance(query) <= eps_sq {
            self.report_subtree(node, out);
            return;
        }
        match &n.entries {
            Entries::Leaf(ids) => {
                for &id in ids {
                    if self.points.squared_distance_to(id, query) <= eps_sq {
                        out.push(id);
                    }
                }
            }
            Entries::Inner(children) => {
                for &child in children {
                    if self.nodes[child as usize].bbox.min_squared_distance(query) <= eps_sq {
                        self.range_recursive(child, query, eps_sq, out);
                    }
                }
            }
        }
    }

    fn report_subtree(&self, node: u32, out: &mut Vec<PointId>) {
        match &self.nodes[node as usize].entries {
            Entries::Leaf(ids) => out.extend_from_slice(ids),
            Entries::Inner(children) => {
                for &child in children {
                    self.report_subtree(child, out);
                }
            }
        }
    }

    fn count_recursive(&self, node: u32, query: &[f64], eps_sq: f64) -> usize {
        let n = &self.nodes[node as usize];
        if n.bbox.max_squared_distance(query) <= eps_sq {
            return self.subtree_size(node);
        }
        match &n.entries {
            Entries::Leaf(ids) => ids
                .iter()
                .filter(|&&id| self.points.squared_distance_to(id, query) <= eps_sq)
                .count(),
            Entries::Inner(children) => children
                .iter()
                .filter(|&&c| self.nodes[c as usize].bbox.min_squared_distance(query) <= eps_sq)
                .map(|&c| self.count_recursive(c, query, eps_sq))
                .sum(),
        }
    }

    fn subtree_size(&self, node: u32) -> usize {
        match &self.nodes[node as usize].entries {
            Entries::Leaf(ids) => ids.len(),
            Entries::Inner(children) => children.iter().map(|&c| self.subtree_size(c)).sum(),
        }
    }
}

impl RangeIndex for RStarTree<'_> {
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        if let Some(root) = self.root {
            let eps_sq = eps * eps;
            if self.nodes[root as usize].bbox.min_squared_distance(query) <= eps_sq {
                self.range_recursive(root, query, eps_sq, out);
            }
        }
    }

    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        match self.root {
            Some(root) => {
                let eps_sq = eps * eps;
                if self.nodes[root as usize].bbox.min_squared_distance(query) <= eps_sq {
                    self.count_recursive(root, query, eps_sq)
                } else {
                    0
                }
            }
            None => 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dbsvec_geometry::rng::SplitMix64;

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::with_capacity(d, n);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for x in &mut row {
                *x = rng.next_f64() * 100.0;
            }
            ps.push(&row);
        }
        ps
    }

    fn check_against_oracle(tree: &RStarTree<'_>, ps: &PointSet, seed: u64) {
        let oracle = LinearScan::build(ps);
        let d = ps.dims();
        let mut rng = SplitMix64::new(seed);
        for _ in 0..50 {
            let q: Vec<f64> = (0..d).map(|_| rng.next_f64() * 100.0).collect();
            let eps = rng.next_f64() * 30.0;
            let mut got = tree.range_vec(&q, eps);
            let mut want = oracle.range_vec(&q, eps);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "eps={eps}");
            assert_eq!(tree.count_range(&q, eps), want.len());
        }
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        for d in [1, 2, 3, 8] {
            let ps = random_points(700, d, 11 + d as u64);
            let tree = RStarTree::build(&ps);
            assert_eq!(tree.len(), 700);
            check_against_oracle(&tree, &ps, 23);
        }
    }

    #[test]
    fn incremental_insert_matches_linear_scan() {
        let ps = random_points(400, 3, 77);
        let mut tree = RStarTree::new(&ps);
        for id in 0..ps.len() as u32 {
            tree.insert(id);
        }
        assert_eq!(tree.len(), 400);
        check_against_oracle(&tree, &ps, 29);
    }

    #[test]
    fn incremental_insert_sorted_order_stays_correct() {
        // Sorted insertion is the classic worst case for R-trees.
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![i as f64, (i * i % 37) as f64])
            .collect();
        let ps = PointSet::from_rows(&rows);
        let mut tree = RStarTree::new(&ps);
        for id in 0..ps.len() as u32 {
            tree.insert(id);
        }
        check_against_oracle(&tree, &ps, 31);
    }

    #[test]
    fn empty_and_tiny_trees() {
        let ps = PointSet::new(2);
        let tree = RStarTree::build(&ps);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.range_vec(&[0.0, 0.0], 5.0).is_empty());

        let ps1 = PointSet::from_rows(&[vec![1.0, 2.0]]);
        let tree1 = RStarTree::build(&ps1);
        assert_eq!(tree1.height(), 1);
        assert_eq!(tree1.range_vec(&[1.0, 2.0], 0.0), vec![0]);
    }

    #[test]
    fn bulk_load_height_is_logarithmic() {
        let ps = random_points(5000, 2, 99);
        let tree = RStarTree::build(&ps);
        // 5000 / 32 = 157 leaves; two more levels suffice at fanout 32.
        assert!(tree.height() <= 4, "height {} too tall", tree.height());
    }

    #[test]
    fn nodes_respect_fanout_after_inserts() {
        let ps = random_points(600, 2, 13);
        let mut tree = RStarTree::new(&ps);
        for id in 0..ps.len() as u32 {
            tree.insert(id);
        }
        for node in &tree.nodes {
            assert!(node.entry_count() <= RStarTree::MAX_ENTRIES);
        }
    }
}
