//! Median-split kd-tree with leaf buckets.
//!
//! This is the engine behind the paper's *kd-DBSCAN* baseline (§V-A). The
//! tree is built once over the whole dataset:
//!
//! * split dimension = widest extent of the node's bounding box (rather than
//!   cycling dimensions, which degenerates on anisotropic data),
//! * split position = median, found with `select_nth_unstable_by` in O(n)
//!   per level, giving O(n log n) total build time,
//! * leaves hold up to [`KdTree::LEAF_SIZE`] points that are scanned
//!   linearly — small leaves waste tree overhead, large leaves waste
//!   distance computations; 16 is the conventional sweet spot.
//!
//! Range queries prune subtrees whose bounding box is farther than ε from
//! the query and *bulk-report* subtrees that lie entirely inside the query
//! ball, skipping all per-point distance checks for them.
//!
//! Two wrappers share the same node layout and traversal:
//!
//! * [`KdTree`] borrows the [`PointSet`] it indexes — the right shape for
//!   one clustering run over data that outlives the index;
//! * [`OwnedKdTree`] owns its point set — the right shape for a long-lived
//!   serving engine that must hold the index without tying it to an outside
//!   allocation, and rebuild it as points arrive.

use crate::traits::RangeIndex;
use dbsvec_geometry::{BoundingBox, PointId, PointSet};

#[derive(Debug)]
enum Node {
    Leaf {
        bbox: BoundingBox,
        /// Range into `TreeCore::ids`.
        start: u32,
        end: u32,
    },
    Inner {
        bbox: BoundingBox,
        left: u32,
        right: u32,
    },
}

impl Node {
    fn bbox(&self) -> &BoundingBox {
        match self {
            Node::Leaf { bbox, .. } | Node::Inner { bbox, .. } => bbox,
        }
    }
}

/// The point-set-agnostic half of the tree: nodes, the leaf-permuted id
/// array, and the traversal routines. Both tree wrappers delegate here,
/// passing in whichever `PointSet` they hold.
#[derive(Debug)]
struct TreeCore {
    nodes: Vec<Node>,
    /// Point ids permuted so each leaf owns a contiguous range.
    ids: Vec<PointId>,
    root: Option<u32>,
}

impl TreeCore {
    fn build(points: &PointSet) -> Self {
        let mut ids: Vec<PointId> = (0..points.len() as u32).collect();
        let mut nodes = Vec::new();
        let root = if ids.is_empty() {
            None
        } else {
            let n = ids.len();
            Some(build_recursive(points, &mut ids, 0, n, &mut nodes))
        };
        Self { nodes, ids, root }
    }

    fn range(&self, points: &PointSet, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        if let Some(root) = self.root {
            let eps_sq = eps * eps;
            if self.nodes[root as usize].bbox().min_squared_distance(query) <= eps_sq {
                self.range_recursive(points, root, query, eps_sq, out);
            }
        }
    }

    fn count_range(&self, points: &PointSet, query: &[f64], eps: f64) -> usize {
        match self.root {
            Some(root) => {
                let eps_sq = eps * eps;
                if self.nodes[root as usize].bbox().min_squared_distance(query) <= eps_sq {
                    self.count_recursive(points, root, query, eps_sq)
                } else {
                    0
                }
            }
            None => 0,
        }
    }

    fn range_recursive(
        &self,
        points: &PointSet,
        node: u32,
        query: &[f64],
        eps_sq: f64,
        out: &mut Vec<PointId>,
    ) {
        match &self.nodes[node as usize] {
            Node::Leaf { bbox, start, end } => {
                let ids = &self.ids[*start as usize..*end as usize];
                if bbox.max_squared_distance(query) <= eps_sq {
                    out.extend_from_slice(ids);
                    return;
                }
                for &id in ids {
                    if points.squared_distance_to(id, query) <= eps_sq {
                        out.push(id);
                    }
                }
            }
            Node::Inner { bbox, left, right } => {
                if bbox.max_squared_distance(query) <= eps_sq {
                    self.report_subtree(node, out);
                    return;
                }
                for &child in &[*left, *right] {
                    if self.nodes[child as usize]
                        .bbox()
                        .min_squared_distance(query)
                        <= eps_sq
                    {
                        self.range_recursive(points, child, query, eps_sq, out);
                    }
                }
            }
        }
    }

    /// Reports every point under `node` without distance checks.
    fn report_subtree(&self, node: u32, out: &mut Vec<PointId>) {
        // Leaf ranges under one subtree are contiguous by construction, so a
        // single slice copy suffices.
        let (start, end) = self.subtree_span(node);
        out.extend_from_slice(&self.ids[start as usize..end as usize]);
    }

    fn subtree_span(&self, node: u32) -> (u32, u32) {
        match &self.nodes[node as usize] {
            Node::Leaf { start, end, .. } => (*start, *end),
            Node::Inner { left, right, .. } => {
                let (s, _) = self.subtree_span(*left);
                let (_, e) = self.subtree_span(*right);
                (s, e)
            }
        }
    }

    fn count_recursive(&self, points: &PointSet, node: u32, query: &[f64], eps_sq: f64) -> usize {
        match &self.nodes[node as usize] {
            Node::Leaf { bbox, start, end } => {
                let ids = &self.ids[*start as usize..*end as usize];
                if bbox.max_squared_distance(query) <= eps_sq {
                    return ids.len();
                }
                ids.iter()
                    .filter(|&&id| points.squared_distance_to(id, query) <= eps_sq)
                    .count()
            }
            Node::Inner { bbox, left, right } => {
                if bbox.max_squared_distance(query) <= eps_sq {
                    let (s, e) = self.subtree_span(node);
                    return (e - s) as usize;
                }
                let mut total = 0;
                for &child in &[*left, *right] {
                    if self.nodes[child as usize]
                        .bbox()
                        .min_squared_distance(query)
                        <= eps_sq
                    {
                        total += self.count_recursive(points, child, query, eps_sq);
                    }
                }
                total
            }
        }
    }
}

/// A static kd-tree over a borrowed [`PointSet`].
pub struct KdTree<'a> {
    points: &'a PointSet,
    core: TreeCore,
}

impl<'a> KdTree<'a> {
    /// Maximum number of points stored in one leaf bucket.
    pub const LEAF_SIZE: usize = 16;

    /// Builds the tree in O(n log n).
    pub fn build(points: &'a PointSet) -> Self {
        Self {
            points,
            core: TreeCore::build(points),
        }
    }

    /// The indexed point set.
    pub fn points(&self) -> &'a PointSet {
        self.points
    }

    /// Number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.core.nodes.len()
    }
}

impl RangeIndex for KdTree<'_> {
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        self.core.range(self.points, query, eps, out);
    }

    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        self.core.count_range(self.points, query, eps)
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

/// A kd-tree that owns the [`PointSet`] it indexes.
///
/// Same construction and traversal as [`KdTree`]; the only difference is
/// ownership. A serving engine holds one of these over its core points,
/// takes the set back out with [`OwnedKdTree::into_points`] when enough new
/// cores have accumulated, pushes them, and rebuilds.
#[derive(Debug)]
pub struct OwnedKdTree {
    points: PointSet,
    core: TreeCore,
}

impl OwnedKdTree {
    /// Builds the tree in O(n log n), taking ownership of the points.
    pub fn build(points: PointSet) -> Self {
        let core = TreeCore::build(&points);
        Self { points, core }
    }

    /// The indexed point set.
    pub fn points(&self) -> &PointSet {
        &self.points
    }

    /// Consumes the tree and returns the point set (for rebuild-after-grow).
    pub fn into_points(self) -> PointSet {
        self.points
    }

    /// Number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.core.nodes.len()
    }
}

impl RangeIndex for OwnedKdTree {
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        self.core.range(&self.points, query, eps, out);
    }

    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        self.core.count_range(&self.points, query, eps)
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

fn build_recursive(
    points: &PointSet,
    ids: &mut [PointId],
    offset: usize,
    len: usize,
    nodes: &mut Vec<Node>,
) -> u32 {
    let slice = &mut ids[offset..offset + len];
    let mut bbox = BoundingBox::around_point(points.point(slice[0]));
    for &id in slice[1..].iter() {
        bbox.expand_to_point(points.point(id));
    }

    if len <= KdTree::LEAF_SIZE {
        nodes.push(Node::Leaf {
            bbox,
            start: offset as u32,
            end: (offset + len) as u32,
        });
        return (nodes.len() - 1) as u32;
    }

    // Split on the widest dimension at the median.
    let dim = widest_dimension(&bbox);
    let mid = len / 2;
    slice.select_nth_unstable_by(mid, |&a, &b| {
        points.point(a)[dim]
            .partial_cmp(&points.point(b)[dim])
            .expect("NaN coordinate")
    });

    let left = build_recursive(points, ids, offset, mid, nodes);
    let right = build_recursive(points, ids, offset + mid, len - mid, nodes);
    nodes.push(Node::Inner { bbox, left, right });
    (nodes.len() - 1) as u32
}

fn widest_dimension(bbox: &BoundingBox) -> usize {
    let mut best = 0;
    let mut best_extent = f64::NEG_INFINITY;
    for (d, (lo, hi)) in bbox.min().iter().zip(bbox.max()).enumerate() {
        let extent = hi - lo;
        if extent > best_extent {
            best_extent = extent;
            best = d;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinearScan;
    use dbsvec_geometry::rng::SplitMix64;

    fn random_points(n: usize, d: usize, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::with_capacity(d, n);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for x in &mut row {
                *x = rng.next_f64() * 100.0;
            }
            ps.push(&row);
        }
        ps
    }

    #[test]
    fn matches_linear_scan_on_random_data() {
        for d in [1, 2, 3, 8] {
            let ps = random_points(500, d, 42 + d as u64);
            let tree = KdTree::build(&ps);
            let oracle = LinearScan::build(&ps);
            let mut rng = SplitMix64::new(7);
            for _ in 0..50 {
                let q: Vec<f64> = (0..d).map(|_| rng.next_f64() * 100.0).collect();
                let eps = rng.next_f64() * 30.0;
                let mut got = tree.range_vec(&q, eps);
                let mut want = oracle.range_vec(&q, eps);
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "d={d} eps={eps}");
                assert_eq!(tree.count_range(&q, eps), want.len());
            }
        }
    }

    #[test]
    fn empty_tree_reports_nothing() {
        let ps = PointSet::new(3);
        let tree = KdTree::build(&ps);
        assert_eq!(tree.len(), 0);
        assert!(tree.range_vec(&[0.0, 0.0, 0.0], 10.0).is_empty());
        assert_eq!(tree.count_range(&[0.0, 0.0, 0.0], 10.0), 0);
    }

    #[test]
    fn single_point_tree() {
        let ps = PointSet::from_rows(&[vec![1.0, 1.0]]);
        let tree = KdTree::build(&ps);
        assert_eq!(tree.range_vec(&[1.0, 1.0], 0.0), vec![0]);
        assert!(tree.range_vec(&[2.0, 1.0], 0.5).is_empty());
    }

    #[test]
    fn duplicate_points_all_reported() {
        let rows = vec![vec![2.0, 2.0]; 40];
        let ps = PointSet::from_rows(&rows);
        let tree = KdTree::build(&ps);
        let mut hits = tree.range_vec(&[2.0, 2.0], 0.1);
        hits.sort_unstable();
        assert_eq!(hits, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn huge_radius_returns_everything() {
        let ps = random_points(300, 4, 5);
        let tree = KdTree::build(&ps);
        assert_eq!(tree.range_vec(&[50.0; 4], 1e6).len(), 300);
        assert_eq!(tree.count_range(&[50.0; 4], 1e6), 300);
    }

    #[test]
    fn skewed_data_still_correct() {
        // All mass on one axis; widest-dimension splitting must not loop.
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64, 0.0]).collect();
        let ps = PointSet::from_rows(&rows);
        let tree = KdTree::build(&ps);
        let hits = tree.range_vec(&[100.0, 0.0], 2.5);
        assert_eq!(hits.len(), 5); // 98..=102
    }

    #[test]
    fn owned_tree_matches_borrowed_tree() {
        let ps = random_points(400, 3, 99);
        let borrowed = KdTree::build(&ps);
        let owned = OwnedKdTree::build(ps.clone());
        let mut rng = SplitMix64::new(11);
        for _ in 0..30 {
            let q: Vec<f64> = (0..3).map(|_| rng.next_f64() * 100.0).collect();
            let eps = rng.next_f64() * 25.0;
            let mut got = owned.range_vec(&q, eps);
            let mut want = borrowed.range_vec(&q, eps);
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
            assert_eq!(owned.count_range(&q, eps), want.len());
        }
        assert_eq!(owned.len(), 400);
        assert_eq!(owned.node_count(), borrowed.node_count());
    }

    #[test]
    fn owned_tree_rebuild_cycle() {
        let ps = random_points(100, 2, 3);
        let owned = OwnedKdTree::build(ps);
        let mut points = owned.into_points();
        points.push(&[500.0, 500.0]);
        let rebuilt = OwnedKdTree::build(points);
        assert_eq!(rebuilt.len(), 101);
        assert_eq!(rebuilt.range_vec(&[500.0, 500.0], 1.0), vec![100]);
    }
}
