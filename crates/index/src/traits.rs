//! The range-query abstraction all clustering algorithms consume.

use dbsvec_geometry::PointId;

/// An ε-range query engine over a fixed point set.
///
/// Implementations index a [`dbsvec_geometry::PointSet`] at construction
/// time and answer closed-ball queries: every point `p` with
/// `||p - query|| <= eps` is reported, including the query point itself when
/// it belongs to the indexed set (DBSCAN's `|N_ε(x)| >= MinPts` counts the
/// point itself, Definition 2 of the paper).
///
/// Results are appended to a caller-supplied buffer so hot loops can reuse
/// one allocation across millions of queries.
pub trait RangeIndex {
    /// Appends the ids of all indexed points within `eps` of `query` to `out`.
    ///
    /// `out` is *not* cleared first; callers that need a fresh result must
    /// clear it themselves. No order is guaranteed.
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>);

    /// Counts the indexed points within `eps` of `query` without
    /// materializing them.
    ///
    /// The default implementation materializes into a scratch vector;
    /// engines override it when they can count more cheaply.
    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        let mut scratch = Vec::new();
        self.range(query, eps, &mut scratch);
        scratch.len()
    }

    /// Number of indexed points.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convenience wrapper returning a fresh vector.
    fn range_vec(&self, query: &[f64], eps: f64) -> Vec<PointId> {
        let mut out = Vec::new();
        self.range(query, eps, &mut out);
        out
    }
}

impl<T: RangeIndex + ?Sized> RangeIndex for &T {
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        (**self).range(query, eps, out)
    }

    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        (**self).count_range(query, eps)
    }

    fn len(&self) -> usize {
        (**self).len()
    }
}
