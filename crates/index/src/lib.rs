//! Range-query engines for density-based clustering.
//!
//! Every DBSCAN-family algorithm in this workspace is built on one
//! primitive: the ε-range query *"give me all points within distance ε of
//! q"*. This crate provides four interchangeable engines behind the
//! [`RangeIndex`] trait:
//!
//! * [`LinearScan`] — the O(n) baseline, also the correctness oracle in
//!   tests;
//! * [`KdTree`] — median-split kd-tree with leaf buckets, the engine behind
//!   the paper's *kd-DBSCAN* baseline;
//! * [`RStarTree`] — an R\*-tree (STR bulk load + R\* insertion heuristics),
//!   the engine behind the paper's *R-DBSCAN* ground-truth algorithm;
//! * [`GridIndex`] — a uniform grid with ε-wide cells, used by the
//!   NQ-DBSCAN baseline and useful on its own in low dimensions;
//! * [`BallTree`] — sphere-bounded subtrees whose pruning does not loosen
//!   with dimensionality, the engine of choice at d ≳ 16.
//!
//! [`CountingIndex`] wraps any engine and counts queries/candidate
//! inspections so the experiments can report the θ decomposition of the
//! paper's Table II.
//!
//! All engines borrow the [`dbsvec_geometry::PointSet`] they index; they
//! never copy coordinates. Build once, query many times.
//!
//! ```
//! use dbsvec_geometry::PointSet;
//! use dbsvec_index::{KdTree, RangeIndex};
//!
//! let ps = PointSet::from_rows(&[vec![0.0, 0.0], vec![1.0, 0.0], vec![10.0, 10.0]]);
//! let tree = KdTree::build(&ps);
//! let mut hits = Vec::new();
//! tree.range(&[0.5, 0.0], 1.0, &mut hits);
//! hits.sort_unstable();
//! assert_eq!(hits, vec![0, 1]);
//! ```

pub mod balltree;
pub mod grid;
pub mod kdist;
pub mod kdtree;
pub mod linear;
pub mod rstar;
pub mod stats;
pub mod traits;

pub use balltree::BallTree;
pub use grid::GridIndex;
pub use kdist::{
    k_distance_profile, k_distance_profile_for_ids, k_distance_profile_threaded, knee_epsilon,
    kth_neighbor_distance,
};
pub use kdtree::{KdTree, OwnedKdTree};
pub use linear::LinearScan;
pub use rstar::RStarTree;
pub use stats::{CountingIndex, QueryStats};
pub use traits::RangeIndex;
