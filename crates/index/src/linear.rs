//! Brute-force linear-scan range queries.

use crate::traits::RangeIndex;
use dbsvec_geometry::{PointId, PointSet};

/// The O(n)-per-query baseline engine.
///
/// Scans every indexed point and compares squared distances against `eps²`.
/// It has no build cost and no memory overhead, which makes it the fastest
/// choice for very small sets (the SVDD target sets inside DBSVEC are a few
/// hundred points) and the natural correctness oracle for the tree engines.
pub struct LinearScan<'a> {
    points: &'a PointSet,
}

impl<'a> LinearScan<'a> {
    /// Wraps a point set; O(1).
    pub fn build(points: &'a PointSet) -> Self {
        Self { points }
    }

    /// The indexed point set.
    pub fn points(&self) -> &'a PointSet {
        self.points
    }
}

impl RangeIndex for LinearScan<'_> {
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        let eps_sq = eps * eps;
        for (id, p) in self.points.iter() {
            if dbsvec_geometry::squared_euclidean(p, query) <= eps_sq {
                out.push(id);
            }
        }
    }

    fn count_range(&self, query: &[f64], eps: f64) -> usize {
        let eps_sq = eps * eps;
        self.points
            .iter()
            .filter(|(_, p)| dbsvec_geometry::squared_euclidean(p, query) <= eps_sq)
            .count()
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointSet {
        PointSet::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
            vec![1.0, 1.0],
        ])
    }

    #[test]
    fn finds_exactly_the_ball() {
        let ps = sample();
        let idx = LinearScan::build(&ps);
        let mut hits = idx.range_vec(&[0.0, 0.0], 1.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1, 2]);
    }

    #[test]
    fn boundary_is_closed() {
        let ps = PointSet::from_rows(&[vec![3.0, 4.0]]);
        let idx = LinearScan::build(&ps);
        assert_eq!(idx.range_vec(&[0.0, 0.0], 5.0), vec![0]);
        assert!(idx.range_vec(&[0.0, 0.0], 4.999_999).is_empty());
    }

    #[test]
    fn count_matches_materialized() {
        let ps = sample();
        let idx = LinearScan::build(&ps);
        for eps in [0.0, 0.5, 1.0, 1.5, 10.0] {
            assert_eq!(
                idx.count_range(&[0.5, 0.5], eps),
                idx.range_vec(&[0.5, 0.5], eps).len()
            );
        }
    }

    #[test]
    fn appends_without_clearing() {
        let ps = sample();
        let idx = LinearScan::build(&ps);
        let mut out = vec![99];
        idx.range(&[5.0, 5.0], 0.1, &mut out);
        assert_eq!(out, vec![99, 3]);
    }

    #[test]
    fn empty_set() {
        let ps = PointSet::new(2);
        let idx = LinearScan::build(&ps);
        assert!(idx.is_empty());
        assert!(idx.range_vec(&[0.0, 0.0], 100.0).is_empty());
    }
}
