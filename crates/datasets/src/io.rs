//! CSV input/output for datasets and clustering results.
//!
//! The format is deliberately plain so results can be plotted with any
//! tool: one point per row, coordinates first, then (optionally) a label
//! column where `-1` encodes noise.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use dbsvec_geometry::PointSet;

/// Writes `points` (and optional labels) as CSV.
///
/// Header: `x0,x1,...,x{d-1}[,label]`.
///
/// # Errors
///
/// Propagates I/O errors from file creation and writing.
///
/// # Panics
///
/// Panics if `labels` is `Some` but misaligned with `points`.
pub fn write_csv(path: &Path, points: &PointSet, labels: Option<&[Option<u32>]>) -> io::Result<()> {
    if let Some(l) = labels {
        assert_eq!(l.len(), points.len(), "one label per point");
    }
    let mut out = BufWriter::new(File::create(path)?);
    for d in 0..points.dims() {
        if d > 0 {
            write!(out, ",")?;
        }
        write!(out, "x{d}")?;
    }
    if labels.is_some() {
        write!(out, ",label")?;
    }
    writeln!(out)?;

    for (i, p) in points.iter() {
        for (d, x) in p.iter().enumerate() {
            if d > 0 {
                write!(out, ",")?;
            }
            write!(out, "{x}")?;
        }
        if let Some(l) = labels {
            match l[i as usize] {
                Some(c) => write!(out, ",{c}")?,
                None => write!(out, ",-1")?,
            }
        }
        writeln!(out)?;
    }
    out.flush()
}

/// Reads a CSV produced by [`write_csv`] (or any headerful numeric CSV).
///
/// If the header's last column is named `label`, it is parsed into labels
/// (`-1` → noise); otherwise every column is a coordinate.
///
/// # Errors
///
/// Returns `InvalidData` on malformed rows or an empty file.
pub fn read_csv(path: &Path) -> io::Result<(PointSet, Option<Vec<Option<u32>>>)> {
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let columns: Vec<&str> = header.split(',').collect();
    let has_labels = columns.last().is_some_and(|c| c.trim() == "label");
    let dims = if has_labels {
        columns.len() - 1
    } else {
        columns.len()
    };
    if dims == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no coordinate columns",
        ));
    }

    let mut points = PointSet::new(dims);
    let mut labels: Vec<Option<u32>> = Vec::new();
    let mut row = vec![0.0; dims];
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        for (d, slot) in row.iter_mut().enumerate() {
            let field = fields.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing column {d}", lineno + 2),
                )
            })?;
            *slot = field.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad number {field:?}: {e}", lineno + 2),
                )
            })?;
        }
        points.push(&row);
        if has_labels {
            let field = fields.next().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: missing label", lineno + 2),
                )
            })?;
            let value: i64 = field.trim().parse().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad label {field:?}: {e}", lineno + 2),
                )
            })?;
            labels.push(if value < 0 { None } else { Some(value as u32) });
        }
    }
    Ok((points, has_labels.then_some(labels)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbsvec-io-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn round_trip_with_labels() {
        let ps = PointSet::from_rows(&[vec![1.0, 2.0], vec![3.5, -4.25]]);
        let labels = vec![Some(0), None];
        let path = tempfile("labeled.csv");
        write_csv(&path, &ps, Some(&labels)).unwrap();
        let (read_points, read_labels) = read_csv(&path).unwrap();
        assert_eq!(read_points, ps);
        assert_eq!(read_labels, Some(labels));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn round_trip_without_labels() {
        let ps = PointSet::from_rows(&[vec![0.125], vec![1e5]]);
        let path = tempfile("plain.csv");
        write_csv(&path, &ps, None).unwrap();
        let (read_points, read_labels) = read_csv(&path).unwrap();
        assert_eq!(read_points, ps);
        assert_eq!(read_labels, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_number_is_invalid_data() {
        let path = tempfile("bad.csv");
        std::fs::write(&path, "x0,x1\n1.0,oops\n").unwrap();
        let err = read_csv(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_invalid_data() {
        let path = tempfile("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn blank_lines_are_skipped() {
        let path = tempfile("blank.csv");
        std::fs::write(&path, "x0,label\n1.0,0\n\n2.0,-1\n").unwrap();
        let (points, labels) = read_csv(&path).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(labels.unwrap(), vec![Some(0), None]);
        std::fs::remove_file(&path).ok();
    }
}
