//! Deterministic synthetic datasets for the DBSVEC experiments.
//!
//! The paper evaluates on three families of data, all reproduced here with
//! seeded generators (see `DESIGN.md` §4 for the substitution rationale):
//!
//! * [`randomwalk`] — the Gan & Tao-style cluster generator used for the
//!   scalability experiments (§V-C): `c` random walkers emit points as they
//!   wander a `[0, 10^5]^d` domain, plus uniform background noise;
//! * [`shapes`] — chameleon-style 2-D scenes with non-convex clusters
//!   (rings, sine bands, bars, blobs) standing in for `t4.8k` / `t7.10k`;
//! * [`gaussian`] — isotropic Gaussian mixtures standing in for the
//!   UCI/Dim/D31 datasets of Table III.
//!
//! [`standins`] maps every named dataset of the paper to a generator call
//! with the paper's exact cardinality and dimensionality, together with
//! suggested (ε, MinPts). [`normalize`] rescales coordinates to the
//! `[0, 10^5]` domain the paper uses; [`io`] round-trips datasets as CSV.
//!
//! Every generator takes an explicit seed and is bit-for-bit reproducible.

pub mod classic;
pub mod gaussian;
pub mod io;
pub mod normalize;
pub mod plot;
pub mod randomwalk;
pub mod shapes;
pub mod standins;

use dbsvec_geometry::PointSet;

pub use classic::{spirals, two_moons};
pub use gaussian::{gaussian_mixture, grid_gaussians};
pub use normalize::normalize_to_domain;
pub use plot::{svg_scatter, write_svg_scatter};
pub use randomwalk::{random_walk_clusters, RandomWalkConfig, RandomWalkStream};
pub use shapes::{chameleon_t48k, chameleon_t710k, Scene, Shape};
pub use standins::{OpenDataset, StandIn};

/// A generated dataset: points plus the generator's ground-truth labels
/// (`None` = background noise).
///
/// The ground truth is the *generator's* intent; the paper's accuracy
/// metric compares against exact DBSCAN output instead, so these labels are
/// used only for sanity checks and the k-means comparison of Table IV.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The points.
    pub points: PointSet,
    /// Generator ground truth, aligned with the points.
    pub truth: Vec<Option<u32>>,
}

impl Dataset {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.points.dims()
    }

    /// Number of distinct ground-truth clusters.
    pub fn truth_clusters(&self) -> usize {
        self.truth
            .iter()
            .flatten()
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0)
    }
}
