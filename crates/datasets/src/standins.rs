//! Stand-ins for the paper's named evaluation datasets.
//!
//! The UCI, Mopsi, chameleon, and image datasets the paper uses are
//! external artifacts; this module regenerates each as a synthetic stand-in
//! with the **paper's exact cardinality and dimensionality** and a
//! comparable cluster structure (see `DESIGN.md` §4). Every stand-in also
//! carries suggested `(ε, MinPts)` derived from the data's own density, so
//! the experiment harnesses run DBSCAN in a sensible regime out of the box.

use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;

use crate::gaussian::gaussian_mixture;
use crate::normalize::{normalize_to_domain, PAPER_DOMAIN};
use crate::randomwalk::{random_walk_clusters, RandomWalkConfig};
use crate::shapes::{scene_t48k, scene_t710k};
use crate::Dataset;

/// DBSCAN parameters suggested for a generated dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SuggestedParams {
    /// Range-query radius.
    pub eps: f64,
    /// Density threshold.
    pub min_pts: usize,
}

/// A generated stand-in: the dataset, its display name, and suggested
/// DBSCAN parameters.
#[derive(Clone, Debug)]
pub struct StandIn {
    /// Dataset name as printed in the paper's tables.
    pub name: &'static str,
    /// The generated points and ground truth.
    pub dataset: Dataset,
    /// Density-derived (ε, MinPts).
    pub suggested: SuggestedParams,
}

/// Every named dataset of the paper's evaluation (§V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpenDataset {
    /// UCI Seeds: 210 × 7, 3 wheat varieties.
    Seeds,
    /// Mopsi location data, Joensuu: 6014 × 2.
    MapJoensuu,
    /// Mopsi location data, Finland: 13467 × 2.
    MapFinland,
    /// UCI Breast-Cancer (Wisconsin): 669 × 9, 2 classes.
    BreastCancer,
    /// House color features: 34112 × 3.
    House,
    /// Miss-America block features: 6480 × 16.
    MissAmerica,
    /// Fränti Dim32: 1024 × 32, 16 Gaussian clusters.
    Dim32,
    /// Fränti Dim64: 1024 × 64, 16 Gaussian clusters.
    Dim64,
    /// D31 (Veenman et al.): 3100 × 2, 31 Gaussian clusters.
    D31,
    /// Chameleon t4.8k: 8000 × 2, 6 arbitrary shapes + noise.
    T48k,
    /// Chameleon t7.10k: 10000 × 2, 9 arbitrary shapes + noise.
    T710k,
    /// PAMAP2 physical-activity monitoring: 1,050,199 × 17.
    Pamap2,
    /// Sensor readings: 919,438 × 11.
    Sensors,
    /// Corel image features: 68,040 × 32.
    CorelImage,
}

impl OpenDataset {
    /// The eleven accuracy datasets of Table III, in table order.
    pub fn table3() -> [OpenDataset; 11] {
        use OpenDataset::*;
        [
            Seeds,
            MapJoensuu,
            MapFinland,
            BreastCancer,
            House,
            MissAmerica,
            Dim32,
            Dim64,
            D31,
            T48k,
            T710k,
        ]
    }

    /// The three real-world efficiency datasets of §V-C.
    pub fn realworld() -> [OpenDataset; 3] {
        use OpenDataset::*;
        [Pamap2, Sensors, CorelImage]
    }

    /// Display name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            OpenDataset::Seeds => "Seeds",
            OpenDataset::MapJoensuu => "Map-Jo.",
            OpenDataset::MapFinland => "Map-Fi.",
            OpenDataset::BreastCancer => "Breast.",
            OpenDataset::House => "House",
            OpenDataset::MissAmerica => "Miss.",
            OpenDataset::Dim32 => "Dim32",
            OpenDataset::Dim64 => "Dim64",
            OpenDataset::D31 => "Data31",
            OpenDataset::T48k => "t4.8k",
            OpenDataset::T710k => "t7.10k",
            OpenDataset::Pamap2 => "PAMAP2",
            OpenDataset::Sensors => "Sensors",
            OpenDataset::CorelImage => "Corel-Image",
        }
    }

    /// The paper's cardinality for this dataset.
    pub fn cardinality(&self) -> usize {
        match self {
            OpenDataset::Seeds => 210,
            OpenDataset::MapJoensuu => 6014,
            OpenDataset::MapFinland => 13_467,
            OpenDataset::BreastCancer => 669,
            OpenDataset::House => 34_112,
            OpenDataset::MissAmerica => 6480,
            OpenDataset::Dim32 | OpenDataset::Dim64 => 1024,
            OpenDataset::D31 => 3100,
            OpenDataset::T48k => 8000,
            OpenDataset::T710k => 10_000,
            OpenDataset::Pamap2 => 1_050_199,
            OpenDataset::Sensors => 919_438,
            OpenDataset::CorelImage => 68_040,
        }
    }

    /// The paper's dimensionality for this dataset.
    pub fn dims(&self) -> usize {
        match self {
            OpenDataset::Seeds => 7,
            OpenDataset::MapJoensuu | OpenDataset::MapFinland => 2,
            OpenDataset::BreastCancer => 9,
            OpenDataset::House => 3,
            OpenDataset::MissAmerica => 16,
            OpenDataset::Dim32 => 32,
            OpenDataset::Dim64 => 64,
            OpenDataset::D31 | OpenDataset::T48k | OpenDataset::T710k => 2,
            OpenDataset::Pamap2 => 17,
            OpenDataset::Sensors => 11,
            OpenDataset::CorelImage => 32,
        }
    }

    /// Number of ground-truth clusters the stand-in synthesizes.
    fn cluster_count(&self) -> usize {
        match self {
            OpenDataset::Seeds => 3,
            OpenDataset::MapJoensuu => 8,
            OpenDataset::MapFinland => 12,
            OpenDataset::BreastCancer => 2,
            OpenDataset::House => 10,
            OpenDataset::MissAmerica => 8,
            OpenDataset::Dim32 | OpenDataset::Dim64 => 16,
            OpenDataset::D31 => 31,
            OpenDataset::T48k => 6,
            OpenDataset::T710k => 9,
            OpenDataset::Pamap2 => 12,
            OpenDataset::Sensors => 10,
            OpenDataset::CorelImage => 40,
        }
    }

    /// Generates the stand-in at the paper's full cardinality.
    pub fn generate(&self, seed: u64) -> StandIn {
        self.generate_scaled(1.0, seed)
    }

    /// Generates the stand-in with cardinality scaled by `scale`
    /// (useful to keep the million-point efficiency datasets tractable on a
    /// laptop; the paper's shapes survive uniform subsampling).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn generate_scaled(&self, scale: f64, seed: u64) -> StandIn {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let n = ((self.cardinality() as f64 * scale).round() as usize).max(64);
        let d = self.dims();
        let k = self.cluster_count();

        let dataset = match self {
            // 2-D map data: trajectory-like random walks resemble
            // road-bound location datasets.
            OpenDataset::MapJoensuu | OpenDataset::MapFinland => {
                let config = RandomWalkConfig {
                    n,
                    dims: 2,
                    clusters: k,
                    domain: PAPER_DOMAIN,
                    step_fraction: 0.0015,
                    noise_fraction: 0.02,
                };
                random_walk_clusters(&config, seed)
            }
            // Activity / sensor / video-block time series: consecutive
            // frames drift through feature space, so a random walk models
            // them far better than spherical blobs — and gives the
            // non-convex clusters on which Table IV separates DBSVEC from
            // k-means.
            OpenDataset::Pamap2 | OpenDataset::Sensors | OpenDataset::MissAmerica => {
                let config = RandomWalkConfig {
                    n,
                    dims: d,
                    clusters: k,
                    domain: PAPER_DOMAIN,
                    step_fraction: 0.0008,
                    noise_fraction: 0.005,
                };
                random_walk_clusters(&config, seed)
            }
            // Arbitrary-shape 2-D benchmarks.
            OpenDataset::T48k => {
                let mut ds = scene_t48k().generate(n, seed);
                ds.points = normalize_to_domain(&ds.points, PAPER_DOMAIN);
                ds
            }
            OpenDataset::T710k => {
                let mut ds = scene_t710k().generate(n, seed);
                ds.points = normalize_to_domain(&ds.points, PAPER_DOMAIN);
                ds
            }
            // Image-feature clusters are tight relative to the normalized
            // domain (similar images have very similar histograms), which
            // keeps them dense under the paper's fixed ε = 5000 protocol.
            OpenDataset::CorelImage => gaussian_mixture(n, d, k, 500.0, PAPER_DOMAIN, seed),
            // Everything else: separated Gaussian mixtures. σ shrinks with
            // dimensionality so that 6σ√d-separated centers fit the domain.
            _ => {
                let sigma = (PAPER_DOMAIN / (14.0 * (d as f64).sqrt()))
                    .min(PAPER_DOMAIN / (8.0 * (k as f64).sqrt() * (d as f64).sqrt()));
                gaussian_mixture(n, d, k, sigma, PAPER_DOMAIN, seed)
            }
        };

        let min_pts = default_min_pts(n);
        let eps = suggest_eps(&dataset.points, min_pts, seed ^ 0x5EED);
        StandIn {
            name: self.name(),
            dataset,
            suggested: SuggestedParams { eps, min_pts },
        }
    }
}

/// MinPts heuristic: grows slowly with n, in the ranges the paper uses
/// (20 on t4.8k at n = 8000, 100 on the million-point synthetic sets).
pub fn default_min_pts(n: usize) -> usize {
    match n {
        0..=999 => 5,
        1000..=9_999 => 10,
        10_000..=99_999 => 20,
        _ => 100,
    }
}

/// Suggests ε as 1.5× the median distance-to-`MinPts`-th-neighbor over a
/// deterministic sample of query points (searching the *full* set, so the
/// estimate reflects true density). Robust to ≤ ~40% background noise
/// because the median ignores the sparse tail.
pub fn suggest_eps(points: &PointSet, min_pts: usize, seed: u64) -> f64 {
    let n = points.len();
    if n <= min_pts {
        return 1.0;
    }
    let mut rng = SplitMix64::new(seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut ids);
    let sample = &ids[..n.min(200)];

    let mut kth_dists: Vec<f64> = Vec::with_capacity(sample.len());
    let mut dists: Vec<f64> = Vec::with_capacity(n);
    for &q in sample {
        dists.clear();
        let pq = points.point(q);
        for (_, p) in points.iter() {
            dists.push(dbsvec_geometry::squared_euclidean(pq, p));
        }
        let k = min_pts.min(dists.len() - 1);
        dists.select_nth_unstable_by(k, |a, b| a.partial_cmp(b).expect("NaN distance"));
        kth_dists.push(dists[k].sqrt());
    }
    kth_dists.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
    let median = kth_dists[kth_dists.len() / 2];
    (1.5 * median).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shapes_match_the_paper() {
        for ds in OpenDataset::table3() {
            let expect_n = ds.cardinality();
            let expect_d = ds.dims();
            // Generate small ones fully; scale the big ones for test speed.
            let scale = if expect_n > 10_000 { 0.1 } else { 1.0 };
            let standin = ds.generate_scaled(scale, 42);
            assert_eq!(standin.dataset.dims(), expect_d, "{}", ds.name());
            let expected = ((expect_n as f64 * scale).round() as usize).max(64);
            assert_eq!(standin.dataset.len(), expected, "{}", ds.name());
            assert!(standin.suggested.eps > 0.0);
            assert!(standin.suggested.min_pts >= 5);
        }
    }

    #[test]
    fn full_cardinalities_are_the_papers() {
        assert_eq!(OpenDataset::Seeds.generate(1).dataset.len(), 210);
        assert_eq!(OpenDataset::Dim32.generate(1).dataset.len(), 1024);
        assert_eq!(OpenDataset::Dim64.generate(1).dataset.dims(), 64);
    }

    #[test]
    fn suggested_eps_is_in_a_dbscan_usable_range() {
        let standin = OpenDataset::Dim32.generate(7);
        let eps = standin.suggested.eps;
        let min_pts = standin.suggested.min_pts;
        // With the suggested parameters, most points must be core points.
        let points = &standin.dataset.points;
        let mut core = 0;
        let sample = 100;
        for i in 0..sample {
            let count = points
                .iter()
                .filter(|(_, p)| {
                    dbsvec_geometry::squared_euclidean(p, points.point(i)) <= eps * eps
                })
                .count();
            if count >= min_pts {
                core += 1;
            }
        }
        assert!(
            core > sample / 2,
            "only {core}/{sample} sampled points are core"
        );
    }

    #[test]
    fn scaling_reduces_cardinality() {
        let full = OpenDataset::MissAmerica.generate(3);
        let half = OpenDataset::MissAmerica.generate_scaled(0.5, 3);
        assert_eq!(full.dataset.len(), 6480);
        assert_eq!(half.dataset.len(), 3240);
        assert_eq!(half.dataset.dims(), 16);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = OpenDataset::Seeds.generate(11);
        let b = OpenDataset::Seeds.generate(11);
        assert_eq!(a.dataset.points, b.dataset.points);
        assert_eq!(a.suggested, b.suggested);
    }

    #[test]
    fn default_min_pts_bands() {
        assert_eq!(default_min_pts(210), 5);
        assert_eq!(default_min_pts(8000), 10);
        assert_eq!(default_min_pts(34_112), 20);
        assert_eq!(default_min_pts(2_000_000), 100);
    }

    #[test]
    fn suggest_eps_handles_tiny_sets() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0]]);
        assert_eq!(suggest_eps(&ps, 5, 1), 1.0);
    }
}
