//! Classic non-convex clustering benchmarks: two moons and spirals.
//!
//! These are the standard "k-means fails, density clustering wins" shapes.
//! They complement the chameleon-style scenes in [`crate::shapes`] with
//! the two benchmarks every clustering paper's intro gestures at, and they
//! exercise DBSVEC's SVDD boundary description on maximally non-convex
//! sub-clusters.

use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;

use crate::Dataset;

/// Two interleaving half-moons with Gaussian jitter.
///
/// The upper moon spans angles `[0, π]` on a unit circle; the lower moon is
/// shifted right by 1 and down by 0.5, spanning `[π, 2π]`. `noise` is the
/// jitter standard deviation (0.05–0.1 keeps the moons separable).
///
/// # Panics
///
/// Panics if `n == 0` or `noise < 0`.
pub fn two_moons(n: usize, noise: f64, seed: u64) -> Dataset {
    assert!(n > 0, "n must be positive");
    assert!(noise >= 0.0, "noise must be non-negative");
    let mut rng = SplitMix64::new(seed);
    let mut points = PointSet::with_capacity(2, n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let moon = i % 2;
        let t = rng.next_f64() * std::f64::consts::PI;
        let (x, y) = if moon == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        points.push(&[x + noise * rng.next_normal(), y + noise * rng.next_normal()]);
        truth.push(Some(moon as u32));
    }
    Dataset { points, truth }
}

/// `arms` interleaved Archimedean spirals with Gaussian jitter.
///
/// Each arm winds `turns` full revolutions outward from radius
/// `0.25` to `1.0` (before jitter), rotated by `2π/arms` per arm.
///
/// # Panics
///
/// Panics if `n == 0`, `arms == 0`, `turns <= 0`, or `noise < 0`.
pub fn spirals(n: usize, arms: usize, turns: f64, noise: f64, seed: u64) -> Dataset {
    assert!(n > 0 && arms > 0, "n and arms must be positive");
    assert!(turns > 0.0, "turns must be positive");
    assert!(noise >= 0.0, "noise must be non-negative");
    let mut rng = SplitMix64::new(seed);
    let mut points = PointSet::with_capacity(2, n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let arm = i % arms;
        let t = rng.next_f64(); // position along the arm, 0 = center
        let angle =
            t * turns * std::f64::consts::TAU + arm as f64 * std::f64::consts::TAU / arms as f64;
        let radius = 0.25 + 0.75 * t;
        points.push(&[
            radius * angle.cos() + noise * rng.next_normal(),
            radius * angle.sin() + noise * rng.next_normal(),
        ]);
        truth.push(Some(arm as u32));
    }
    Dataset { points, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moons_have_two_balanced_classes() {
        let ds = two_moons(1000, 0.05, 1);
        assert_eq!(ds.len(), 1000);
        assert_eq!(ds.truth_clusters(), 2);
        let upper = ds.truth.iter().filter(|t| **t == Some(0)).count();
        assert_eq!(upper, 500);
    }

    #[test]
    fn moons_are_non_convex_but_separable() {
        // The centroid of the upper moon lies in a low-density hole: its
        // nearest data point is farther away than typical in-moon spacing.
        let ds = two_moons(2000, 0.02, 2);
        let upper: Vec<u32> = ds
            .truth
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Some(0))
            .map(|(i, _)| i as u32)
            .collect();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for &i in &upper {
            cx += ds.points.point(i)[0];
            cy += ds.points.point(i)[1];
        }
        let c = [cx / upper.len() as f64, cy / upper.len() as f64];
        let nearest = upper
            .iter()
            .map(|&i| dbsvec_geometry::euclidean(ds.points.point(i), &c))
            .fold(f64::INFINITY, f64::min);
        assert!(nearest > 0.2, "centroid hole missing: nearest {nearest}");
    }

    #[test]
    fn spirals_have_requested_arms() {
        let ds = spirals(1500, 3, 1.5, 0.01, 3);
        assert_eq!(ds.truth_clusters(), 3);
        let per_arm = ds.truth.iter().filter(|t| **t == Some(0)).count();
        assert_eq!(per_arm, 500);
    }

    #[test]
    fn spiral_radii_stay_in_band() {
        let ds = spirals(500, 2, 2.0, 0.0, 4);
        for (_, p) in ds.points.iter() {
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((0.24..=1.01).contains(&r), "radius {r} out of band");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            two_moons(100, 0.05, 9).points,
            two_moons(100, 0.05, 9).points
        );
        assert_eq!(
            spirals(100, 2, 1.0, 0.05, 9).points,
            spirals(100, 2, 1.0, 0.05, 9).points
        );
    }

    #[test]
    #[should_panic(expected = "noise must be non-negative")]
    fn negative_noise_rejected() {
        let _ = two_moons(10, -0.1, 0);
    }
}
