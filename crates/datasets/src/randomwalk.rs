//! The random-walk cluster generator used for the scalability experiments.
//!
//! Modeled on the synthetic generator of Gan & Tao (SIGMOD 2015) that the
//! paper's §V-C uses: `c` walkers start at random positions in the
//! `[0, domain]^d` cube; each emitted point advances a randomly chosen
//! walker by a uniform step and records its position, producing `c`
//! snake-like dense clusters of arbitrary shape. A `noise_fraction` of the
//! points is drawn uniformly from the whole domain instead.

use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;

use crate::Dataset;

/// Configuration for [`random_walk_clusters`].
#[derive(Clone, Copy, Debug)]
pub struct RandomWalkConfig {
    /// Total points to generate (clusters + noise).
    pub n: usize,
    /// Dimensionality.
    pub dims: usize,
    /// Number of walkers (≈ number of clusters).
    pub clusters: usize,
    /// Domain edge length; the paper normalizes to `10^5`.
    pub domain: f64,
    /// Maximum per-coordinate step between consecutive walker emissions,
    /// as a fraction of the domain. The default `0.002` (step 200 in the
    /// `10^5` domain) makes an ε = 5000 ball hold ≈ (ε/step)² ≈ 625 walk
    /// emissions — comfortably above the paper's MinPts = 100 — while each
    /// cluster spans many ε-balls, so cluster expansion is non-trivial at
    /// every cardinality.
    pub step_fraction: f64,
    /// Fraction of points drawn uniformly as background noise.
    pub noise_fraction: f64,
}

impl RandomWalkConfig {
    /// The paper's default scalability workload shape for a given `n` and
    /// `d`: 10 walkers in a `[0, 10^5]^d` domain with 0.1% noise.
    ///
    /// The step shrinks with `√d` so the expected distance between
    /// consecutive emissions — and hence the ε-ball occupancy — is the same
    /// at every dimensionality. Without this, a d-sweep at fixed ε (the
    /// paper's Fig. 6 protocol) would silently change the density regime
    /// instead of isolating the effect of d.
    pub fn paper_default(n: usize, dims: usize) -> Self {
        Self {
            n,
            dims,
            clusters: 10,
            domain: 1e5,
            step_fraction: 0.002 * (8.0 / dims as f64).sqrt(),
            noise_fraction: 0.001,
        }
    }
}

/// Streaming form of [`random_walk_clusters`]: emits the same point
/// sequence one at a time, holding only the walker states and one scratch
/// row — O(clusters · d) memory regardless of `n`. The sampled-fit
/// scalability sweep uses it to materialize 10⁶⁺-point sets straight into
/// a [`PointSet`] without ever building the side `truth` vector.
///
/// The batch generator is implemented on top of this stream, so the two
/// are bit-identical per `(config, seed)` by construction.
#[derive(Clone, Debug)]
pub struct RandomWalkStream {
    rng: SplitMix64,
    config: RandomWalkConfig,
    walkers: Vec<Vec<f64>>,
    scratch: Vec<f64>,
    emitted: usize,
}

impl RandomWalkStream {
    /// Starts the stream described by `config`, deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `dims == 0`, `clusters == 0`, or
    /// `noise_fraction` is outside `[0, 1]`.
    pub fn new(config: &RandomWalkConfig, seed: u64) -> Self {
        assert!(config.n > 0, "n must be positive");
        assert!(config.dims > 0, "dims must be positive");
        assert!(config.clusters > 0, "clusters must be positive");
        assert!(
            (0.0..=1.0).contains(&config.noise_fraction),
            "noise fraction must be in [0, 1]"
        );
        let mut rng = SplitMix64::new(seed);
        let d = config.dims;
        // Walker start positions, kept in the interior so walks rarely
        // clamp.
        let walkers: Vec<Vec<f64>> = (0..config.clusters)
            .map(|_| {
                (0..d)
                    .map(|_| rng.next_f64_range(0.1 * config.domain, 0.9 * config.domain))
                    .collect()
            })
            .collect();
        Self {
            rng,
            config: *config,
            walkers,
            scratch: vec![0.0; d],
            emitted: 0,
        }
    }

    /// Emits the next point, or `None` once `config.n` points are out.
    /// The coordinate slice borrows the stream's scratch row — copy it
    /// before the next call. The second element is the ground-truth label
    /// (`None` for background noise).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(&[f64], Option<u32>)> {
        if self.emitted >= self.config.n {
            return None;
        }
        self.emitted += 1;
        let step = self.config.step_fraction * self.config.domain;
        if self.rng.next_f64() < self.config.noise_fraction {
            for x in &mut self.scratch {
                *x = self.rng.next_f64_range(0.0, self.config.domain);
            }
            Some((&self.scratch, None))
        } else {
            let w = self.rng.next_below(self.config.clusters as u64) as usize;
            for x in self.walkers[w].iter_mut() {
                *x = (*x + self.rng.next_f64_range(-step, step)).clamp(0.0, self.config.domain);
            }
            self.scratch.copy_from_slice(&self.walkers[w]);
            Some((&self.scratch, Some(w as u32)))
        }
    }

    /// Drains the stream into a bare [`PointSet`], dropping the truth
    /// labels — the memory-lean path for scalability workloads.
    pub fn collect_points(mut self) -> PointSet {
        let mut points = PointSet::with_capacity(self.config.dims, self.config.n);
        while let Some((p, _)) = self.next() {
            points.push(p);
        }
        points
    }
}

/// Generates the dataset described by `config`, deterministically from
/// `seed`.
///
/// # Panics
///
/// Panics if `n == 0`, `dims == 0`, `clusters == 0`, or `noise_fraction`
/// is outside `[0, 1]`.
pub fn random_walk_clusters(config: &RandomWalkConfig, seed: u64) -> Dataset {
    let mut stream = RandomWalkStream::new(config, seed);
    let mut points = PointSet::with_capacity(config.dims, config.n);
    let mut truth = Vec::with_capacity(config.n);
    while let Some((p, label)) = stream.next() {
        points.push(p);
        truth.push(label);
    }
    Dataset { points, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let config = RandomWalkConfig::paper_default(5000, 8);
        let ds = random_walk_clusters(&config, 1);
        assert_eq!(ds.len(), 5000);
        assert_eq!(ds.dims(), 8);
        assert!(ds.truth_clusters() <= 10);
    }

    #[test]
    fn coordinates_stay_in_domain() {
        let config = RandomWalkConfig::paper_default(2000, 3);
        let ds = random_walk_clusters(&config, 2);
        for (_, p) in ds.points.iter() {
            for &x in p {
                assert!((0.0..=1e5).contains(&x), "coordinate {x} out of domain");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = RandomWalkConfig::paper_default(1000, 4);
        let a = random_walk_clusters(&config, 7);
        let b = random_walk_clusters(&config, 7);
        assert_eq!(a.points, b.points);
        assert_eq!(a.truth, b.truth);
        let c = random_walk_clusters(&config, 8);
        assert_ne!(a.points, c.points);
    }

    #[test]
    fn noise_fraction_is_respected() {
        let config = RandomWalkConfig {
            noise_fraction: 0.2,
            ..RandomWalkConfig::paper_default(10_000, 2)
        };
        let ds = random_walk_clusters(&config, 3);
        let noise = ds.truth.iter().filter(|t| t.is_none()).count();
        let frac = noise as f64 / ds.len() as f64;
        assert!((frac - 0.2).abs() < 0.02, "noise fraction {frac}");
    }

    #[test]
    fn clusters_are_much_denser_than_noise() {
        // Mean nearest-neighbor distance within a cluster should be far
        // below the domain scale.
        let config = RandomWalkConfig::paper_default(2000, 2);
        let ds = random_walk_clusters(&config, 5);
        let members: Vec<u32> = ds
            .truth
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Some(0))
            .map(|(i, _)| i as u32)
            .take(100)
            .collect();
        assert!(members.len() > 10);
        let mut total_nn = 0.0;
        for &i in &members {
            let nn = members
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| ds.points.distance(i, j))
                .fold(f64::INFINITY, f64::min);
            total_nn += nn;
        }
        let mean_nn = total_nn / members.len() as f64;
        assert!(
            mean_nn < 1000.0,
            "cluster too sparse: mean NN distance {mean_nn}"
        );
    }

    #[test]
    fn stream_is_bit_identical_to_the_batch_generator() {
        let config = RandomWalkConfig::paper_default(3000, 5);
        let batch = random_walk_clusters(&config, 9);
        let mut stream = RandomWalkStream::new(&config, 9);
        let mut i = 0u32;
        while let Some((p, label)) = stream.next() {
            assert_eq!(p, batch.points.point(i), "point {i} diverged");
            assert_eq!(label, batch.truth[i as usize], "label {i} diverged");
            i += 1;
        }
        assert_eq!(i as usize, batch.len(), "stream ended early");
        assert_eq!(
            RandomWalkStream::new(&config, 9).collect_points(),
            batch.points
        );
    }

    #[test]
    #[should_panic(expected = "noise fraction")]
    fn rejects_bad_noise_fraction() {
        let config = RandomWalkConfig {
            noise_fraction: 1.5,
            ..RandomWalkConfig::paper_default(10, 2)
        };
        let _ = random_walk_clusters(&config, 0);
    }
}
