//! Isotropic Gaussian mixtures.
//!
//! Stand-ins for the paper's UCI and benchmark datasets (`Dim32`, `Dim64`,
//! `D31`, `Seeds`, ...): well separated isotropic Gaussian clusters in a
//! unit-scale domain, later normalized to `[0, 10^5]` like the paper does.

use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;

use crate::Dataset;

/// `k` isotropic Gaussian clusters with uniformly placed centers.
///
/// Centers are drawn uniformly from `[margin, domain − margin]^d` with
/// `margin = 3σ·√d`, rejecting centers closer than `6σ·√d` to one another
/// so the clusters stay DBSCAN-separable. Cluster sizes are as equal as
/// `n/k` allows.
///
/// # Panics
///
/// Panics if any argument is zero/non-positive, or if `k` centers cannot be
/// placed at the required separation (domain too small).
pub fn gaussian_mixture(
    n: usize,
    dims: usize,
    k: usize,
    sigma: f64,
    domain: f64,
    seed: u64,
) -> Dataset {
    assert!(n > 0 && dims > 0 && k > 0, "n, dims, k must be positive");
    assert!(
        sigma > 0.0 && domain > 0.0,
        "sigma and domain must be positive"
    );
    let mut rng = SplitMix64::new(seed);

    let spread = sigma * (dims as f64).sqrt();
    let margin = (3.0 * spread).min(domain / 2.0);
    let min_sep = 6.0 * spread;

    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut attempts = 0;
    while centers.len() < k {
        attempts += 1;
        assert!(
            attempts < 100_000,
            "cannot place {k} centers {min_sep:.2} apart in a {domain:.2} domain"
        );
        let cand: Vec<f64> = (0..dims)
            .map(|_| rng.next_f64_range(margin, (domain - margin).max(margin)))
            .collect();
        if centers
            .iter()
            .all(|c| dbsvec_geometry::euclidean(c, &cand) >= min_sep)
        {
            centers.push(cand);
        }
    }

    let mut points = PointSet::with_capacity(dims, n);
    let mut truth = Vec::with_capacity(n);
    let mut row = vec![0.0; dims];
    for i in 0..n {
        let c = i % k; // round-robin keeps sizes balanced
        for (x, center) in row.iter_mut().zip(&centers[c]) {
            *x = (center + sigma * rng.next_normal()).clamp(0.0, domain);
        }
        points.push(&row);
        truth.push(Some(c as u32));
    }
    Dataset { points, truth }
}

/// `rows × cols` Gaussian clusters on a regular grid — the layout of the
/// D31 benchmark (Veenman et al.), which packs 31 clusters tightly.
///
/// # Panics
///
/// Panics if any argument is zero or `sigma <= 0`.
pub fn grid_gaussians(
    n: usize,
    rows: usize,
    cols: usize,
    sigma: f64,
    spacing: f64,
    seed: u64,
) -> Dataset {
    assert!(
        n > 0 && rows > 0 && cols > 0,
        "n, rows, cols must be positive"
    );
    assert!(
        sigma > 0.0 && spacing > 0.0,
        "sigma and spacing must be positive"
    );
    let mut rng = SplitMix64::new(seed);
    let k = rows * cols;
    let mut points = PointSet::with_capacity(2, n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % k;
        let (r, q) = (c / cols, c % cols);
        let cx = (q as f64 + 1.0) * spacing;
        let cy = (r as f64 + 1.0) * spacing;
        let p = [
            cx + sigma * rng.next_normal(),
            cy + sigma * rng.next_normal(),
        ];
        points.push(&p);
        truth.push(Some(c as u32));
    }
    Dataset { points, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixture_has_requested_shape() {
        let ds = gaussian_mixture(1024, 32, 16, 1.0, 1000.0, 1);
        assert_eq!(ds.len(), 1024);
        assert_eq!(ds.dims(), 32);
        assert_eq!(ds.truth_clusters(), 16);
        // Balanced: each cluster gets 64 points.
        let mut sizes = [0; 16];
        for t in ds.truth.iter().flatten() {
            sizes[*t as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s == 64));
    }

    #[test]
    fn clusters_are_separated() {
        let ds = gaussian_mixture(400, 4, 4, 1.0, 500.0, 2);
        // Compute centroids per truth cluster and check pairwise gaps.
        let mut centroids = vec![vec![0.0; 4]; 4];
        let mut counts = vec![0.0; 4];
        for (i, t) in ds.truth.iter().enumerate() {
            let c = t.unwrap() as usize;
            counts[c] += 1.0;
            for (acc, &x) in centroids[c].iter_mut().zip(ds.points.point(i as u32)) {
                *acc += x;
            }
        }
        for (c, count) in centroids.iter_mut().zip(&counts) {
            for x in c.iter_mut() {
                *x /= count;
            }
        }
        for i in 0..4 {
            for j in (i + 1)..4 {
                let gap = dbsvec_geometry::euclidean(&centroids[i], &centroids[j]);
                assert!(gap >= 6.0, "centroids {i},{j} only {gap} apart");
            }
        }
    }

    #[test]
    fn grid_gaussians_d31_layout() {
        // D31-like: 31 clusters would need rows*cols = 31 (prime); the
        // stand-in uses a 6x6 grid minus nothing — verify the grid variant
        // itself with a clean 4x8 = 32 layout here.
        let ds = grid_gaussians(3100, 4, 8, 0.5, 10.0, 3);
        assert_eq!(ds.len(), 3100);
        assert_eq!(ds.truth_clusters(), 32);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = gaussian_mixture(100, 3, 2, 1.0, 100.0, 5);
        let b = gaussian_mixture(100, 3, 2, 1.0, 100.0, 5);
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn coordinates_clamped_to_domain() {
        let ds = gaussian_mixture(1000, 2, 3, 5.0, 100.0, 7);
        for (_, p) in ds.points.iter() {
            for &x in p {
                assert!((0.0..=100.0).contains(&x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn impossible_separation_panics() {
        // 100 well-separated clusters cannot fit in a tiny domain.
        let _ = gaussian_mixture(100, 2, 100, 10.0, 20.0, 1);
    }
}
