//! Minimal SVG scatter plots for 2-D clusterings.
//!
//! The paper's Fig. 1 is a colored scatter of the t4.8k clustering; this
//! module renders the same artifact without any plotting dependency. Each
//! cluster gets a color from a rotating palette; noise is drawn as small
//! gray crosses.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use dbsvec_geometry::PointSet;

/// Qualitative palette (ColorBrewer Set1 + friends), cycled per cluster id.
const PALETTE: [&str; 12] = [
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#a65628", "#f781bf", "#17becf",
    "#bcbd22", "#666699", "#66c2a5", "#fc8d62",
];

/// Renders a 2-D clustering as an SVG string.
///
/// Coordinates are fitted to a `width × width` viewport with a 4% margin;
/// the y-axis is flipped so the plot matches mathematical orientation.
///
/// # Panics
///
/// Panics if the point set is not 2-D or `assignments` is misaligned.
pub fn svg_scatter(points: &PointSet, assignments: &[Option<u32>], width: u32) -> String {
    assert_eq!(points.dims(), 2, "SVG scatter requires 2-D points");
    assert_eq!(points.len(), assignments.len(), "one assignment per point");

    let w = width as f64;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{width}" viewBox="0 0 {width} {width}">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{width}" height="{width}" fill="white"/>"#
    );

    if let Some(bbox) = points.bounding_box() {
        let (x0, y0) = (bbox.min()[0], bbox.min()[1]);
        let (x1, y1) = (bbox.max()[0], bbox.max()[1]);
        let raw_span = (x1 - x0).max(y1 - y0);
        // A degenerate (single-point) extent maps everything to the center.
        let span = if raw_span > 0.0 { raw_span } else { 1.0 };
        let margin = 0.04 * w;
        let scale = (w - 2.0 * margin) / span;
        let radius = (w / 400.0).max(1.0);

        for (i, p) in points.iter() {
            let px = margin + (p[0] - x0) * scale;
            let py = w - margin - (p[1] - y0) * scale;
            match assignments[i as usize] {
                Some(c) => {
                    let color = PALETTE[c as usize % PALETTE.len()];
                    let _ = writeln!(
                        svg,
                        r#"<circle cx="{px:.2}" cy="{py:.2}" r="{radius:.2}" fill="{color}"/>"#
                    );
                }
                None => {
                    let d = radius;
                    let _ = writeln!(
                        svg,
                        r##"<path d="M{:.2} {:.2} L{:.2} {:.2} M{:.2} {:.2} L{:.2} {:.2}" stroke="#999" stroke-width="0.6"/>"##,
                        px - d,
                        py - d,
                        px + d,
                        py + d,
                        px - d,
                        py + d,
                        px + d,
                        py - d
                    );
                }
            }
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// Writes [`svg_scatter`] output to a file.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn write_svg_scatter(
    path: &Path,
    points: &PointSet,
    assignments: &[Option<u32>],
    width: u32,
) -> io::Result<()> {
    std::fs::write(path, svg_scatter(points, assignments, width))
}

/// Like [`svg_scatter`], with dashed overlay segments in data coordinates —
/// made for SVDD decision boundaries (the paper's Fig. 3 red dashed curve).
///
/// Additionally, `highlight` ids are drawn as larger hollow markers (the
/// support vectors in a Fig. 3-style rendering).
///
/// # Panics
///
/// Panics under the same conditions as [`svg_scatter`].
pub fn svg_scatter_with_overlay(
    points: &PointSet,
    assignments: &[Option<u32>],
    segments: &[[[f64; 2]; 2]],
    highlight: &[u32],
    width: u32,
) -> String {
    let base = svg_scatter(points, assignments, width);
    let Some(bbox) = points.bounding_box() else {
        return base;
    };
    let w = width as f64;
    let (x0, y0) = (bbox.min()[0], bbox.min()[1]);
    let raw_span = (bbox.max()[0] - x0).max(bbox.max()[1] - y0);
    let span = if raw_span > 0.0 { raw_span } else { 1.0 };
    let margin = 0.04 * w;
    let scale = (w - 2.0 * margin) / span;
    let to_px = |p: &[f64; 2]| -> (f64, f64) {
        (
            margin + (p[0] - x0) * scale,
            w - margin - (p[1] - y0) * scale,
        )
    };

    let mut overlay = String::new();
    for seg in segments {
        let (ax, ay) = to_px(&seg[0]);
        let (bx, by) = to_px(&seg[1]);
        let _ = writeln!(
            overlay,
            r##"<line x1="{ax:.2}" y1="{ay:.2}" x2="{bx:.2}" y2="{by:.2}" stroke="#d62728" stroke-width="1.2" stroke-dasharray="4 3"/>"##
        );
    }
    let r = (w / 150.0).max(2.5);
    for &id in highlight {
        let p = points.point(id);
        let (px, py) = to_px(&[p[0], p[1]]);
        let _ = writeln!(
            overlay,
            r##"<circle cx="{px:.2}" cy="{py:.2}" r="{r:.2}" fill="none" stroke="#d62728" stroke-width="1.5"/>"##
        );
    }

    base.replace("</svg>\n", &format!("{overlay}</svg>\n"))
}

/// Writes [`svg_scatter_with_overlay`] output to a file.
///
/// # Errors
///
/// Propagates file-system errors.
pub fn write_svg_scatter_with_overlay(
    path: &Path,
    points: &PointSet,
    assignments: &[Option<u32>],
    segments: &[[[f64; 2]; 2]],
    highlight: &[u32],
    width: u32,
) -> io::Result<()> {
    std::fs::write(
        path,
        svg_scatter_with_overlay(points, assignments, segments, highlight, width),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (PointSet, Vec<Option<u32>>) {
        let ps = PointSet::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![0.5, 0.9]]);
        (ps, vec![Some(0), Some(1), None])
    }

    #[test]
    fn produces_wellformed_svg() {
        let (ps, labels) = sample();
        let svg = svg_scatter(&ps, &labels, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(
            svg.matches("<circle").count(),
            2,
            "one circle per clustered point"
        );
        assert_eq!(svg.matches("<path").count(), 1, "one cross per noise point");
    }

    #[test]
    fn clusters_get_distinct_palette_colors() {
        let (ps, labels) = sample();
        let svg = svg_scatter(&ps, &labels, 400);
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
    }

    #[test]
    fn coordinates_stay_inside_viewport() {
        let ps = PointSet::from_rows(&[vec![-500.0, 2.0], vec![900.0, -3.0], vec![0.0, 0.0]]);
        let labels = vec![Some(0); 3];
        let svg = svg_scatter(&ps, &labels, 200);
        for token in svg.split("cx=\"").skip(1) {
            let cx: f64 = token.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=200.0).contains(&cx), "cx {cx} escaped the viewport");
        }
    }

    #[test]
    fn single_point_does_not_divide_by_zero() {
        let ps = PointSet::from_rows(&[vec![5.0, 5.0]]);
        let svg = svg_scatter(&ps, &[Some(0)], 100);
        assert!(svg.contains("<circle"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    #[should_panic(expected = "requires 2-D")]
    fn rejects_non_2d() {
        let ps = PointSet::from_rows(&[vec![0.0, 0.0, 0.0]]);
        let _ = svg_scatter(&ps, &[Some(0)], 100);
    }

    #[test]
    fn overlay_adds_segments_and_highlights() {
        let (ps, labels) = sample();
        let segments = [[[0.0, 0.0], [1.0, 1.0]], [[0.5, 0.0], [0.5, 1.0]]];
        let svg = svg_scatter_with_overlay(&ps, &labels, &segments, &[1], 400);
        assert_eq!(svg.matches("<line").count(), 2);
        assert!(svg.contains("stroke-dasharray"));
        // 2 cluster circles + 1 hollow highlight circle.
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn overlay_on_empty_set_is_harmless() {
        let ps = PointSet::new(2);
        let svg = svg_scatter_with_overlay(&ps, &[], &[[[0.0, 0.0], [1.0, 1.0]]], &[], 100);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn file_round_trip() {
        let (ps, labels) = sample();
        let mut path = std::env::temp_dir();
        path.push(format!("dbsvec-plot-test-{}.svg", std::process::id()));
        write_svg_scatter(&path, &ps, &labels, 300).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_file(&path).ok();
    }
}
