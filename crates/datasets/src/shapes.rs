//! Chameleon-style 2-D scenes with non-convex clusters.
//!
//! The paper's clustering-quality figures use the chameleon benchmark sets
//! `t4.8k` and `t7.10k` \[13\]: a handful of arbitrarily shaped clusters
//! (bands, rings, bars) sprinkled with uniform noise. The original files
//! are not redistributable here, so [`chameleon_t48k`] and
//! [`chameleon_t710k`] generate scenes of the same topology class with the
//! same cardinalities — what matters to DBSVEC is that SVDD must describe
//! *non-convex, interlocking* boundaries, and these scenes exercise exactly
//! that.

use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;

use crate::Dataset;

/// One parametric cluster shape on the `[0, 100]²` canvas.
#[derive(Clone, Debug)]
pub enum Shape {
    /// Filled disc.
    Blob { center: [f64; 2], radius: f64 },
    /// Annulus between `radius - thickness/2` and `radius + thickness/2`.
    Ring {
        center: [f64; 2],
        radius: f64,
        thickness: f64,
    },
    /// A sine-wave band `y = y0 + amplitude·sin(freq·x)` of given thickness
    /// for `x ∈ [x0, x1]`.
    SineBand {
        x0: f64,
        x1: f64,
        y0: f64,
        amplitude: f64,
        frequency: f64,
        thickness: f64,
    },
    /// Axis-aligned filled rectangle.
    Bar { min: [f64; 2], max: [f64; 2] },
}

impl Shape {
    /// Samples one point of the shape.
    fn sample(&self, rng: &mut SplitMix64) -> [f64; 2] {
        match self {
            Shape::Blob { center, radius } => {
                // Uniform in the disc via sqrt radius trick.
                let r = radius * rng.next_f64().sqrt();
                let a = rng.next_f64() * std::f64::consts::TAU;
                [center[0] + r * a.cos(), center[1] + r * a.sin()]
            }
            Shape::Ring {
                center,
                radius,
                thickness,
            } => {
                let r = radius + (rng.next_f64() - 0.5) * thickness;
                let a = rng.next_f64() * std::f64::consts::TAU;
                [center[0] + r * a.cos(), center[1] + r * a.sin()]
            }
            Shape::SineBand {
                x0,
                x1,
                y0,
                amplitude,
                frequency,
                thickness,
            } => {
                let x = rng.next_f64_range(*x0, *x1);
                let y = y0 + amplitude * (frequency * x).sin() + (rng.next_f64() - 0.5) * thickness;
                [x, y]
            }
            Shape::Bar { min, max } => [
                rng.next_f64_range(min[0], max[0]),
                rng.next_f64_range(min[1], max[1]),
            ],
        }
    }
}

/// A composite scene: shapes with relative weights plus uniform noise.
#[derive(Clone, Debug)]
pub struct Scene {
    /// The cluster shapes; each becomes one ground-truth cluster.
    pub shapes: Vec<Shape>,
    /// Relative point weight per shape (normalized internally).
    pub weights: Vec<f64>,
    /// Fraction of points drawn uniformly from the canvas as noise.
    pub noise_fraction: f64,
    /// Canvas edge length (points live in `[0, canvas]²`).
    pub canvas: f64,
}

impl Scene {
    /// Generates `n` points of the scene, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the scene has no shapes or mismatched weights.
    pub fn generate(&self, n: usize, seed: u64) -> Dataset {
        assert!(!self.shapes.is_empty(), "a scene needs at least one shape");
        assert_eq!(
            self.shapes.len(),
            self.weights.len(),
            "one weight per shape"
        );
        let total_weight: f64 = self.weights.iter().sum();
        assert!(total_weight > 0.0, "weights must sum to a positive value");

        let mut rng = SplitMix64::new(seed);
        let mut points = PointSet::with_capacity(2, n);
        let mut truth = Vec::with_capacity(n);
        for _ in 0..n {
            if rng.next_f64() < self.noise_fraction {
                let p = [
                    rng.next_f64_range(0.0, self.canvas),
                    rng.next_f64_range(0.0, self.canvas),
                ];
                points.push(&p);
                truth.push(None);
            } else {
                // Weighted shape choice.
                let mut pick = rng.next_f64() * total_weight;
                let mut idx = 0;
                for (i, w) in self.weights.iter().enumerate() {
                    if pick < *w {
                        idx = i;
                        break;
                    }
                    pick -= w;
                }
                let p = self.shapes[idx].sample(&mut rng);
                points.push(&p);
                truth.push(Some(idx as u32));
            }
        }
        Dataset { points, truth }
    }
}

/// A 6-cluster scene standing in for chameleon `t4.8k` (n = 8000):
/// two interleaved sine bands, a ring with a blob inside it, a diagonal
/// bar pair, and ~10% uniform noise.
pub fn chameleon_t48k(seed: u64) -> Dataset {
    scene_t48k().generate(8000, seed)
}

/// The scene behind [`chameleon_t48k`], exposed for visualization.
pub fn scene_t48k() -> Scene {
    Scene {
        shapes: vec![
            Shape::SineBand {
                x0: 5.0,
                x1: 95.0,
                y0: 80.0,
                amplitude: 6.0,
                frequency: 0.25,
                thickness: 4.0,
            },
            Shape::SineBand {
                x0: 5.0,
                x1: 95.0,
                y0: 62.0,
                amplitude: 6.0,
                frequency: 0.25,
                thickness: 4.0,
            },
            Shape::Ring {
                center: [25.0, 25.0],
                radius: 14.0,
                thickness: 4.0,
            },
            Shape::Blob {
                center: [25.0, 25.0],
                radius: 5.0,
            },
            Shape::Bar {
                min: [55.0, 10.0],
                max: [90.0, 18.0],
            },
            Shape::Bar {
                min: [55.0, 28.0],
                max: [90.0, 36.0],
            },
        ],
        weights: vec![2.0, 2.0, 1.5, 0.8, 1.2, 1.2],
        noise_fraction: 0.10,
        canvas: 100.0,
    }
}

/// A 9-cluster scene standing in for chameleon `t7.10k` (n = 10000).
pub fn chameleon_t710k(seed: u64) -> Dataset {
    scene_t710k().generate(10_000, seed)
}

/// The scene behind [`chameleon_t710k`], exposed for visualization.
pub fn scene_t710k() -> Scene {
    Scene {
        shapes: vec![
            Shape::SineBand {
                x0: 5.0,
                x1: 60.0,
                y0: 88.0,
                amplitude: 4.0,
                frequency: 0.3,
                thickness: 3.5,
            },
            Shape::SineBand {
                x0: 40.0,
                x1: 95.0,
                y0: 72.0,
                amplitude: 4.0,
                frequency: 0.3,
                thickness: 3.5,
            },
            Shape::Ring {
                center: [20.0, 45.0],
                radius: 12.0,
                thickness: 3.5,
            },
            Shape::Ring {
                center: [20.0, 45.0],
                radius: 5.0,
                thickness: 3.0,
            },
            Shape::Blob {
                center: [55.0, 45.0],
                radius: 7.0,
            },
            Shape::Blob {
                center: [80.0, 45.0],
                radius: 7.0,
            },
            Shape::Bar {
                min: [10.0, 8.0],
                max: [45.0, 16.0],
            },
            Shape::Bar {
                min: [55.0, 8.0],
                max: [62.0, 30.0],
            },
            Shape::Bar {
                min: [70.0, 8.0],
                max: [95.0, 16.0],
            },
        ],
        weights: vec![1.5, 1.5, 1.2, 0.7, 1.0, 1.0, 1.1, 0.8, 1.1],
        noise_fraction: 0.10,
        canvas: 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t48k_has_paper_cardinality() {
        let ds = chameleon_t48k(1);
        assert_eq!(ds.len(), 8000);
        assert_eq!(ds.dims(), 2);
        assert_eq!(ds.truth_clusters(), 6);
    }

    #[test]
    fn t710k_has_paper_cardinality() {
        let ds = chameleon_t710k(1);
        assert_eq!(ds.len(), 10_000);
        assert_eq!(ds.truth_clusters(), 9);
    }

    #[test]
    fn noise_fraction_is_about_ten_percent() {
        let ds = chameleon_t48k(2);
        let noise = ds.truth.iter().filter(|t| t.is_none()).count() as f64;
        let frac = noise / ds.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "noise fraction {frac}");
    }

    #[test]
    fn ring_points_live_on_the_annulus() {
        let scene = Scene {
            shapes: vec![Shape::Ring {
                center: [50.0, 50.0],
                radius: 20.0,
                thickness: 4.0,
            }],
            weights: vec![1.0],
            noise_fraction: 0.0,
            canvas: 100.0,
        };
        let ds = scene.generate(500, 3);
        for (_, p) in ds.points.iter() {
            let r = ((p[0] - 50.0).powi(2) + (p[1] - 50.0).powi(2)).sqrt();
            assert!((17.9..=22.1).contains(&r), "radius {r} off the annulus");
        }
    }

    #[test]
    fn blob_points_live_in_the_disc() {
        let scene = Scene {
            shapes: vec![Shape::Blob {
                center: [10.0, 10.0],
                radius: 3.0,
            }],
            weights: vec![1.0],
            noise_fraction: 0.0,
            canvas: 100.0,
        };
        let ds = scene.generate(300, 4);
        for (_, p) in ds.points.iter() {
            let r = ((p[0] - 10.0).powi(2) + (p[1] - 10.0).powi(2)).sqrt();
            assert!(r <= 3.0 + 1e-9);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(chameleon_t48k(9).points, chameleon_t48k(9).points);
        assert_ne!(chameleon_t48k(9).points, chameleon_t48k(10).points);
    }

    #[test]
    fn shapes_are_separated_enough_for_dbscan() {
        // Sanity: the two sine bands are 18 apart vertically with amplitude
        // 6 and thickness 4 => min gap ≈ 18 − 12 − 4 = 2 > typical ε.
        let ds = chameleon_t48k(5);
        let band0: Vec<u32> = ds
            .truth
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Some(0))
            .map(|(i, _)| i as u32)
            .collect();
        let band1: Vec<u32> = ds
            .truth
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Some(1))
            .map(|(i, _)| i as u32)
            .collect();
        let min_gap = band0
            .iter()
            .take(200)
            .flat_map(|&a| band1.iter().take(200).map(move |&b| (a, b)))
            .map(|(a, b)| ds.points.distance(a, b))
            .fold(f64::INFINITY, f64::min);
        assert!(min_gap > 1.0, "bands overlap: gap {min_gap}");
    }
}
