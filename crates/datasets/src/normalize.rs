//! Coordinate normalization.
//!
//! The paper's efficiency experiments "normalize the data coordinates to
//! `[0, 10^5]` in each dimension" (§V-C) so that one (ε, MinPts) setting is
//! comparable across datasets. [`normalize_to_domain`] applies the same
//! per-dimension affine rescale.

use dbsvec_geometry::PointSet;

/// The domain edge the paper normalizes to.
pub const PAPER_DOMAIN: f64 = 1e5;

/// Rescales every dimension of `points` linearly onto `[0, domain]`.
///
/// Degenerate dimensions (all values equal) map to the domain midpoint so
/// they stay comparable with the rest.
///
/// # Panics
///
/// Panics if `domain` is not positive and finite.
pub fn normalize_to_domain(points: &PointSet, domain: f64) -> PointSet {
    assert!(
        domain.is_finite() && domain > 0.0,
        "domain must be positive, got {domain}"
    );
    if points.is_empty() {
        return PointSet::new(points.dims());
    }
    let bbox = points
        .bounding_box()
        .expect("nonempty set has a bounding box");
    let dims = points.dims();
    let mut out = PointSet::with_capacity(dims, points.len());
    let mut row = vec![0.0; dims];
    for (_, p) in points.iter() {
        for (d, x) in row.iter_mut().enumerate() {
            let lo = bbox.min()[d];
            let hi = bbox.max()[d];
            *x = if hi > lo {
                (p[d] - lo) / (hi - lo) * domain
            } else {
                domain / 2.0
            };
        }
        out.push(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescales_to_full_domain() {
        let ps = PointSet::from_rows(&[vec![-10.0, 0.0], vec![10.0, 5.0], vec![0.0, 2.5]]);
        let out = normalize_to_domain(&ps, 100.0);
        assert_eq!(out.point(0), &[0.0, 0.0]);
        assert_eq!(out.point(1), &[100.0, 100.0]);
        assert_eq!(out.point(2), &[50.0, 50.0]);
    }

    #[test]
    fn degenerate_dimension_maps_to_midpoint() {
        let ps = PointSet::from_rows(&[vec![1.0, 7.0], vec![2.0, 7.0]]);
        let out = normalize_to_domain(&ps, 10.0);
        assert_eq!(out.point(0)[1], 5.0);
        assert_eq!(out.point(1)[1], 5.0);
    }

    #[test]
    fn preserves_relative_order() {
        let ps = PointSet::from_rows(&[vec![3.0], vec![1.0], vec![2.0]]);
        let out = normalize_to_domain(&ps, 1.0);
        assert!(out.point(1)[0] < out.point(2)[0]);
        assert!(out.point(2)[0] < out.point(0)[0]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let ps = PointSet::new(3);
        let out = normalize_to_domain(&ps, 10.0);
        assert!(out.is_empty());
        assert_eq!(out.dims(), 3);
    }

    #[test]
    fn paper_domain_constant() {
        assert_eq!(PAPER_DOMAIN, 100_000.0);
    }
}
