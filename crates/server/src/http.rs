//! A hand-rolled HTTP/1.1 request parser and response writer.
//!
//! The workspace builds offline with zero external dependencies, so this
//! module provides the small HTTP surface the serving tier needs — in the
//! same spirit as `dbsvec_obs::json`: strict parsing into a typed error
//! per malformation, no allocation-hungry generality. Only `GET`,
//! `POST`, and `DELETE` are accepted; `POST`/`DELETE` bodies require
//! `Content-Length` (no chunked transfer encoding); header blocks and
//! bodies are capped so a misbehaving client cannot balloon a worker's
//! memory.

use std::fmt;
use std::io::{self, BufRead, Read, Write};

/// Cap on the request line plus all header lines, in bytes.
pub const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Default cap on a request body, in bytes (the CLI can lower it).
pub const DEFAULT_MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// Every way a request can fail to parse or route, with the HTTP status
/// each maps to. The parser returns these instead of panicking or
/// guessing, so tests can pin one typed error per malformed input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The request line was not `METHOD SP PATH SP VERSION`.
    BadRequestLine(String),
    /// A method other than `GET`, `POST`, or `DELETE`.
    UnsupportedMethod(String),
    /// A version other than `HTTP/1.1` or `HTTP/1.0`.
    UnsupportedVersion(String),
    /// A header line without a `:` separator.
    BadHeader(String),
    /// Request line + headers exceeded [`MAX_HEADER_BYTES`].
    HeadersTooLarge {
        /// The configured cap.
        limit: usize,
    },
    /// A `POST` or `DELETE` without a `Content-Length` header.
    MissingContentLength,
    /// A `Content-Length` that is not a non-negative integer.
    BadContentLength(String),
    /// A declared body size over the configured cap.
    BodyTooLarge {
        /// What `Content-Length` declared.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The connection closed before `Content-Length` bytes arrived.
    Truncated {
        /// Bytes the header declared.
        expected: usize,
        /// Bytes actually read.
        got: usize,
    },
    /// A body that is not valid UTF-8 or not valid JSON.
    BadJson(String),
    /// A structurally valid JSON body with the wrong shape (missing
    /// `point`/`points`, non-numeric coordinates, dimension mismatch...).
    BadBody(String),
    /// No route matches the path (including unknown model names).
    NotFound(String),
    /// A single-point `DELETE` named a point the model does not track.
    UnknownPoint(String),
    /// The path exists but not under this method.
    MethodNotAllowed {
        /// The offending method.
        method: String,
        /// The path it was tried on.
        path: String,
    },
}

impl HttpError {
    /// The HTTP status code this error answers with.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequestLine(_)
            | HttpError::BadHeader(_)
            | HttpError::BadContentLength(_)
            | HttpError::Truncated { .. }
            | HttpError::BadJson(_)
            | HttpError::BadBody(_) => 400,
            HttpError::NotFound(_) | HttpError::UnknownPoint(_) => 404,
            HttpError::UnsupportedMethod(_) | HttpError::MethodNotAllowed { .. } => 405,
            HttpError::MissingContentLength => 411,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::HeadersTooLarge { .. } => 431,
            HttpError::UnsupportedVersion(_) => 505,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequestLine(line) => write!(f, "malformed request line: {line:?}"),
            HttpError::UnsupportedMethod(m) => write!(f, "unsupported method {m:?}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version {v:?}"),
            HttpError::BadHeader(h) => write!(f, "malformed header line: {h:?}"),
            HttpError::HeadersTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::MissingContentLength => {
                write!(f, "POST/DELETE requires Content-Length")
            }
            HttpError::BadContentLength(v) => write!(f, "bad Content-Length: {v:?}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds cap of {limit}"
                )
            }
            HttpError::Truncated { expected, got } => {
                write!(f, "body truncated: expected {expected} bytes, got {got}")
            }
            HttpError::BadJson(e) => write!(f, "body is not valid JSON: {e}"),
            HttpError::BadBody(e) => write!(f, "bad request body: {e}"),
            HttpError::NotFound(path) => write!(f, "no route for {path}"),
            HttpError::UnknownPoint(p) => write!(f, "point not tracked: {p}"),
            HttpError::MethodNotAllowed { method, path } => {
                write!(f, "{method} not allowed on {path}")
            }
        }
    }
}

/// One parsed request: enough of HTTP/1.1 to route and answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, or `DELETE` (anything else is rejected at parse
    /// time).
    pub method: String,
    /// The request path, query string included if one was sent.
    pub path: String,
    /// The body, exactly `Content-Length` bytes (empty for `GET`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open (HTTP/1.1
    /// default, overridden by `Connection: close`; inverted for 1.0).
    pub keep_alive: bool,
}

/// Reads one CRLF- (or bare-LF-) terminated line, counting its bytes
/// against `budget`. Returns `Ok(None)` on clean EOF before any byte.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<Option<String>, HttpError> {
    let mut raw = Vec::new();
    let mut limited = Read::take(&mut *reader, *budget as u64 + 1);
    let n = limited
        .read_until(b'\n', &mut raw)
        .map_err(|e| HttpError::BadRequestLine(format!("io error: {e}")))?;
    if n == 0 {
        return Ok(None);
    }
    if raw.len() > *budget {
        return Err(HttpError::HeadersTooLarge {
            limit: MAX_HEADER_BYTES,
        });
    }
    *budget -= raw.len();
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw)
        .map(Some)
        .map_err(|_| HttpError::BadHeader("non-UTF-8 header bytes".to_string()))
}

/// Reads and validates one request from a buffered stream.
///
/// Returns `Ok(None)` on a clean EOF before the first byte (the client
/// closed a keep-alive connection between requests — not an error).
/// `max_body` caps `Content-Length`; the request head is capped at
/// [`MAX_HEADER_BYTES`] regardless.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEADER_BYTES;
    let line = match read_line(reader, &mut budget)? {
        None => return Ok(None),
        Some(l) => l,
    };
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(HttpError::BadRequestLine(line.clone())),
    };
    if method != "GET" && method != "POST" && method != "DELETE" {
        return Err(HttpError::UnsupportedMethod(method.to_string()));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length: Option<usize> = None;
    loop {
        let header = match read_line(reader, &mut budget)? {
            None => {
                return Err(HttpError::BadHeader(
                    "connection closed inside the header block".to_string(),
                ))
            }
            Some(h) => h,
        };
        if header.is_empty() {
            break;
        }
        let (name, value) = header
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(header.clone()))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let n: usize = value
                .parse()
                .map_err(|_| HttpError::BadContentLength(value.to_string()))?;
            content_length = Some(n);
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    let body = if method == "POST" || method == "DELETE" {
        let declared = content_length.ok_or(HttpError::MissingContentLength)?;
        if declared > max_body {
            return Err(HttpError::BodyTooLarge {
                declared,
                limit: max_body,
            });
        }
        let mut body = vec![0u8; declared];
        let mut got = 0;
        while got < declared {
            match reader.read(&mut body[got..]) {
                Ok(0) => {
                    return Err(HttpError::Truncated {
                        expected: declared,
                        got,
                    })
                }
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(HttpError::BadBody(format!("io error reading body: {e}")));
                }
            }
        }
        body
    } else {
        Vec::new()
    };
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
        keep_alive,
    }))
}

/// The standard reason phrase for the statuses this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Writes one HTTP/1.1 response with an explicit `Content-Length` (so
/// keep-alive framing stays correct) and the negotiated connection
/// disposition.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes()), DEFAULT_MAX_BODY_BYTES)
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_a_post_with_body_and_connection_close() {
        let req = parse(
            "POST /v1/models/m/assign HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\n{\"point\":1}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"point\":1}");
        assert!(!req.keep_alive);
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_none_not_an_error() {
        assert_eq!(parse(""), Ok(None));
    }

    #[test]
    fn malformed_request_line_is_typed() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse("GET /too many words HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse(" \r\n\r\n"),
            Err(HttpError::BadRequestLine(_))
        ));
    }

    #[test]
    fn unsupported_method_and_version_are_typed() {
        let err = parse("PATCH /v1/models/m HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::UnsupportedMethod("PATCH".to_string()));
        assert_eq!(err.status(), 405);
        let err = parse("GET / HTTP/2\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::UnsupportedVersion("HTTP/2".to_string()));
        assert_eq!(err.status(), 505);
    }

    #[test]
    fn delete_parses_like_post_and_requires_content_length() {
        let req = parse(
            "DELETE /v1/models/m/points HTTP/1.1\r\nContent-Length: 13\r\n\r\n{\"point\":[1]}",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "DELETE");
        assert_eq!(req.body, b"{\"point\":[1]}");
        let err = parse("DELETE /v1/models/m/points HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::MissingContentLength);
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn unknown_point_maps_to_404() {
        let err = HttpError::UnknownPoint("[1, 2]".to_string());
        assert_eq!(err.status(), 404);
        assert!(err.to_string().contains("not tracked"));
    }

    #[test]
    fn header_without_colon_is_typed() {
        let err = parse("GET / HTTP/1.1\r\nNotAHeader\r\n\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadHeader(_)));
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn oversized_header_block_is_rejected() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..200 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "y".repeat(64)));
        }
        raw.push_str("\r\n");
        let err = parse(&raw).unwrap_err();
        assert_eq!(
            err,
            HttpError::HeadersTooLarge {
                limit: MAX_HEADER_BYTES
            }
        );
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn post_without_content_length_is_rejected() {
        let err = parse("POST /v1/models/m/assign HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::MissingContentLength);
        assert_eq!(err.status(), 411);
    }

    #[test]
    fn bad_content_length_is_typed() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::BadContentLength("nope".to_string()));
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\n";
        let err = read_request(&mut Cursor::new(raw.as_bytes()), 10).unwrap_err();
        assert_eq!(
            err,
            HttpError::BodyTooLarge {
                declared: 100,
                limit: 10
            }
        );
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn truncated_body_is_typed() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert_eq!(
            err,
            HttpError::Truncated {
                expected: 50,
                got: 5
            }
        );
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn eof_inside_headers_is_typed() {
        let err = parse("GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert!(matches!(err, HttpError::BadHeader(_)));
    }

    #[test]
    fn response_writer_frames_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
