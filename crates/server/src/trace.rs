//! Request traces and the flight recorder behind `GET /debug/requests`.
//!
//! Every finished request yields a [`RequestTrace`]: its id, endpoint,
//! status, and the stage-attributed timing breakdown the workers stamp
//! with `Instant` reads. The [`FlightRecorder`] keeps a bounded window of
//! them with *tail-sampling*: a fixed-size ring of the most recent traces
//! for ambient context, plus a second ring that only admits interesting
//! traces — error responses and requests over the slow threshold — so the
//! requests worth debugging survive long after ordinary traffic has
//! wrapped the recent ring. Two small rings instead of full retention
//! keep the recorder O(capacity) in memory no matter how long the server
//! runs (the reasoning is laid out in DESIGN.md §5i).

use std::collections::VecDeque;

use dbsvec_obs::{HttpStages, Json};

/// One finished request, as the flight recorder and `/debug/requests`
/// see it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestTrace {
    /// Monotonically increasing id (1-based, unique per server run).
    pub request_id: u64,
    /// Endpoint slug (`assign`, `ingest`, ..., `error`).
    pub endpoint: &'static str,
    /// HTTP status answered.
    pub status: u16,
    /// Points carried by the request body.
    pub points: u64,
    /// End-to-end wall time in microseconds.
    pub duration_us: u64,
    /// Where the time went.
    pub stages: HttpStages,
}

impl RequestTrace {
    /// Whether this trace is an error response (4xx/5xx).
    pub fn is_error(&self) -> bool {
        self.status >= 400
    }

    /// Whether this trace is over the slow threshold, if one is set.
    pub fn is_slow(&self, slow_threshold_us: Option<u64>) -> bool {
        slow_threshold_us.is_some_and(|t| self.duration_us >= t)
    }

    /// The trace as the JSON object `/debug/requests` serves.
    pub fn to_json(&self, slow_threshold_us: Option<u64>) -> Json {
        Json::obj([
            ("request_id", Json::UInt(self.request_id)),
            ("endpoint", Json::str(self.endpoint)),
            ("status", Json::UInt(self.status as u64)),
            ("points", Json::UInt(self.points)),
            ("error", Json::Bool(self.is_error())),
            ("slow", Json::Bool(self.is_slow(slow_threshold_us))),
            ("duration_us", Json::UInt(self.duration_us)),
            (
                "stages",
                Json::obj([
                    ("queue_us", Json::UInt(self.stages.queue_us)),
                    ("parse_us", Json::UInt(self.stages.parse_us)),
                    ("route_us", Json::UInt(self.stages.route_us)),
                    ("lock_us", Json::UInt(self.stages.lock_us)),
                    ("engine_us", Json::UInt(self.stages.engine_us)),
                    ("serialize_us", Json::UInt(self.stages.serialize_us)),
                    ("write_us", Json::UInt(self.stages.write_us)),
                ]),
            ),
        ])
    }
}

/// Bounded in-memory window over recent request traces, with
/// tail-sampling retention for errors and slow requests.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    slow_threshold_us: Option<u64>,
    /// The last `capacity` traces, whatever they were.
    recent: VecDeque<RequestTrace>,
    /// The last `capacity` *interesting* traces (error or slow), which
    /// survive the recent ring wrapping.
    retained: VecDeque<RequestTrace>,
}

impl FlightRecorder {
    /// A recorder keeping up to `capacity` recent and `capacity` retained
    /// traces. `slow_threshold_us` marks traces slow (and retains them);
    /// `None` retains errors only.
    pub fn new(capacity: usize, slow_threshold_us: Option<u64>) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            slow_threshold_us,
            recent: VecDeque::with_capacity(capacity),
            retained: VecDeque::with_capacity(capacity),
        }
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The slow threshold in microseconds, if one is set.
    pub fn slow_threshold_us(&self) -> Option<u64> {
        self.slow_threshold_us
    }

    /// Records one finished request.
    pub fn record(&mut self, trace: RequestTrace) {
        if trace.is_error() || trace.is_slow(self.slow_threshold_us) {
            if self.retained.len() == self.capacity {
                self.retained.pop_front();
            }
            self.retained.push_back(trace.clone());
        }
        if self.recent.len() == self.capacity {
            self.recent.pop_front();
        }
        self.recent.push_back(trace);
    }

    /// Every trace currently held, newest first, duplicates (traces in
    /// both rings) collapsed.
    pub fn snapshot(&self) -> Vec<RequestTrace> {
        let mut all: Vec<RequestTrace> = self.recent.iter().cloned().collect();
        for t in &self.retained {
            if !all.iter().any(|r| r.request_id == t.request_id) {
                all.push(t.clone());
            }
        }
        all.sort_by_key(|t| std::cmp::Reverse(t.request_id));
        all
    }

    /// The JSON body `GET /debug/requests` answers with.
    pub fn snapshot_json(&self) -> Json {
        let traces: Vec<Json> = self
            .snapshot()
            .iter()
            .map(|t| t.to_json(self.slow_threshold_us))
            .collect();
        Json::obj([
            ("capacity", Json::UInt(self.capacity as u64)),
            (
                "slow_threshold_ms",
                match self.slow_threshold_us {
                    Some(us) => Json::UInt(us / 1_000),
                    None => Json::Null,
                },
            ),
            ("count", Json::UInt(traces.len() as u64)),
            ("traces", Json::Arr(traces)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, status: u16, duration_us: u64) -> RequestTrace {
        RequestTrace {
            request_id: id,
            endpoint: if status >= 400 { "error" } else { "assign" },
            status,
            points: 1,
            duration_us,
            stages: HttpStages {
                parse_us: duration_us / 2,
                engine_us: duration_us / 2,
                ..Default::default()
            },
        }
    }

    #[test]
    fn recent_ring_wraps_in_order() {
        let mut rec = FlightRecorder::new(3, None);
        for id in 1..=5 {
            rec.record(trace(id, 200, 100));
        }
        let ids: Vec<u64> = rec.snapshot().iter().map(|t| t.request_id).collect();
        assert_eq!(ids, [5, 4, 3], "newest first, oldest wrapped away");
    }

    #[test]
    fn errors_and_slow_traces_survive_the_wrap() {
        let mut rec = FlightRecorder::new(4, Some(50_000));
        rec.record(trace(1, 400, 100)); // error
        rec.record(trace(2, 200, 80_000)); // slow
        for id in 3..=40 {
            rec.record(trace(id, 200, 100)); // fast OK traffic wraps recent
        }
        let snap = rec.snapshot();
        let ids: Vec<u64> = snap.iter().map(|t| t.request_id).collect();
        assert_eq!(ids, [40, 39, 38, 37, 2, 1]);
        assert!(snap.iter().any(|t| t.request_id == 1 && t.is_error()));
        assert!(snap
            .iter()
            .any(|t| t.request_id == 2 && t.is_slow(Some(50_000))));
    }

    #[test]
    fn retained_ring_is_bounded_too() {
        let mut rec = FlightRecorder::new(2, None);
        for id in 1..=10 {
            rec.record(trace(id, 500, 10));
        }
        // Both rings hold the same last-two errors; the snapshot dedups.
        let ids: Vec<u64> = rec.snapshot().iter().map(|t| t.request_id).collect();
        assert_eq!(ids, [10, 9]);
    }

    #[test]
    fn snapshot_json_carries_stage_fields() {
        let mut rec = FlightRecorder::new(2, Some(1_000));
        rec.record(trace(7, 200, 2_000));
        let body = rec.snapshot_json().to_string();
        for key in [
            "\"request_id\":7",
            "\"slow\":true",
            "\"queue_us\"",
            "\"parse_us\"",
            "\"route_us\"",
            "\"lock_us\"",
            "\"engine_us\"",
            "\"serialize_us\"",
            "\"write_us\"",
            "\"slow_threshold_ms\":1",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
    }

    #[test]
    fn without_a_threshold_nothing_is_slow() {
        let t = trace(1, 200, u64::MAX);
        assert!(!t.is_slow(None));
        assert!(t.is_slow(Some(1)));
    }
}
