//! The socket front end: a bounded thread pool over a [`Router`].
//!
//! One acceptor (the calling thread) pushes connections into a
//! `sync_channel` whose capacity is the accept backlog — when every
//! worker is busy and the queue is full, the acceptor blocks instead of
//! piling up unbounded connections, which is the server's backpressure.
//! Workers pull connections, speak keep-alive HTTP/1.1 over them, and
//! report every finished request back to the acceptor over a second
//! channel; the acceptor owns the session's [`Observer`], so trace events
//! stay single-threaded and ordered.
//!
//! Graceful shutdown: a [`ShutdownFlag`] (tripped programmatically, by
//! `SIGINT`/`SIGTERM`, or by `max_requests`) stops the accept loop, the
//! connection channel closes, workers finish their in-flight connections
//! and exit, and the router persists every dirty shard before
//! [`Server::run`] returns its report.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Sender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dbsvec_obs::{Event, Observer, Phase};

use crate::http::{read_request, write_response, HttpError, Request, DEFAULT_MAX_BODY_BYTES};
use crate::router::Router;

/// Knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:8080` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Accepted-connection queue capacity (the backpressure bound).
    pub backlog: usize,
    /// Request-body cap in bytes.
    pub max_body: usize,
    /// Shut down after this many requests (tests and smoke jobs).
    pub max_requests: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            threads: 1,
            backlog: 64,
            max_body: DEFAULT_MAX_BODY_BYTES,
            max_requests: None,
        }
    }
}

/// Set by the process signal handler; async-signal-safe (a relaxed store
/// on a static atomic is all the handler does).
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SIGNAL_FLAG.store(true, Ordering::Relaxed);
}

/// A cooperative shutdown request, pollable from the accept loop.
///
/// [`ShutdownFlag::install_signal_handlers`] arms `SIGINT` and `SIGTERM`
/// via the libc `signal(2)` entry point (declared by hand — the workspace
/// carries no libc crate), so ctrl-c and orchestrator termination drain
/// the server instead of killing it mid-write.
#[derive(Clone, Debug, Default)]
pub struct ShutdownFlag {
    requested: Arc<AtomicBool>,
}

impl ShutdownFlag {
    /// A fresh, untripped flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag programmatically.
    pub fn request(&self) {
        self.requested.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown was requested (programmatically or by signal).
    pub fn is_requested(&self) -> bool {
        self.requested.load(Ordering::Relaxed) || SIGNAL_FLAG.load(Ordering::Relaxed)
    }

    /// Routes `SIGINT` and `SIGTERM` into this flag. No-op off Unix.
    pub fn install_signal_handlers(&self) {
        #[cfg(unix)]
        {
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            const SIGINT: i32 = 2;
            const SIGTERM: i32 = 15;
            unsafe {
                signal(SIGINT, on_signal as *const () as usize);
                signal(SIGTERM, on_signal as *const () as usize);
            }
        }
    }
}

/// Live request counters shared between workers and the `/metrics`
/// handler, rendered as an extra exposition section beside the engine
/// aggregate (names are disjoint, so the concatenation stays valid).
#[derive(Debug, Default)]
struct HttpCounters {
    requests: AtomicU64,
    errors: AtomicU64,
}

impl HttpCounters {
    fn render(&self) -> String {
        format!(
            "# HELP dbsvec_http_requests_total HTTP requests handled by the serving tier.\n\
             # TYPE dbsvec_http_requests_total counter\n\
             dbsvec_http_requests_total {}\n\
             # HELP dbsvec_http_errors_total HTTP requests answered with a 4xx/5xx status.\n\
             # TYPE dbsvec_http_errors_total counter\n\
             dbsvec_http_errors_total {}\n",
            self.requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
        )
    }
}

/// One finished request, reported from a worker to the acceptor (which
/// owns the observer).
struct RequestRecord {
    endpoint: &'static str,
    status: u16,
    points: u64,
}

/// What [`Server::run`] hands back after a graceful shutdown.
#[derive(Debug)]
pub struct ServerReport {
    /// Requests handled (including error responses).
    pub requests: u64,
    /// Of those, requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Snapshots written while persisting dirty shards: `(path, bytes)`.
    pub persisted: Vec<(PathBuf, u64)>,
}

/// The bound server, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    router: Arc<Router>,
    config: ServerConfig,
}

impl Server {
    /// Binds the configured address (use port 0 for an ephemeral port,
    /// then read [`Server::local_addr`]).
    pub fn bind(router: Arc<Router>, config: ServerConfig) -> io::Result<Server> {
        let addrs: Vec<SocketAddr> = config.addr.to_socket_addrs()?.collect();
        let listener = TcpListener::bind(&addrs[..])?;
        Ok(Server {
            listener,
            router,
            config,
        })
    }

    /// The actually-bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until `shutdown` trips (or `max_requests` is reached), then
    /// drains in-flight connections, persists dirty shards, and reports.
    ///
    /// Runs the accept loop on the calling thread inside a
    /// [`Phase::Serve`] span; every finished request lands in `obs` as an
    /// [`Event::HttpRequest`], and every persisted shard as an
    /// [`Event::SnapshotWrite`].
    pub fn run(&self, shutdown: &ShutdownFlag, obs: &mut dyn Observer) -> io::Result<ServerReport> {
        self.listener.set_nonblocking(true)?;
        let threads = self.config.threads.max(1);
        let backlog = self.config.backlog.max(1);
        let http = Arc::new(HttpCounters::default());
        let mut requests = 0u64;
        let mut errors = 0u64;

        obs.span_enter(Phase::Serve);
        let (conn_tx, conn_rx) = std::sync::mpsc::sync_channel::<TcpStream>(backlog);
        let (rec_tx, rec_rx) = std::sync::mpsc::channel::<RequestRecord>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let conn_rx = Arc::clone(&conn_rx);
                let rec_tx = rec_tx.clone();
                let router = Arc::clone(&self.router);
                let http = Arc::clone(&http);
                let max_body = self.config.max_body;
                scope.spawn(move || loop {
                    let conn = match conn_rx.lock().unwrap().recv() {
                        Ok(c) => c,
                        Err(_) => return, // channel closed: drain done
                    };
                    handle_connection(conn, &router, &http, max_body, &rec_tx);
                });
            }
            drop(rec_tx);

            let drain = |requests: &mut u64, errors: &mut u64, obs: &mut dyn Observer| {
                while let Ok(rec) = rec_rx.try_recv() {
                    *requests += 1;
                    if rec.status >= 400 {
                        *errors += 1;
                    }
                    obs.event(&Event::HttpRequest {
                        endpoint: rec.endpoint.to_string(),
                        status: rec.status,
                        points: rec.points,
                    });
                }
            };

            let mut pending: Option<TcpStream> = None;
            loop {
                drain(&mut requests, &mut errors, obs);
                if shutdown.is_requested() {
                    break;
                }
                if let Some(max) = self.config.max_requests {
                    if requests >= max {
                        shutdown.request();
                        break;
                    }
                }
                // Re-offer a connection the full queue refused last round,
                // then accept new ones; try_send keeps this loop polling
                // (a blocking send would stop shutdown and record drains).
                if let Some(conn) = pending.take() {
                    match conn_tx.try_send(conn) {
                        Ok(()) => {}
                        Err(TrySendError::Full(conn)) => {
                            pending = Some(conn);
                            std::thread::sleep(Duration::from_millis(1));
                            continue;
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                match self.listener.accept() {
                    Ok((conn, _)) => match conn_tx.try_send(conn) {
                        Ok(()) => {}
                        Err(TrySendError::Full(conn)) => pending = Some(conn),
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            // Close the queue; workers finish queued + in-flight
            // connections, then exit, which closes the record channel.
            drop(conn_tx);
            while let Ok(rec) = rec_rx.recv() {
                requests += 1;
                if rec.status >= 400 {
                    errors += 1;
                }
                obs.event(&Event::HttpRequest {
                    endpoint: rec.endpoint.to_string(),
                    status: rec.status,
                    points: rec.points,
                });
            }
        });

        let persisted = self
            .router
            .persist_dirty()
            .map_err(|e| io::Error::other(format!("persisting dirty shards: {e}")))?;
        for (_, bytes) in &persisted {
            obs.event(&Event::SnapshotWrite { bytes: *bytes });
        }
        obs.span_exit(Phase::Serve);
        Ok(ServerReport {
            requests,
            errors,
            persisted,
        })
    }

    /// The router this server fronts.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }
}

/// How long a keep-alive connection may sit idle before the worker closes
/// it (so shutdown never waits on a silent client).
const IDLE_TIMEOUT: Duration = Duration::from_millis(500);

fn handle_connection(
    conn: TcpStream,
    router: &Router,
    http: &HttpCounters,
    max_body: usize,
    records: &Sender<RequestRecord>,
) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(IDLE_TIMEOUT));
    let mut writer = match conn.try_clone() {
        Ok(w) => BufWriter::new(w),
        Err(_) => return,
    };
    let mut reader = BufReader::new(conn);
    loop {
        let req = match read_request(&mut reader, max_body) {
            Ok(None) => return, // clean close between requests
            Ok(Some(req)) => req,
            Err(err) => {
                // Framing is unknown after a parse error; answer and close.
                let status = err.status();
                let body = error_body(&err);
                let _ = write_response(&mut writer, status, "application/json", &body, false);
                report(http, records, "error", status, 0);
                return;
            }
        };
        let keep_alive = req.keep_alive;
        let (endpoint, status, content_type, body, points) = match dispatch(router, http, &req) {
            Ok((endpoint, content_type, body, points)) => {
                (endpoint, 200, content_type, body, points)
            }
            Err(err) => (
                "error",
                err.status(),
                "application/json",
                error_body(&err),
                0,
            ),
        };
        if write_response(&mut writer, status, content_type, &body, keep_alive).is_err() {
            report(http, records, endpoint, status, points);
            return;
        }
        report(http, records, endpoint, status, points);
        if !keep_alive {
            return;
        }
    }
}

fn report(
    http: &HttpCounters,
    records: &Sender<RequestRecord>,
    endpoint: &'static str,
    status: u16,
    points: u64,
) {
    http.requests.fetch_add(1, Ordering::Relaxed);
    if status >= 400 {
        http.errors.fetch_add(1, Ordering::Relaxed);
    }
    let _ = records.send(RequestRecord {
        endpoint,
        status,
        points,
    });
}

fn error_body(err: &HttpError) -> Vec<u8> {
    use dbsvec_obs::Json;
    Json::obj([
        ("error", Json::str(err.to_string())),
        ("status", Json::UInt(err.status() as u64)),
    ])
    .to_string()
    .into_bytes()
}

/// Routes one parsed request. Returns `(endpoint slug, content type,
/// response body, points served)`.
fn dispatch(
    router: &Router,
    http: &HttpCounters,
    req: &Request,
) -> Result<(&'static str, &'static str, Vec<u8>, u64), HttpError> {
    use dbsvec_obs::Json;
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let models: Vec<Json> = router
                .models()
                .iter()
                .map(|m| Json::str(m.name()))
                .collect();
            let body = Json::obj([("status", Json::str("ok")), ("models", Json::Arr(models))]);
            Ok((
                "healthz",
                "application/json",
                body.to_string().into_bytes(),
                0,
            ))
        }
        ("GET", "/metrics") => {
            let mut text = router.metrics_text();
            text.push_str(&http.render());
            Ok(("metrics", "text/plain; version=0.0.4", text.into_bytes(), 0))
        }
        (method, path) if path.starts_with("/v1/models/") => {
            let rest = &path["/v1/models/".len()..];
            let (name, op) = rest
                .split_once('/')
                .ok_or_else(|| HttpError::NotFound(path.to_string()))?;
            if name.is_empty() {
                return Err(HttpError::NotFound(path.to_string()));
            }
            match (method, op) {
                ("POST", "assign") => {
                    let (resp, points) = router.assign(name, &req.body)?;
                    Ok((
                        "assign",
                        "application/json",
                        resp.to_string().into_bytes(),
                        points,
                    ))
                }
                ("POST", "ingest") => {
                    let (resp, points) = router.ingest(name, &req.body)?;
                    Ok((
                        "ingest",
                        "application/json",
                        resp.to_string().into_bytes(),
                        points,
                    ))
                }
                ("GET", "health") => {
                    let resp = router.health(name)?;
                    Ok((
                        "health",
                        "application/json",
                        resp.to_string().into_bytes(),
                        0,
                    ))
                }
                (_, "assign" | "ingest" | "health") => Err(HttpError::MethodNotAllowed {
                    method: method.to_string(),
                    path: path.to_string(),
                }),
                _ => Err(HttpError::NotFound(path.to_string())),
            }
        }
        (_, "/healthz" | "/metrics") => Err(HttpError::MethodNotAllowed {
            method: req.method.clone(),
            path: path.to_string(),
        }),
        _ => Err(HttpError::NotFound(path.to_string())),
    }
}
