//! The socket front end: a bounded thread pool over a [`Router`].
//!
//! One acceptor (the calling thread) pushes connections into a
//! `sync_channel` whose capacity is the accept backlog — when every
//! worker is busy and the queue is full, the acceptor blocks instead of
//! piling up unbounded connections, which is the server's backpressure.
//! Workers pull connections, speak keep-alive HTTP/1.1 over them, and
//! report every finished request back to the acceptor over a second
//! channel; the acceptor owns the session's [`Observer`], so trace events
//! stay single-threaded and ordered.
//!
//! Request lifecycle tracing: every accepted request gets a monotonically
//! increasing id and an `Instant`-stamped stage breakdown — accept-queue
//! wait, parse, route, shard-lock wait, engine compute, serialize, write
//! — carried on [`Event::HttpRequest`], folded into per-endpoint and
//! per-stage histograms on `/metrics`, and kept in a tail-sampling
//! [`FlightRecorder`] behind `GET /debug/requests`.
//!
//! Graceful shutdown: a [`ShutdownFlag`] (tripped programmatically, by
//! `SIGINT`/`SIGTERM`, or by `max_requests`) stops the accept loop, the
//! connection channel closes, workers finish their in-flight connections
//! and exit, and the router persists every dirty shard before
//! [`Server::run`] returns its report.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Sender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dbsvec_obs::telemetry::render_prometheus;
use dbsvec_obs::{Event, Histogram, HttpStages, Observer, Phase, Registry};

use crate::http::{read_request, write_response, HttpError, Request, DEFAULT_MAX_BODY_BYTES};
use crate::router::{RouteCost, Router};
use crate::trace::{FlightRecorder, RequestTrace};

/// Knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:8080` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads handling connections.
    pub threads: usize,
    /// Accepted-connection queue capacity (the backpressure bound).
    pub backlog: usize,
    /// Request-body cap in bytes.
    pub max_body: usize,
    /// Shut down after this many requests (tests and smoke jobs).
    pub max_requests: Option<u64>,
    /// Requests at or over this duration count as slow: the flight
    /// recorder always retains them and the acceptor logs one line per
    /// offender. `None` disables slow tracking (errors are still
    /// retained).
    pub slow_request_ms: Option<u64>,
    /// Flight-recorder ring capacity (recent and retained rings each).
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".to_string(),
            threads: 1,
            backlog: 64,
            max_body: DEFAULT_MAX_BODY_BYTES,
            max_requests: None,
            slow_request_ms: None,
            trace_capacity: 256,
        }
    }
}

/// Set by the process signal handler; async-signal-safe (a relaxed store
/// on a static atomic is all the handler does).
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SIGNAL_FLAG.store(true, Ordering::Relaxed);
}

/// A cooperative shutdown request, pollable from the accept loop.
///
/// [`ShutdownFlag::install_signal_handlers`] arms `SIGINT` and `SIGTERM`
/// via the libc `signal(2)` entry point (declared by hand — the workspace
/// carries no libc crate), so ctrl-c and orchestrator termination drain
/// the server instead of killing it mid-write.
#[derive(Clone, Debug, Default)]
pub struct ShutdownFlag {
    requested: Arc<AtomicBool>,
}

impl ShutdownFlag {
    /// A fresh, untripped flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the flag programmatically.
    pub fn request(&self) {
        self.requested.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown was requested (programmatically or by signal).
    pub fn is_requested(&self) -> bool {
        self.requested.load(Ordering::Relaxed) || SIGNAL_FLAG.load(Ordering::Relaxed)
    }

    /// Routes `SIGINT` and `SIGTERM` into this flag. No-op off Unix.
    pub fn install_signal_handlers(&self) {
        #[cfg(unix)]
        {
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            const SIGINT: i32 = 2;
            const SIGTERM: i32 = 15;
            unsafe {
                signal(SIGINT, on_signal as *const () as usize);
                signal(SIGTERM, on_signal as *const () as usize);
            }
        }
    }
}

/// Endpoint slugs, one duration histogram each on `/metrics`.
const ENDPOINTS: [&str; 8] = [
    "assign",
    "ingest",
    "remove",
    "health",
    "metrics",
    "healthz",
    "debug_requests",
    "error",
];

/// Stage slugs in [`HttpStages`] field order, one histogram each.
const STAGES: [&str; 7] = [
    "queue",
    "parse",
    "route",
    "lock",
    "engine",
    "serialize",
    "write",
];

fn endpoint_index(endpoint: &str) -> usize {
    ENDPOINTS
        .iter()
        .position(|&e| e == endpoint)
        .expect("every endpoint slug is registered")
}

fn micros(d: Duration) -> u64 {
    d.as_micros() as u64
}

/// Worker-fed duration histograms, in microsecond ticks (scaled to
/// seconds at exposition).
struct StageHists {
    endpoints: [Histogram; ENDPOINTS.len()],
    stages: [Histogram; STAGES.len()],
}

impl StageHists {
    fn new() -> Self {
        Self {
            endpoints: std::array::from_fn(|_| Histogram::new()),
            stages: std::array::from_fn(|_| Histogram::new()),
        }
    }
}

/// Live serving-tier state shared between workers and the `/metrics`,
/// `/healthz`, and `/debug/requests` handlers, rendered as an extra
/// exposition section beside the engine aggregate (names are disjoint,
/// so the concatenation stays valid).
struct HttpState {
    started: Instant,
    next_id: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    /// Connections the full accept queue refused at least once.
    queue_full: AtomicU64,
    /// Accepted connections currently waiting for a worker.
    queue_depth: AtomicU64,
    /// Workers currently handling a connection.
    workers_busy: AtomicU64,
    hists: Mutex<StageHists>,
    recorder: Mutex<FlightRecorder>,
}

impl HttpState {
    fn new(trace_capacity: usize, slow_threshold_us: Option<u64>) -> Self {
        Self {
            started: Instant::now(),
            next_id: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            queue_full: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            workers_busy: AtomicU64::new(0),
            hists: Mutex::new(StageHists::new()),
            recorder: Mutex::new(FlightRecorder::new(trace_capacity, slow_threshold_us)),
        }
    }

    /// Folds one finished request into the counters, histograms, and the
    /// flight recorder (called by the worker that handled it).
    fn record_request(&self, trace: &RequestTrace) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if trace.is_error() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut hists = self.hists.lock().unwrap();
            hists.endpoints[endpoint_index(trace.endpoint)].record(trace.duration_us);
            let s = trace.stages;
            for (hist, v) in hists.stages.iter_mut().zip([
                s.queue_us,
                s.parse_us,
                s.route_us,
                s.lock_us,
                s.engine_us,
                s.serialize_us,
                s.write_us,
            ]) {
                hist.record(v);
            }
        }
        self.recorder.lock().unwrap().record(trace.clone());
    }

    /// The serving-tier registry, built fresh per scrape.
    fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        let c = reg.counter(
            "dbsvec_http_requests_total",
            "HTTP requests handled by the serving tier.",
        );
        reg.set_counter(c, self.requests.load(Ordering::Relaxed));
        let c = reg.counter(
            "dbsvec_http_errors_total",
            "HTTP requests answered with a 4xx/5xx status.",
        );
        reg.set_counter(c, self.errors.load(Ordering::Relaxed));
        let c = reg.counter(
            "dbsvec_http_queue_full_total",
            "Connections the full accept queue refused and re-offered.",
        );
        reg.set_counter(c, self.queue_full.load(Ordering::Relaxed));
        let g = reg.gauge(
            "dbsvec_http_queue_depth",
            "Accepted connections waiting for a worker.",
        );
        reg.set(g, self.queue_depth.load(Ordering::Relaxed) as f64);
        let g = reg.gauge(
            "dbsvec_http_workers_busy",
            "Workers currently handling a connection.",
        );
        reg.set(g, self.workers_busy.load(Ordering::Relaxed) as f64);
        let hists = self.hists.lock().unwrap();
        for (name, hist) in ENDPOINTS.iter().zip(&hists.endpoints) {
            let id = reg.histogram(
                &format!("dbsvec_http_request_duration_{name}_seconds"),
                &format!("End-to-end latency of {name} requests."),
                1e6,
            );
            reg.merge_histogram(id, hist);
        }
        for (name, hist) in STAGES.iter().zip(&hists.stages) {
            let id = reg.histogram(
                &format!("dbsvec_http_stage_{name}_seconds"),
                &format!("Time spent in the {name} stage, all endpoints."),
                1e6,
            );
            reg.merge_histogram(id, hist);
        }
        reg
    }

    fn render(&self) -> String {
        render_prometheus(&self.registry())
    }
}

/// One finished request, reported from a worker to the acceptor (which
/// owns the observer).
struct RequestRecord {
    request_id: u64,
    endpoint: &'static str,
    status: u16,
    points: u64,
    duration_us: u64,
    stages: HttpStages,
}

/// What [`Server::run`] hands back after a graceful shutdown.
#[derive(Debug)]
pub struct ServerReport {
    /// Requests handled (including error responses).
    pub requests: u64,
    /// Of those, requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Snapshots written while persisting dirty shards: `(path, bytes)`.
    pub persisted: Vec<(PathBuf, u64)>,
}

/// The bound server, ready to [`Server::run`].
pub struct Server {
    listener: TcpListener,
    router: Arc<Router>,
    config: ServerConfig,
}

impl Server {
    /// Binds the configured address (use port 0 for an ephemeral port,
    /// then read [`Server::local_addr`]).
    pub fn bind(router: Arc<Router>, config: ServerConfig) -> io::Result<Server> {
        let addrs: Vec<SocketAddr> = config.addr.to_socket_addrs()?.collect();
        let listener = TcpListener::bind(&addrs[..])?;
        Ok(Server {
            listener,
            router,
            config,
        })
    }

    /// The actually-bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// [`Server::run_logged`] with slow-request lines discarded.
    pub fn run(&self, shutdown: &ShutdownFlag, obs: &mut dyn Observer) -> io::Result<ServerReport> {
        self.run_logged(shutdown, obs, &mut io::sink())
    }

    /// Serves until `shutdown` trips (or `max_requests` is reached), then
    /// drains in-flight connections, persists dirty shards, and reports.
    ///
    /// Runs the accept loop on the calling thread inside a
    /// [`Phase::Serve`] span; every finished request lands in `obs` as an
    /// [`Event::HttpRequest`] carrying its id, duration, and stage
    /// breakdown, and every persisted shard as an [`Event::SnapshotWrite`].
    /// When `slow_request_ms` is set, one line per over-threshold request
    /// goes to `log` (emitted by the acceptor, like the events).
    pub fn run_logged(
        &self,
        shutdown: &ShutdownFlag,
        obs: &mut dyn Observer,
        log: &mut dyn Write,
    ) -> io::Result<ServerReport> {
        self.listener.set_nonblocking(true)?;
        let threads = self.config.threads.max(1);
        let backlog = self.config.backlog.max(1);
        let slow_us = self
            .config
            .slow_request_ms
            .map(|ms| ms.saturating_mul(1000));
        let state = Arc::new(HttpState::new(self.config.trace_capacity, slow_us));
        let mut requests = 0u64;
        let mut errors = 0u64;

        obs.span_enter(Phase::Serve);
        let (conn_tx, conn_rx) = std::sync::mpsc::sync_channel::<(TcpStream, Instant)>(backlog);
        let (rec_tx, rec_rx) = std::sync::mpsc::channel::<RequestRecord>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let conn_rx = Arc::clone(&conn_rx);
                let rec_tx = rec_tx.clone();
                let router = Arc::clone(&self.router);
                let state = Arc::clone(&state);
                let max_body = self.config.max_body;
                scope.spawn(move || loop {
                    let (conn, accepted) = match conn_rx.lock().unwrap().recv() {
                        Ok(c) => c,
                        Err(_) => return, // channel closed: drain done
                    };
                    state.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    state.workers_busy.fetch_add(1, Ordering::Relaxed);
                    handle_connection(conn, accepted, &router, &state, max_body, &rec_tx);
                    state.workers_busy.fetch_sub(1, Ordering::Relaxed);
                });
            }
            drop(rec_tx);

            // Absorbs one worker record: counts it, logs it if slow, and
            // emits the trace event (single-threaded, acceptor side).
            let absorb = |rec: RequestRecord,
                          requests: &mut u64,
                          errors: &mut u64,
                          obs: &mut dyn Observer,
                          log: &mut dyn Write| {
                *requests += 1;
                if rec.status >= 400 {
                    *errors += 1;
                }
                if slow_us.is_some_and(|t| rec.duration_us >= t) {
                    let s = rec.stages;
                    let _ = writeln!(
                        log,
                        "slow request #{} {} status={} duration={}us \
                         queue={}us parse={}us route={}us lock={}us \
                         engine={}us serialize={}us write={}us",
                        rec.request_id,
                        rec.endpoint,
                        rec.status,
                        rec.duration_us,
                        s.queue_us,
                        s.parse_us,
                        s.route_us,
                        s.lock_us,
                        s.engine_us,
                        s.serialize_us,
                        s.write_us,
                    );
                }
                obs.event(&Event::HttpRequest {
                    endpoint: rec.endpoint.to_string(),
                    status: rec.status,
                    points: rec.points,
                    request_id: rec.request_id,
                    duration_us: rec.duration_us,
                    stages: rec.stages,
                });
            };

            let mut pending: Option<(TcpStream, Instant)> = None;
            loop {
                while let Ok(rec) = rec_rx.try_recv() {
                    absorb(rec, &mut requests, &mut errors, obs, log);
                }
                if shutdown.is_requested() {
                    break;
                }
                if let Some(max) = self.config.max_requests {
                    if requests >= max {
                        shutdown.request();
                        break;
                    }
                }
                // Re-offer a connection the full queue refused last round,
                // then accept new ones; try_send keeps this loop polling
                // (a blocking send would stop shutdown and record drains).
                if let Some(conn) = pending.take() {
                    match conn_tx.try_send(conn) {
                        Ok(()) => {
                            state.queue_depth.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full(conn)) => {
                            pending = Some(conn);
                            std::thread::sleep(Duration::from_millis(1));
                            continue;
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                match self.listener.accept() {
                    Ok((conn, _)) => match conn_tx.try_send((conn, Instant::now())) {
                        Ok(()) => {
                            state.queue_depth.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(TrySendError::Full(conn)) => {
                            state.queue_full.fetch_add(1, Ordering::Relaxed);
                            pending = Some(conn);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    },
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            // Close the queue; workers finish queued + in-flight
            // connections, then exit, which closes the record channel.
            drop(conn_tx);
            while let Ok(rec) = rec_rx.recv() {
                absorb(rec, &mut requests, &mut errors, obs, log);
            }
        });

        let persisted = self
            .router
            .persist_dirty()
            .map_err(|e| io::Error::other(format!("persisting dirty shards: {e}")))?;
        for (_, bytes) in &persisted {
            obs.event(&Event::SnapshotWrite { bytes: *bytes });
        }
        obs.span_exit(Phase::Serve);
        Ok(ServerReport {
            requests,
            errors,
            persisted,
        })
    }

    /// The router this server fronts.
    pub fn router(&self) -> &Arc<Router> {
        &self.router
    }
}

/// How long a keep-alive connection may sit idle before the worker closes
/// it (so shutdown never waits on a silent client).
const IDLE_TIMEOUT: Duration = Duration::from_millis(500);

fn handle_connection(
    conn: TcpStream,
    accepted: Instant,
    router: &Router,
    state: &HttpState,
    max_body: usize,
    records: &Sender<RequestRecord>,
) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(IDLE_TIMEOUT));
    let mut writer = match conn.try_clone() {
        Ok(w) => BufWriter::new(w),
        Err(_) => return,
    };
    let mut reader = BufReader::new(conn);
    // Queue wait belongs to the first request of the connection; later
    // keep-alive requests never sat in the accept queue.
    let mut queue_us = micros(accepted.elapsed());
    loop {
        let started = Instant::now();
        let parsed = read_request(&mut reader, max_body);
        let parse_us = micros(started.elapsed());
        let req = match parsed {
            Ok(None) => return, // clean close between requests
            Ok(Some(req)) => req,
            Err(err) => {
                // Framing is unknown after a parse error; answer and close.
                let status = err.status();
                let body = error_body(&err);
                let wstart = Instant::now();
                let _ = write_response(&mut writer, status, "application/json", &body, false);
                let stages = HttpStages {
                    queue_us,
                    parse_us,
                    write_us: micros(wstart.elapsed()),
                    ..Default::default()
                };
                finish(
                    state, records, "error", status, 0, started, queue_us, stages,
                );
                return;
            }
        };
        let keep_alive = req.keep_alive;
        let dispatch_start = Instant::now();
        let outcome = dispatch(router, state, &req);
        let dispatch_us = micros(dispatch_start.elapsed());
        let (endpoint, status, content_type, body, points, cost) = match outcome {
            Ok((endpoint, content_type, body, points, cost)) => {
                (endpoint, 200, content_type, body, points, cost)
            }
            Err(err) => (
                "error",
                err.status(),
                "application/json",
                error_body(&err),
                0,
                DispatchCost::default(),
            ),
        };
        let wstart = Instant::now();
        let write_ok = write_response(&mut writer, status, content_type, &body, keep_alive).is_ok();
        let stages = HttpStages {
            queue_us,
            parse_us,
            route_us: dispatch_us.saturating_sub(cost.lock_us + cost.engine_us + cost.serialize_us),
            lock_us: cost.lock_us,
            engine_us: cost.engine_us,
            serialize_us: cost.serialize_us,
            write_us: micros(wstart.elapsed()),
        };
        finish(
            state, records, endpoint, status, points, started, queue_us, stages,
        );
        queue_us = 0;
        if !write_ok || !keep_alive {
            return;
        }
    }
}

/// Assigns the request its id, records the trace worker-side, and reports
/// it to the acceptor.
#[allow(clippy::too_many_arguments)]
fn finish(
    state: &HttpState,
    records: &Sender<RequestRecord>,
    endpoint: &'static str,
    status: u16,
    points: u64,
    started: Instant,
    queue_us: u64,
    stages: HttpStages,
) {
    let request_id = state.next_id.fetch_add(1, Ordering::Relaxed) + 1;
    let duration_us = queue_us + micros(started.elapsed());
    let trace = RequestTrace {
        request_id,
        endpoint,
        status,
        points,
        duration_us,
        stages,
    };
    state.record_request(&trace);
    let _ = records.send(RequestRecord {
        request_id,
        endpoint,
        status,
        points,
        duration_us,
        stages,
    });
}

fn error_body(err: &HttpError) -> Vec<u8> {
    use dbsvec_obs::Json;
    Json::obj([
        ("error", Json::str(err.to_string())),
        ("status", Json::UInt(err.status() as u64)),
    ])
    .to_string()
    .into_bytes()
}

/// Lock, engine, and serialize time one dispatch spent, in microseconds
/// (everything else it did is the route stage).
#[derive(Clone, Copy, Debug, Default)]
struct DispatchCost {
    lock_us: u64,
    engine_us: u64,
    serialize_us: u64,
}

impl DispatchCost {
    fn from_route(cost: RouteCost, serialize_us: u64) -> Self {
        Self {
            lock_us: cost.lock_us,
            engine_us: cost.engine_us,
            serialize_us,
        }
    }
}

/// Times one body-rendering closure, returning the bytes and the
/// microseconds it took.
fn serialized(render: impl FnOnce() -> String) -> (Vec<u8>, u64) {
    let start = Instant::now();
    let body = render().into_bytes();
    (body, micros(start.elapsed()))
}

/// Routes one parsed request. Returns `(endpoint slug, content type,
/// response body, points served, stage cost)`.
fn dispatch(
    router: &Router,
    state: &HttpState,
    req: &Request,
) -> Result<(&'static str, &'static str, Vec<u8>, u64, DispatchCost), HttpError> {
    use dbsvec_obs::Json;
    let path = req.path.split('?').next().unwrap_or(&req.path);
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => {
            let models: Vec<Json> = router
                .models()
                .iter()
                .map(|m| {
                    Json::obj([
                        ("name", Json::str(m.name())),
                        ("shards", Json::UInt(m.shard_count() as u64)),
                    ])
                })
                .collect();
            let body = Json::obj([
                ("status", Json::str("ok")),
                (
                    "uptime_seconds",
                    Json::UInt(state.started.elapsed().as_secs()),
                ),
                (
                    "requests",
                    Json::UInt(state.requests.load(Ordering::Relaxed)),
                ),
                ("models", Json::Arr(models)),
            ]);
            let (body, serialize_us) = serialized(|| body.to_string());
            Ok((
                "healthz",
                "application/json",
                body,
                0,
                DispatchCost {
                    serialize_us,
                    ..Default::default()
                },
            ))
        }
        ("GET", "/metrics") => {
            let (body, serialize_us) = serialized(|| {
                let mut text = router.metrics_text();
                text.push_str(&state.render());
                text
            });
            Ok((
                "metrics",
                "text/plain; version=0.0.4",
                body,
                0,
                DispatchCost {
                    serialize_us,
                    ..Default::default()
                },
            ))
        }
        ("GET", "/debug/requests") => {
            let (body, serialize_us) = serialized(|| {
                let recorder = state.recorder.lock().unwrap();
                recorder.snapshot_json().to_string()
            });
            Ok((
                "debug_requests",
                "application/json",
                body,
                0,
                DispatchCost {
                    serialize_us,
                    ..Default::default()
                },
            ))
        }
        (method, path) if path.starts_with("/v1/models/") => {
            let rest = &path["/v1/models/".len()..];
            let (name, op) = rest
                .split_once('/')
                .ok_or_else(|| HttpError::NotFound(path.to_string()))?;
            if name.is_empty() {
                return Err(HttpError::NotFound(path.to_string()));
            }
            match (method, op) {
                ("POST", "assign") => {
                    let mut cost = RouteCost::default();
                    let (resp, points) = router.assign_traced(name, &req.body, &mut cost)?;
                    let (body, serialize_us) = serialized(|| resp.to_string());
                    Ok((
                        "assign",
                        "application/json",
                        body,
                        points,
                        DispatchCost::from_route(cost, serialize_us),
                    ))
                }
                ("POST", "ingest") => {
                    let mut cost = RouteCost::default();
                    let (resp, points) = router.ingest_traced(name, &req.body, &mut cost)?;
                    let (body, serialize_us) = serialized(|| resp.to_string());
                    Ok((
                        "ingest",
                        "application/json",
                        body,
                        points,
                        DispatchCost::from_route(cost, serialize_us),
                    ))
                }
                ("DELETE", "points") => {
                    let mut cost = RouteCost::default();
                    let (resp, points) = router.remove_traced(name, &req.body, &mut cost)?;
                    let (body, serialize_us) = serialized(|| resp.to_string());
                    Ok((
                        "remove",
                        "application/json",
                        body,
                        points,
                        DispatchCost::from_route(cost, serialize_us),
                    ))
                }
                ("GET", "health") => {
                    let resp = router.health(name)?;
                    let (body, serialize_us) = serialized(|| resp.to_string());
                    Ok((
                        "health",
                        "application/json",
                        body,
                        0,
                        DispatchCost {
                            serialize_us,
                            ..Default::default()
                        },
                    ))
                }
                (_, "assign" | "ingest" | "points" | "health") => {
                    Err(HttpError::MethodNotAllowed {
                        method: method.to_string(),
                        path: path.to_string(),
                    })
                }
                _ => Err(HttpError::NotFound(path.to_string())),
            }
        }
        (_, "/healthz" | "/metrics" | "/debug/requests") => Err(HttpError::MethodNotAllowed {
            method: req.method.clone(),
            path: path.to_string(),
        }),
        _ => Err(HttpError::NotFound(path.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, endpoint: &'static str, status: u16, duration_us: u64) -> RequestTrace {
        RequestTrace {
            request_id: id,
            endpoint,
            status,
            points: 1,
            duration_us,
            stages: HttpStages {
                parse_us: 1_000,
                engine_us: 2_000,
                write_us: 1_000,
                ..Default::default()
            },
        }
    }

    /// The golden exposition test for the serving-tier section: pinned
    /// byte-for-byte, like the registry renderer's own golden. Breaks
    /// loudly on any name, help, ordering, or bucketing change.
    #[test]
    fn http_exposition_is_pinned() {
        let state = HttpState::new(8, Some(5_000_000));
        state.record_request(&trace(1, "assign", 200, 4_000));
        state.record_request(&trace(2, "assign", 200, 8_000));
        state.record_request(&trace(3, "error", 400, 1_000));
        state.queue_full.store(1, Ordering::Relaxed);
        state.queue_depth.store(2, Ordering::Relaxed);
        state.workers_busy.store(1, Ordering::Relaxed);
        let text = state.render();
        let expected = "\
# HELP dbsvec_http_requests_total HTTP requests handled by the serving tier.
# TYPE dbsvec_http_requests_total counter
dbsvec_http_requests_total 3
# HELP dbsvec_http_errors_total HTTP requests answered with a 4xx/5xx status.
# TYPE dbsvec_http_errors_total counter
dbsvec_http_errors_total 1
# HELP dbsvec_http_queue_full_total Connections the full accept queue refused and re-offered.
# TYPE dbsvec_http_queue_full_total counter
dbsvec_http_queue_full_total 1
# HELP dbsvec_http_queue_depth Accepted connections waiting for a worker.
# TYPE dbsvec_http_queue_depth gauge
dbsvec_http_queue_depth 2
# HELP dbsvec_http_workers_busy Workers currently handling a connection.
# TYPE dbsvec_http_workers_busy gauge
dbsvec_http_workers_busy 1
# HELP dbsvec_http_request_duration_assign_seconds End-to-end latency of assign requests.
# TYPE dbsvec_http_request_duration_assign_seconds summary
dbsvec_http_request_duration_assign_seconds{quantile=\"0.5\"} 0.004096
dbsvec_http_request_duration_assign_seconds{quantile=\"0.95\"} 0.008
dbsvec_http_request_duration_assign_seconds{quantile=\"0.99\"} 0.008
dbsvec_http_request_duration_assign_seconds_sum 0.012
dbsvec_http_request_duration_assign_seconds_count 2
# HELP dbsvec_http_request_duration_ingest_seconds End-to-end latency of ingest requests.
# TYPE dbsvec_http_request_duration_ingest_seconds summary
dbsvec_http_request_duration_ingest_seconds_sum 0
dbsvec_http_request_duration_ingest_seconds_count 0
# HELP dbsvec_http_request_duration_remove_seconds End-to-end latency of remove requests.
# TYPE dbsvec_http_request_duration_remove_seconds summary
dbsvec_http_request_duration_remove_seconds_sum 0
dbsvec_http_request_duration_remove_seconds_count 0
# HELP dbsvec_http_request_duration_health_seconds End-to-end latency of health requests.
# TYPE dbsvec_http_request_duration_health_seconds summary
dbsvec_http_request_duration_health_seconds_sum 0
dbsvec_http_request_duration_health_seconds_count 0
# HELP dbsvec_http_request_duration_metrics_seconds End-to-end latency of metrics requests.
# TYPE dbsvec_http_request_duration_metrics_seconds summary
dbsvec_http_request_duration_metrics_seconds_sum 0
dbsvec_http_request_duration_metrics_seconds_count 0
# HELP dbsvec_http_request_duration_healthz_seconds End-to-end latency of healthz requests.
# TYPE dbsvec_http_request_duration_healthz_seconds summary
dbsvec_http_request_duration_healthz_seconds_sum 0
dbsvec_http_request_duration_healthz_seconds_count 0
# HELP dbsvec_http_request_duration_debug_requests_seconds End-to-end latency of debug_requests requests.
# TYPE dbsvec_http_request_duration_debug_requests_seconds summary
dbsvec_http_request_duration_debug_requests_seconds_sum 0
dbsvec_http_request_duration_debug_requests_seconds_count 0
# HELP dbsvec_http_request_duration_error_seconds End-to-end latency of error requests.
# TYPE dbsvec_http_request_duration_error_seconds summary
dbsvec_http_request_duration_error_seconds{quantile=\"0.5\"} 0.001
dbsvec_http_request_duration_error_seconds{quantile=\"0.95\"} 0.001
dbsvec_http_request_duration_error_seconds{quantile=\"0.99\"} 0.001
dbsvec_http_request_duration_error_seconds_sum 0.001
dbsvec_http_request_duration_error_seconds_count 1
# HELP dbsvec_http_stage_queue_seconds Time spent in the queue stage, all endpoints.
# TYPE dbsvec_http_stage_queue_seconds summary
dbsvec_http_stage_queue_seconds{quantile=\"0.5\"} 0
dbsvec_http_stage_queue_seconds{quantile=\"0.95\"} 0
dbsvec_http_stage_queue_seconds{quantile=\"0.99\"} 0
dbsvec_http_stage_queue_seconds_sum 0
dbsvec_http_stage_queue_seconds_count 3
# HELP dbsvec_http_stage_parse_seconds Time spent in the parse stage, all endpoints.
# TYPE dbsvec_http_stage_parse_seconds summary
dbsvec_http_stage_parse_seconds{quantile=\"0.5\"} 0.001
dbsvec_http_stage_parse_seconds{quantile=\"0.95\"} 0.001
dbsvec_http_stage_parse_seconds{quantile=\"0.99\"} 0.001
dbsvec_http_stage_parse_seconds_sum 0.003
dbsvec_http_stage_parse_seconds_count 3
# HELP dbsvec_http_stage_route_seconds Time spent in the route stage, all endpoints.
# TYPE dbsvec_http_stage_route_seconds summary
dbsvec_http_stage_route_seconds{quantile=\"0.5\"} 0
dbsvec_http_stage_route_seconds{quantile=\"0.95\"} 0
dbsvec_http_stage_route_seconds{quantile=\"0.99\"} 0
dbsvec_http_stage_route_seconds_sum 0
dbsvec_http_stage_route_seconds_count 3
# HELP dbsvec_http_stage_lock_seconds Time spent in the lock stage, all endpoints.
# TYPE dbsvec_http_stage_lock_seconds summary
dbsvec_http_stage_lock_seconds{quantile=\"0.5\"} 0
dbsvec_http_stage_lock_seconds{quantile=\"0.95\"} 0
dbsvec_http_stage_lock_seconds{quantile=\"0.99\"} 0
dbsvec_http_stage_lock_seconds_sum 0
dbsvec_http_stage_lock_seconds_count 3
# HELP dbsvec_http_stage_engine_seconds Time spent in the engine stage, all endpoints.
# TYPE dbsvec_http_stage_engine_seconds summary
dbsvec_http_stage_engine_seconds{quantile=\"0.5\"} 0.002
dbsvec_http_stage_engine_seconds{quantile=\"0.95\"} 0.002
dbsvec_http_stage_engine_seconds{quantile=\"0.99\"} 0.002
dbsvec_http_stage_engine_seconds_sum 0.006
dbsvec_http_stage_engine_seconds_count 3
# HELP dbsvec_http_stage_serialize_seconds Time spent in the serialize stage, all endpoints.
# TYPE dbsvec_http_stage_serialize_seconds summary
dbsvec_http_stage_serialize_seconds{quantile=\"0.5\"} 0
dbsvec_http_stage_serialize_seconds{quantile=\"0.95\"} 0
dbsvec_http_stage_serialize_seconds{quantile=\"0.99\"} 0
dbsvec_http_stage_serialize_seconds_sum 0
dbsvec_http_stage_serialize_seconds_count 3
# HELP dbsvec_http_stage_write_seconds Time spent in the write stage, all endpoints.
# TYPE dbsvec_http_stage_write_seconds summary
dbsvec_http_stage_write_seconds{quantile=\"0.5\"} 0.001
dbsvec_http_stage_write_seconds{quantile=\"0.95\"} 0.001
dbsvec_http_stage_write_seconds{quantile=\"0.99\"} 0.001
dbsvec_http_stage_write_seconds_sum 0.003
dbsvec_http_stage_write_seconds_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_parses_and_tracks_errors_and_gauges() {
        let state = HttpState::new(8, None);
        state.record_request(&trace(1, "ingest", 200, 500));
        state.record_request(&trace(2, "error", 503, 90));
        let samples = dbsvec_obs::telemetry::parse_prometheus(&state.render()).expect("parses");
        let get = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.labels.is_empty())
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert_eq!(get("dbsvec_http_requests_total"), 2.0);
        assert_eq!(get("dbsvec_http_errors_total"), 1.0);
        assert_eq!(get("dbsvec_http_queue_full_total"), 0.0);
        assert_eq!(get("dbsvec_http_queue_depth"), 0.0);
        assert_eq!(
            get("dbsvec_http_request_duration_ingest_seconds_count"),
            1.0
        );
        assert_eq!(get("dbsvec_http_stage_engine_seconds_count"), 2.0);
    }

    #[test]
    fn request_ids_increase_monotonically() {
        let state = HttpState::new(4, None);
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..3 {
            finish(
                &state,
                &tx,
                "healthz",
                200,
                0,
                Instant::now(),
                0,
                HttpStages::default(),
            );
        }
        let ids: Vec<u64> = rx.try_iter().map(|r| r.request_id).collect();
        assert_eq!(ids, [1, 2, 3]);
        assert_eq!(state.requests.load(Ordering::Relaxed), 3);
    }
}
