//! The routing core: models → shards → per-shard engines.
//!
//! A [`Router`] owns one [`ModelEntry`] per served model; each entry owns
//! N [`Shard`]s, each a `Mutex` around an [`Engine`] plus its
//! [`EngineMetrics`] and an optional [`QualityMonitor`]. Two routing
//! modes compose:
//!
//! * **Name-based** (multi-model): the `{name}` path segment picks the
//!   entry.
//! * **Point-to-shard** (sharded single model): within an entry, a point
//!   hashes — FNV-1a over its coordinate bits, so the mapping is
//!   consistent across requests and processes — to one shard. Assignment
//!   is pure, so any shard answers identically; ingest routed this way
//!   keeps each point's density bookkeeping on one shard.
//!
//! Lock granularity is the shard: two HTTP workers hitting different
//! shards (or different models) never contend. Batch bodies group their
//! rows per shard and take each shard lock once, then scatter results
//! back into request order.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dbsvec_engine::{
    snapshot, Assignment, Engine, EngineMetrics, EngineStats, HealthSnapshot, IngestOutcome,
    ModelArtifact, MonitorConfig, QualityMonitor, RemoveOutcome, SnapshotError,
};
use dbsvec_obs::telemetry::render_prometheus;
use dbsvec_obs::{Json, NoopObserver};

use crate::http::HttpError;

/// Lock-wait and engine-compute time one routed request accumulated
/// across its shard groups, in microseconds. The server stamps these into
/// the request's stage breakdown ([`dbsvec_obs::HttpStages`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouteCost {
    /// Total time blocked acquiring per-shard locks.
    pub lock_us: u64,
    /// Engine compute spent under those locks.
    pub engine_us: u64,
}

fn micros(d: std::time::Duration) -> u64 {
    d.as_micros() as u64
}

/// One shard: an engine plus its per-shard telemetry.
pub struct Shard {
    engine: Engine,
    metrics: EngineMetrics,
    monitor: Option<QualityMonitor>,
    /// State-changing ingests since the last persist (duplicates do not
    /// count — they change nothing worth snapshotting).
    mutations: u64,
    snapshot_writes: u64,
    snapshot_loads: u64,
}

impl Shard {
    /// The engine behind this shard.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Whether this shard has unpersisted mutations.
    pub fn dirty(&self) -> bool {
        self.mutations > 0
    }
}

/// One served model: a name, the snapshot it was loaded from, and its
/// shards.
pub struct ModelEntry {
    name: String,
    path: PathBuf,
    shards: Vec<Mutex<Shard>>,
}

impl ModelEntry {
    /// The model's routing name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of shards serving this model.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// The sharded multi-model router.
#[derive(Default)]
pub struct Router {
    models: Vec<ModelEntry>,
}

/// FNV-1a over the coordinate bit patterns: the consistent point-to-shard
/// hash. Little-endian `f64::to_bits` bytes make the mapping exact and
/// platform-independent for identical inputs.
pub fn point_shard(x: &[f64], shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in x {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h % shards as u64) as usize
}

fn assignment_json(a: Assignment) -> Json {
    match a.cluster() {
        Some(c) => Json::UInt(c as u64),
        None => Json::Null,
    }
}

fn outcome_slug(out: IngestOutcome) -> &'static str {
    match out {
        IngestOutcome::Duplicate => "duplicate",
        IngestOutcome::Core { .. } => "core",
        IngestOutcome::Border { .. } => "border",
        IngestOutcome::Buffered => "buffered",
    }
}

/// Decoded body of an assign/ingest request: coordinate rows plus whether
/// the client sent the single-point (`{"point":[..]}`) or the batch
/// (`{"points":[[..],..]}`) shape.
pub struct PointsBody {
    /// The coordinate rows.
    pub rows: Vec<Vec<f64>>,
    /// True for the batch shape (the response echoes an array back).
    pub batch: bool,
}

fn row_from_json(v: &Json, dims: usize) -> Result<Vec<f64>, HttpError> {
    let arr = match v {
        Json::Arr(items) => items,
        other => {
            return Err(HttpError::BadBody(format!(
                "point must be an array of numbers, got {other}"
            )))
        }
    };
    let mut row = Vec::with_capacity(arr.len());
    for item in arr {
        match item {
            Json::Num(f) => row.push(*f),
            Json::Int(i) => row.push(*i as f64),
            Json::UInt(u) => row.push(*u as f64),
            other => {
                return Err(HttpError::BadBody(format!(
                    "non-numeric coordinate: {other}"
                )))
            }
        }
    }
    if row.len() != dims {
        return Err(HttpError::BadBody(format!(
            "point has {} coordinates, model expects {dims}",
            row.len()
        )));
    }
    Ok(row)
}

/// Parses an assign/ingest body against the model's dimensionality.
pub fn parse_points_body(body: &[u8], dims: usize) -> Result<PointsBody, HttpError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| HttpError::BadJson("body is not UTF-8".to_string()))?;
    let value = dbsvec_obs::json::parse(text).map_err(HttpError::BadJson)?;
    if let Some(p) = value.get("point") {
        return Ok(PointsBody {
            rows: vec![row_from_json(p, dims)?],
            batch: false,
        });
    }
    if let Some(ps) = value.get("points") {
        let items = match ps {
            Json::Arr(items) => items,
            other => {
                return Err(HttpError::BadBody(format!(
                    "\"points\" must be an array of arrays, got {other}"
                )))
            }
        };
        if items.is_empty() {
            return Err(HttpError::BadBody("\"points\" is empty".to_string()));
        }
        let rows = items
            .iter()
            .map(|v| row_from_json(v, dims))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(PointsBody { rows, batch: true });
    }
    Err(HttpError::BadBody(
        "body must carry \"point\" or \"points\"".to_string(),
    ))
}

impl Router {
    /// An empty router (add models with [`Router::add_model`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a model from an already-decoded artifact, building `shards`
    /// independent engines over it. `monitor` attaches a fresh
    /// [`QualityMonitor`] to every shard.
    pub fn add_model(
        &mut self,
        name: impl Into<String>,
        path: impl Into<PathBuf>,
        artifact: &ModelArtifact,
        shards: usize,
        monitor: Option<MonitorConfig>,
    ) {
        let shards = shards.max(1);
        let name = name.into();
        let entries = (0..shards)
            .map(|_| {
                let engine = Engine::new(artifact);
                let monitor = monitor.map(|cfg| engine.monitor(cfg));
                Mutex::new(Shard {
                    engine,
                    metrics: EngineMetrics::new(),
                    monitor,
                    mutations: 0,
                    snapshot_writes: 0,
                    snapshot_loads: 1,
                })
            })
            .collect();
        self.models.push(ModelEntry {
            name,
            path: path.into(),
            shards: entries,
        });
    }

    /// Loads a `.dbm` snapshot and adds it under the file-stem name.
    pub fn load_model(
        &mut self,
        path: impl AsRef<Path>,
        shards: usize,
        monitor: Option<MonitorConfig>,
    ) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let (artifact, _) = snapshot::read_file(path)?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        self.add_model(name, path, &artifact, shards, monitor);
        Ok(())
    }

    /// The served models, in registration order.
    pub fn models(&self) -> &[ModelEntry] {
        &self.models
    }

    fn entry(&self, name: &str) -> Result<&ModelEntry, HttpError> {
        self.models
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| HttpError::NotFound(format!("/v1/models/{name}")))
    }

    /// Classifies the body's points against `name`, hashing each point to
    /// its shard and batching per shard through [`Engine::assign_many`].
    /// Returns the response object and the number of points served.
    pub fn assign(&self, name: &str, body: &[u8]) -> Result<(Json, u64), HttpError> {
        self.assign_traced(name, body, &mut RouteCost::default())
    }

    /// [`Router::assign`], accumulating per-shard lock-wait and engine
    /// time into `cost`.
    pub fn assign_traced(
        &self,
        name: &str,
        body: &[u8],
        cost: &mut RouteCost,
    ) -> Result<(Json, u64), HttpError> {
        let entry = self.entry(name)?;
        let dims = entry.shards[0].lock().unwrap().engine.dims();
        let parsed = parse_points_body(body, dims)?;
        let n = parsed.rows.len();
        let shard_count = entry.shards.len();
        // Group row indices per shard, then take each shard lock once.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (i, row) in parsed.rows.iter().enumerate() {
            groups[point_shard(row, shard_count)].push(i);
        }
        let mut answers: Vec<Option<Assignment>> = vec![None; n];
        for (shard_idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let lock_start = std::time::Instant::now();
            let mut shard = entry.shards[shard_idx].lock().unwrap();
            cost.lock_us += micros(lock_start.elapsed());
            let engine_start = std::time::Instant::now();
            let shard = &mut *shard;
            if let Some(monitor) = shard.monitor.as_mut() {
                // Monitored assigns are sequential by design (the monitor
                // is windowed `&mut` state), and metered by hand.
                for &i in group {
                    let start = std::time::Instant::now();
                    let a =
                        shard
                            .engine
                            .assign_monitored(&parsed.rows[i], monitor, &mut NoopObserver);
                    shard.metrics.record_assign(start.elapsed());
                    answers[i] = Some(a);
                }
            } else {
                let rows: Vec<&[f64]> = group.iter().map(|&i| parsed.rows[i].as_slice()).collect();
                let got = shard.engine.assign_many(&rows, 1, &mut shard.metrics);
                for (&i, a) in group.iter().zip(got) {
                    answers[i] = Some(a);
                }
            }
            cost.engine_us += micros(engine_start.elapsed());
        }
        let clusters: Vec<Json> = answers
            .into_iter()
            .map(|a| assignment_json(a.expect("every row was routed to a shard")))
            .collect();
        let response = if parsed.batch {
            Json::obj([
                ("model", Json::str(name)),
                ("count", Json::UInt(n as u64)),
                ("clusters", Json::Arr(clusters)),
            ])
        } else {
            Json::obj([
                ("model", Json::str(name)),
                (
                    "cluster",
                    clusters.into_iter().next().expect("single-point body"),
                ),
            ])
        };
        Ok((response, n as u64))
    }

    /// Ingests the body's points into `name`, hashing each point to its
    /// shard so density bookkeeping for a given point stays on one engine.
    pub fn ingest(&self, name: &str, body: &[u8]) -> Result<(Json, u64), HttpError> {
        self.ingest_traced(name, body, &mut RouteCost::default())
    }

    /// [`Router::ingest`], accumulating per-shard lock-wait and engine
    /// time into `cost`.
    pub fn ingest_traced(
        &self,
        name: &str,
        body: &[u8],
        cost: &mut RouteCost,
    ) -> Result<(Json, u64), HttpError> {
        let entry = self.entry(name)?;
        let dims = entry.shards[0].lock().unwrap().engine.dims();
        let parsed = parse_points_body(body, dims)?;
        let n = parsed.rows.len();
        let shard_count = entry.shards.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (i, row) in parsed.rows.iter().enumerate() {
            groups[point_shard(row, shard_count)].push(i);
        }
        let mut outcomes: Vec<Option<IngestOutcome>> = vec![None; n];
        for (shard_idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let lock_start = std::time::Instant::now();
            let mut shard = entry.shards[shard_idx].lock().unwrap();
            cost.lock_us += micros(lock_start.elapsed());
            let engine_start = std::time::Instant::now();
            let shard = &mut *shard;
            for &i in group {
                let start = std::time::Instant::now();
                let out = match shard.monitor.as_mut() {
                    Some(monitor) => {
                        shard
                            .engine
                            .ingest_monitored(&parsed.rows[i], monitor, &mut NoopObserver)
                    }
                    None => shard.engine.ingest(&parsed.rows[i]),
                };
                shard.metrics.record_ingest(start.elapsed());
                if !matches!(out, IngestOutcome::Duplicate) {
                    shard.mutations += 1;
                }
                outcomes[i] = Some(out);
            }
            cost.engine_us += micros(engine_start.elapsed());
        }
        let slugs: Vec<Json> = outcomes
            .into_iter()
            .map(|o| Json::str(outcome_slug(o.expect("every row was routed to a shard"))))
            .collect();
        let response = if parsed.batch {
            Json::obj([
                ("model", Json::str(name)),
                ("count", Json::UInt(n as u64)),
                ("outcomes", Json::Arr(slugs)),
            ])
        } else {
            Json::obj([
                ("model", Json::str(name)),
                (
                    "outcome",
                    slugs.into_iter().next().expect("single-point body"),
                ),
            ])
        };
        Ok((response, n as u64))
    }

    /// Removes the body's points from `name`, hashing each point to its
    /// shard (the same mapping that routed its ingest, so the removal
    /// lands on the engine tracking it). A single-point body naming an
    /// untracked point answers a typed 404; a batch body answers 200
    /// with per-point outcomes.
    pub fn remove(&self, name: &str, body: &[u8]) -> Result<(Json, u64), HttpError> {
        self.remove_traced(name, body, &mut RouteCost::default())
    }

    /// [`Router::remove`], accumulating per-shard lock-wait and engine
    /// time into `cost`.
    pub fn remove_traced(
        &self,
        name: &str,
        body: &[u8],
        cost: &mut RouteCost,
    ) -> Result<(Json, u64), HttpError> {
        let entry = self.entry(name)?;
        let dims = entry.shards[0].lock().unwrap().engine.dims();
        let parsed = parse_points_body(body, dims)?;
        let n = parsed.rows.len();
        let shard_count = entry.shards.len();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (i, row) in parsed.rows.iter().enumerate() {
            groups[point_shard(row, shard_count)].push(i);
        }
        let mut outcomes: Vec<Option<RemoveOutcome>> = vec![None; n];
        for (shard_idx, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let lock_start = std::time::Instant::now();
            let mut shard = entry.shards[shard_idx].lock().unwrap();
            cost.lock_us += micros(lock_start.elapsed());
            let engine_start = std::time::Instant::now();
            let shard = &mut *shard;
            let rows: Vec<&[f64]> = group.iter().map(|&i| parsed.rows[i].as_slice()).collect();
            let got = shard.engine.remove_many(&rows, &mut shard.metrics);
            for (&i, out) in group.iter().zip(got) {
                if !matches!(out, RemoveOutcome::NotFound) {
                    shard.mutations += 1;
                }
                outcomes[i] = Some(out);
            }
            cost.engine_us += micros(engine_start.elapsed());
        }
        let outcomes: Vec<RemoveOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every row was routed to a shard"))
            .collect();
        if !parsed.batch {
            return match outcomes[0] {
                RemoveOutcome::NotFound => Err(HttpError::UnknownPoint(format!(
                    "{:?}",
                    parsed.rows[0].as_slice()
                ))),
                RemoveOutcome::Removed {
                    was_core,
                    demoted,
                    splits,
                } => Ok((
                    Json::obj([
                        ("model", Json::str(name)),
                        ("removed", Json::Bool(true)),
                        ("was_core", Json::Bool(was_core)),
                        ("demoted", Json::UInt(demoted as u64)),
                        ("splits", Json::UInt(splits as u64)),
                    ]),
                    1,
                )),
            };
        }
        let removed = outcomes
            .iter()
            .filter(|o| !matches!(o, RemoveOutcome::NotFound))
            .count() as u64;
        let items: Vec<Json> = outcomes
            .into_iter()
            .map(|o| match o {
                RemoveOutcome::NotFound => Json::obj([("removed", Json::Bool(false))]),
                RemoveOutcome::Removed {
                    was_core,
                    demoted,
                    splits,
                } => Json::obj([
                    ("removed", Json::Bool(true)),
                    ("was_core", Json::Bool(was_core)),
                    ("demoted", Json::UInt(demoted as u64)),
                    ("splits", Json::UInt(splits as u64)),
                ]),
            })
            .collect();
        Ok((
            Json::obj([
                ("model", Json::str(name)),
                ("count", Json::UInt(n as u64)),
                ("removed", Json::UInt(removed)),
                ("outcomes", Json::Arr(items)),
            ]),
            n as u64,
        ))
    }

    /// One model's health, folded across its shards: counts sum,
    /// staleness takes the worst shard, refit evidence ORs.
    pub fn health(&self, name: &str) -> Result<Json, HttpError> {
        let entry = self.entry(name)?;
        let mut agg: Option<HealthSnapshot> = None;
        let mut dirty = 0u64;
        for shard in &entry.shards {
            let shard = shard.lock().unwrap();
            let h = match shard.monitor.as_ref() {
                Some(m) => shard.engine.health_with(m),
                None => shard.engine.health(),
            };
            dirty += shard.dirty() as u64;
            agg = Some(match agg {
                None => h,
                Some(mut a) => {
                    a.staleness = a.staleness.max(h.staleness);
                    a.refit_recommended = a.refit_recommended || h.refit_recommended;
                    a.core_points += h.core_points;
                    a.tail_length += h.tail_length;
                    a.clusters += h.clusters;
                    a.buffered_points += h.buffered_points;
                    a.tree_rebuilds += h.tree_rebuilds;
                    a
                }
            });
        }
        let h = agg.expect("a model always has at least one shard");
        let mut fields = vec![
            ("model", Json::str(name)),
            ("shards", Json::UInt(entry.shards.len() as u64)),
            ("dirty_shards", Json::UInt(dirty)),
            ("core_points", Json::UInt(h.core_points as u64)),
            ("clusters", Json::UInt(h.clusters as u64)),
            ("buffered_points", Json::UInt(h.buffered_points as u64)),
            ("tail_length", Json::UInt(h.tail_length as u64)),
            ("staleness", Json::Num(h.staleness)),
            ("refit_recommended", Json::Bool(h.refit_recommended)),
        ];
        if let Some(s) = h.sampling {
            fields.push(("sampling", Json::Str(s.describe())));
        }
        Ok(Json::obj(fields))
    }

    /// Builds the aggregate metrics registry across every shard of every
    /// model: counters from summed [`EngineStats`], gauges from folded
    /// health, per-call latency histograms merged shard by shard. When the
    /// router serves exactly one monitored shard, the monitor's drift
    /// gauges ride along too.
    pub fn aggregate_metrics(&self) -> EngineMetrics {
        let mut agg = EngineMetrics::new();
        let mut stats = EngineStats::default();
        let mut health: Option<HealthSnapshot> = None;
        let mut writes = 0u64;
        let mut loads = 0u64;
        let single_monitored = self.models.len() == 1 && self.models[0].shards.len() == 1;
        for entry in &self.models {
            for shard in &entry.shards {
                let shard = shard.lock().unwrap();
                let s = shard.engine.stats();
                stats.assigns += s.assigns;
                stats.assign_hits += s.assign_hits;
                stats.ingests += s.ingests;
                stats.duplicates += s.duplicates;
                stats.promotions += s.promotions;
                stats.new_clusters += s.new_clusters;
                stats.merges += s.merges;
                stats.removals += s.removals;
                stats.remove_misses += s.remove_misses;
                stats.demotions += s.demotions;
                stats.splits += s.splits;
                stats.tree_rebuilds += s.tree_rebuilds;
                let h = shard.engine.health();
                health = Some(match health {
                    None => h,
                    Some(mut a) => {
                        a.staleness = a.staleness.max(h.staleness);
                        a.refit_recommended = a.refit_recommended || h.refit_recommended;
                        a.core_points += h.core_points;
                        a.tail_length += h.tail_length;
                        a.clusters += h.clusters;
                        a.buffered_points += h.buffered_points;
                        a.tree_rebuilds += h.tree_rebuilds;
                        a
                    }
                });
                writes += shard.snapshot_writes;
                loads += shard.snapshot_loads;
                agg.merge_assign_latencies(shard.metrics.assign_latency().histogram());
                agg.merge_ingest_latencies(shard.metrics.ingest_latency().histogram());
                agg.merge_remove_latencies(shard.metrics.remove_latency().histogram());
                agg.merge_split_latencies(shard.metrics.split_latency().histogram());
                if single_monitored {
                    if let Some(monitor) = shard.monitor.as_ref() {
                        agg.refresh_with_monitor(&shard.engine, monitor);
                    }
                }
            }
        }
        if let Some(h) = health {
            // refresh_with_monitor above already wrote the single-shard
            // view; the overwrite below is identical for that case.
            agg.refresh_from_parts(&stats, &h);
        }
        agg.set_snapshot_counts(writes, loads);
        agg
    }

    /// The aggregate registry rendered as Prometheus text.
    pub fn metrics_text(&self) -> String {
        render_prometheus(self.aggregate_metrics().registry())
    }

    /// Persists every dirty shard as `<stem>.shard<k>.dbm` next to the
    /// snapshot it was loaded from (never overwriting the input), and
    /// marks it clean. Returns `(path, bytes)` per written snapshot.
    pub fn persist_dirty(&self) -> Result<Vec<(PathBuf, u64)>, SnapshotError> {
        let mut written = Vec::new();
        for entry in &self.models {
            let stem = entry
                .path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| entry.name.clone());
            let dir = entry.path.parent().unwrap_or_else(|| Path::new("."));
            for (k, shard) in entry.shards.iter().enumerate() {
                let mut shard = shard.lock().unwrap();
                if !shard.dirty() {
                    continue;
                }
                let path = dir.join(format!("{stem}.shard{k}.dbm"));
                let artifact = shard.engine.snapshot();
                let bytes = snapshot::write_file(&artifact, &path)?;
                shard.snapshot_writes += 1;
                shard.mutations = 0;
                written.push((path, bytes));
            }
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_geometry::PointSet;

    fn artifact() -> ModelArtifact {
        let mut cores = PointSet::new(2);
        let mut labels = Vec::new();
        for i in 0..5 {
            cores.push(&[i as f64, 0.0]);
            labels.push(0);
        }
        for i in 0..5 {
            cores.push(&[i as f64, 100.0]);
            labels.push(1);
        }
        ModelArtifact {
            eps: 1.5,
            min_pts: 3,
            num_clusters: 2,
            cores,
            core_labels: labels,
            boundaries: None,
            quality: None,
            sampling: None,
        }
    }

    fn body(points: &[[f64; 2]]) -> Vec<u8> {
        let rows: Vec<String> = points
            .iter()
            .map(|p| format!("[{},{}]", p[0], p[1]))
            .collect();
        format!("{{\"points\":[{}]}}", rows.join(",")).into_bytes()
    }

    #[test]
    fn point_shard_is_consistent_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for i in 0..50 {
                let p = [i as f64 * 0.37, (i % 7) as f64];
                let s = point_shard(&p, shards);
                assert!(s < shards);
                assert_eq!(s, point_shard(&p, shards), "hash must be stable");
            }
        }
    }

    #[test]
    fn sharded_assign_matches_an_unsharded_engine() {
        let art = artifact();
        let mut reference = Engine::new(&art);
        let mut router = Router::new();
        router.add_model("m", "m.dbm", &art, 3, None);
        let queries: Vec<[f64; 2]> = (0..40)
            .map(|i| [(i % 7) as f64, (i % 3) as f64 * 50.0])
            .collect();
        let (resp, n) = router.assign("m", &body(&queries)).unwrap();
        assert_eq!(n, 40);
        let clusters = match resp.get("clusters") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("bad response: {other:?}"),
        };
        for (q, got) in queries.iter().zip(clusters) {
            let want = match reference.assign(q).cluster() {
                Some(c) => Json::UInt(c as u64),
                None => Json::Null,
            };
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn single_point_shape_round_trips() {
        let mut router = Router::new();
        router.add_model("m", "m.dbm", &artifact(), 2, None);
        let (resp, n) = router.assign("m", b"{\"point\":[2.0,0.5]}").unwrap();
        assert_eq!(n, 1);
        assert_eq!(resp.get("cluster"), Some(&Json::UInt(0)));
        let (resp, _) = router.assign("m", b"{\"point\":[50.0,50.0]}").unwrap();
        assert_eq!(resp.get("cluster"), Some(&Json::Null));
    }

    #[test]
    fn unknown_model_is_not_found() {
        let mut router = Router::new();
        router.add_model("m", "m.dbm", &artifact(), 1, None);
        let err = router.assign("ghost", b"{\"point\":[0,0]}").unwrap_err();
        assert!(matches!(err, HttpError::NotFound(_)));
        assert_eq!(err.status(), 404);
    }

    #[test]
    fn bad_bodies_are_typed() {
        let mut router = Router::new();
        router.add_model("m", "m.dbm", &artifact(), 1, None);
        assert!(matches!(
            router.assign("m", b"not json").unwrap_err(),
            HttpError::BadJson(_)
        ));
        assert!(matches!(
            router.assign("m", b"{\"nope\":1}").unwrap_err(),
            HttpError::BadBody(_)
        ));
        assert!(matches!(
            router.assign("m", b"{\"point\":[1.0]}").unwrap_err(),
            HttpError::BadBody(_) // dims mismatch
        ));
        assert!(matches!(
            router.assign("m", b"{\"points\":[]}").unwrap_err(),
            HttpError::BadBody(_)
        ));
        assert!(matches!(
            router.assign("m", b"{\"point\":[1.0,\"x\"]}").unwrap_err(),
            HttpError::BadBody(_)
        ));
    }

    #[test]
    fn ingest_marks_shards_dirty_and_duplicates_do_not() {
        let mut router = Router::new();
        router.add_model("m", "m.dbm", &artifact(), 2, None);
        let (resp, n) = router
            .ingest("m", b"{\"points\":[[2.0,0.4],[2.0,0.4],[70.0,70.0]]}")
            .unwrap();
        assert_eq!(n, 3);
        let outcomes = match resp.get("outcomes") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("bad response: {other:?}"),
        };
        assert_eq!(outcomes[1], Json::str("duplicate"));
        let dirty: usize = router.models()[0]
            .shards
            .iter()
            .filter(|s| s.lock().unwrap().dirty())
            .count();
        assert!(dirty >= 1, "a non-duplicate ingest must dirty its shard");
    }

    #[test]
    fn remove_routes_to_the_ingesting_shard_and_types_unknowns() {
        let mut router = Router::new();
        router.add_model("m", "m.dbm", &artifact(), 3, None);
        router
            .ingest("m", b"{\"points\":[[2.0,0.4],[70.0,70.0]]}")
            .unwrap();
        // Batch: one tracked buffered point, one fitted core, one unknown.
        let (resp, n) = router
            .remove("m", b"{\"points\":[[70.0,70.0],[2.0,0.0],[9.0,9.0]]}")
            .unwrap();
        assert_eq!(n, 3);
        assert_eq!(resp.get("removed"), Some(&Json::UInt(2)));
        let outcomes = match resp.get("outcomes") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("bad response: {other:?}"),
        };
        assert_eq!(outcomes[0].get("removed"), Some(&Json::Bool(true)));
        assert_eq!(outcomes[0].get("was_core"), Some(&Json::Bool(false)));
        assert_eq!(outcomes[1].get("was_core"), Some(&Json::Bool(true)));
        assert_eq!(outcomes[2].get("removed"), Some(&Json::Bool(false)));
        // Single-point unknown: typed 404, not a 200 envelope.
        let err = router.remove("m", b"{\"point\":[9.0,9.0]}").unwrap_err();
        assert!(matches!(err, HttpError::UnknownPoint(_)));
        assert_eq!(err.status(), 404);
        // Single-point known: flat response object, shard goes dirty.
        let (resp, _) = router.remove("m", b"{\"point\":[2.0,0.4]}").unwrap();
        assert_eq!(resp.get("removed"), Some(&Json::Bool(true)));
        let agg = router.aggregate_metrics();
        assert_eq!(
            agg.registry().counter_value("dbsvec_removals_total"),
            Some(3)
        );
        assert_eq!(
            agg.registry().counter_value("dbsvec_remove_misses_total"),
            Some(2)
        );
        assert_eq!(agg.remove_latency().histogram().count(), 5);
    }

    #[test]
    fn health_aggregates_across_shards() {
        let mut router = Router::new();
        router.add_model("m", "m.dbm", &artifact(), 2, None);
        let h = router.health("m").unwrap();
        assert_eq!(h.get("shards"), Some(&Json::UInt(2)));
        // Each shard holds a full copy of the model's cores.
        assert_eq!(h.get("core_points"), Some(&Json::UInt(20)));
        assert_eq!(h.get("refit_recommended"), Some(&Json::Bool(false)));
    }

    #[test]
    fn aggregate_metrics_sum_stats_and_merge_latencies() {
        let mut router = Router::new();
        router.add_model("a", "a.dbm", &artifact(), 2, None);
        router.add_model("b", "b.dbm", &artifact(), 1, None);
        router
            .assign("a", &body(&[[2.0, 0.5], [3.0, 0.5], [50.0, 50.0]]))
            .unwrap();
        router.assign("b", b"{\"point\":[2.0,0.5]}").unwrap();
        let agg = router.aggregate_metrics();
        let reg = agg.registry();
        assert_eq!(reg.counter_value("dbsvec_assigns_total"), Some(4));
        assert_eq!(agg.assign_latency().histogram().count(), 4);
        assert_eq!(reg.counter_value("dbsvec_snapshot_loads_total"), Some(3));
        let text = router.metrics_text();
        assert!(text.contains("dbsvec_assigns_total 4"));
    }

    #[test]
    fn persist_dirty_writes_only_dirty_shards_and_resets() {
        let dir = std::env::temp_dir().join(format!("dbsvec-router-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let model_path = dir.join("m.dbm");
        let mut router = Router::new();
        router.add_model("m", &model_path, &artifact(), 2, None);
        assert!(router.persist_dirty().unwrap().is_empty(), "nothing dirty");
        router.ingest("m", b"{\"point\":[2.0,0.4]}").unwrap();
        let written = router.persist_dirty().unwrap();
        assert_eq!(written.len(), 1, "exactly the mutated shard persists");
        let (path, bytes) = &written[0];
        assert!(path.to_string_lossy().contains("m.shard"));
        assert!(*bytes > 0);
        let (reloaded, _) = snapshot::read_file(path).unwrap();
        assert!(reloaded.validate().is_ok());
        assert!(router.persist_dirty().unwrap().is_empty(), "clean again");
        std::fs::remove_dir_all(&dir).ok();
    }
}
