//! Zero-dependency HTTP serving tier for DBSVEC engines.
//!
//! Everything here is `std`-only, in the spirit of the workspace's
//! hand-rolled JSON and Prometheus exposition: [`http`] parses and frames
//! HTTP/1.1 by hand with typed errors, [`router`] owns the sharded
//! multi-model state (per-shard `Mutex<Engine>` + metrics + optional
//! quality monitor), [`server`] runs the bounded thread pool with
//! graceful, snapshot-persisting shutdown, and [`trace`] keeps the
//! tail-sampling flight recorder behind `GET /debug/requests`.
//!
//! ```no_run
//! use std::sync::Arc;
//! use dbsvec_server::{Router, Server, ServerConfig, ShutdownFlag};
//!
//! let mut router = Router::new();
//! router.load_model(std::path::Path::new("model.dbm"), 4, None).unwrap();
//! let server = Server::bind(Arc::new(router), ServerConfig::default()).unwrap();
//! let shutdown = ShutdownFlag::new();
//! shutdown.install_signal_handlers();
//! let report = server
//!     .run(&shutdown, &mut dbsvec_obs::NoopObserver)
//!     .unwrap();
//! eprintln!("served {} requests", report.requests);
//! ```

pub mod http;
pub mod router;
pub mod server;
pub mod trace;

pub use http::{
    read_request, write_response, HttpError, Request, DEFAULT_MAX_BODY_BYTES, MAX_HEADER_BYTES,
};
pub use router::{point_shard, ModelEntry, RouteCost, Router};
pub use server::{Server, ServerConfig, ServerReport, ShutdownFlag};
pub use trace::{FlightRecorder, RequestTrace};
