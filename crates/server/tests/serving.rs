//! Integration tests against a live server on an ephemeral port:
//! concurrent traffic, typed error statuses over the socket, keep-alive
//! framing, and graceful shutdown persisting dirty shards.

use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use dbsvec_engine::{snapshot, Engine, ModelArtifact};
use dbsvec_geometry::PointSet;
use dbsvec_obs::{JsonlSink, NoopObserver, ProfileReport, RecordingObserver, ReplayCounts, Tee};
use dbsvec_server::{Router, Server, ServerConfig, ServerReport, ShutdownFlag};

fn artifact() -> ModelArtifact {
    let mut cores = PointSet::new(2);
    let mut labels = Vec::new();
    for i in 0..6 {
        cores.push(&[i as f64, 0.0]);
        labels.push(0);
    }
    for i in 0..6 {
        cores.push(&[i as f64, 100.0]);
        labels.push(1);
    }
    ModelArtifact {
        eps: 1.5,
        min_pts: 3,
        num_clusters: 2,
        cores,
        core_labels: labels,
        boundaries: None,
        quality: None,
        sampling: None,
    }
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dbsvec-serving-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Harness {
    addr: SocketAddr,
    shutdown: ShutdownFlag,
    handle: JoinHandle<std::io::Result<ServerReport>>,
    router: Arc<Router>,
    dir: PathBuf,
}

impl Harness {
    fn start(shards: usize, threads: usize, max_requests: Option<u64>) -> Harness {
        Harness::start_cfg(shards, |cfg| cfg.max_requests = max_requests, threads)
    }

    fn start_cfg(shards: usize, tweak: impl FnOnce(&mut ServerConfig), threads: usize) -> Harness {
        let dir = scratch_dir();
        let mut router = Router::new();
        router.add_model("m", dir.join("m.dbm"), &artifact(), shards, None);
        let router = Arc::new(router);
        let mut config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads,
            backlog: 8,
            ..ServerConfig::default()
        };
        tweak(&mut config);
        let server = Server::bind(Arc::clone(&router), config).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = ShutdownFlag::new();
        let flag = shutdown.clone();
        let handle = std::thread::spawn(move || server.run(&flag, &mut NoopObserver));
        Harness {
            addr,
            shutdown,
            handle,
            router,
            dir,
        }
    }

    fn stop(self) -> ServerReport {
        self.shutdown.request();
        let report = self.handle.join().unwrap().unwrap();
        let _ = std::fs::remove_dir_all(&self.dir);
        report
    }
}

/// One request over a fresh connection with `Connection: close`; returns
/// `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    conn.write_all(body.as_bytes()).unwrap();
    read_response(conn)
}

fn read_response(conn: TcpStream) -> (u16, String) {
    let mut raw = String::new();
    BufReader::new(conn).read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    (status, body.to_string())
}

#[test]
fn http_assign_matches_the_in_process_engine() {
    let h = Harness::start(3, 1, None);
    let mut reference = Engine::new(&artifact());
    for q in [[2.0, 0.5], [3.0, 99.5], [50.0, 50.0], [0.2, 0.9]] {
        let (status, body) = request(
            h.addr,
            "POST",
            "/v1/models/m/assign",
            &format!("{{\"point\":[{},{}]}}", q[0], q[1]),
        );
        assert_eq!(status, 200, "body: {body}");
        let want = match reference.assign(&q).cluster() {
            Some(c) => format!("\"cluster\":{c}"),
            None => "\"cluster\":null".to_string(),
        };
        assert!(body.contains(&want), "body {body} missing {want}");
    }
    let report = h.stop();
    assert_eq!(report.requests, 4);
    assert_eq!(report.errors, 0);
}

#[test]
fn concurrent_clients_assign_ingest_and_scrape() {
    let h = Harness::start(2, 4, None);
    let addr = h.addr;
    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                for i in 0..8 {
                    let x = (c * 8 + i) as f64 * 0.1;
                    let (status, body) = request(
                        addr,
                        "POST",
                        "/v1/models/m/assign",
                        &format!("{{\"points\":[[{x},0.0],[{x},100.0]]}}"),
                    );
                    assert_eq!(status, 200, "assign body: {body}");
                    assert!(body.contains("\"count\":2"), "assign body: {body}");
                    let (status, body) = request(
                        addr,
                        "POST",
                        "/v1/models/m/ingest",
                        &format!("{{\"point\":[{},50.0]}}", 200.0 + x),
                    );
                    assert_eq!(status, 200, "ingest body: {body}");
                    let (status, _) = request(addr, "GET", "/v1/models/m/health", "");
                    assert_eq!(status, 200);
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    let (status, text) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("dbsvec_http_requests_total"), "{text}");
    assert!(text.contains("dbsvec_assigns_total"), "{text}");
    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\""), "{body}");

    let report = h.stop();
    assert_eq!(report.requests, 4 * 8 * 3 + 2);
    assert_eq!(report.errors, 0);
}

#[test]
fn graceful_shutdown_persists_dirty_shards() {
    let h = Harness::start(2, 2, None);
    // Novel points dirty whichever shard they hash to.
    for i in 0..6 {
        let (status, body) = request(
            h.addr,
            "POST",
            "/v1/models/m/ingest",
            &format!("{{\"point\":[{},0.4]}}", i as f64 * 0.5),
        );
        assert_eq!(status, 200, "ingest body: {body}");
    }
    let dir = h.dir.clone();
    let router = Arc::clone(&h.router);
    let report = {
        let Harness {
            shutdown, handle, ..
        } = h;
        shutdown.request();
        handle.join().unwrap().unwrap()
    };
    assert!(
        !report.persisted.is_empty(),
        "dirty shards must be persisted on shutdown"
    );
    for (path, bytes) in &report.persisted {
        assert!(*bytes > 0);
        let (reloaded, _loaded_bytes) = snapshot::read_file(path).unwrap();
        reloaded.validate().unwrap();
    }
    // A second persist finds nothing dirty: shutdown left shards clean.
    assert!(router.persist_dirty().unwrap().is_empty());
    let _ = std::fs::remove_dir_all(dir);
}

/// DELETE /v1/models/{name}/points over a live socket: single and batch
/// bodies remove tracked points shard-transparently, an unknown single
/// point is a typed 404, and the deletions re-dirty their shards so the
/// shutdown drain persists them.
#[test]
fn delete_over_the_socket_removes_points_and_persists_dirty_shards() {
    let h = Harness::start(2, 2, None);
    // Ingest novel points across both shards; exact decimal coordinates
    // so the JSON round trip reproduces the bit pattern removal keys on.
    let rows: Vec<String> = (0..6).map(|i| format!("[{}.5,0.25]", i)).collect();
    let (status, body) = request(
        h.addr,
        "POST",
        "/v1/models/m/ingest",
        &format!("{{\"points\":[{}]}}", rows.join(",")),
    );
    assert_eq!(status, 200, "ingest: {body}");
    // Flush ingest dirt so the persistence asserted below is the DELETEs'.
    assert!(!h.router.persist_dirty().unwrap().is_empty());

    // Single tracked point: removed, with the repair outcome inlined.
    let (status, body) = request(
        h.addr,
        "DELETE",
        "/v1/models/m/points",
        "{\"point\":[0.5,0.25]}",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"removed\":true"), "{body}");
    assert!(body.contains("\"was_core\""), "{body}");
    assert!(body.contains("\"splits\""), "{body}");

    // The same point again — and any never-tracked point — is a typed 404.
    for unknown in ["{\"point\":[0.5,0.25]}", "{\"point\":[77.0,77.0]}"] {
        let (status, body) = request(h.addr, "DELETE", "/v1/models/m/points", unknown);
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("\"error\""), "{body}");
        assert!(body.contains("point not tracked"), "{body}");
    }

    // Batch: three tracked and one unknown, grouped per shard — the
    // response keeps request order and counts only the found removals.
    let (status, body) = request(
        h.addr,
        "DELETE",
        "/v1/models/m/points",
        "{\"points\":[[1.5,0.25],[2.5,0.25],[3.5,0.25],[88.0,88.0]]}",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"count\":4"), "{body}");
    assert!(body.contains("\"removed\":3"), "{body}");
    assert!(body.contains("\"removed\":false"), "{body}");

    // Unknown model is still the usual model-level 404.
    let (status, _) = request(
        h.addr,
        "DELETE",
        "/v1/models/ghost/points",
        "{\"point\":[0,0]}",
    );
    assert_eq!(status, 404);

    // Drain: the DELETE-dirtied shards persist, and the persisted
    // snapshots reload cleanly.
    let dir = h.dir.clone();
    let router = Arc::clone(&h.router);
    let report = {
        let Harness {
            shutdown, handle, ..
        } = h;
        shutdown.request();
        handle.join().unwrap().unwrap()
    };
    assert!(
        !report.persisted.is_empty(),
        "DELETE must dirty shards for the shutdown drain"
    );
    for (path, bytes) in &report.persisted {
        assert!(*bytes > 0);
        let (reloaded, _) = snapshot::read_file(path).unwrap();
        reloaded.validate().unwrap();
    }
    assert!(router.persist_dirty().unwrap().is_empty());
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn error_statuses_are_typed_over_the_socket() {
    let h = Harness::start(1, 1, None);
    let cases = [
        ("GET", "/nope", "", 404u16),
        ("GET", "/v1/models/ghost/health", "", 404),
        ("POST", "/v1/models/ghost/assign", "{\"point\":[0,0]}", 404),
        ("GET", "/v1/models/m/assign", "", 405),
        ("POST", "/v1/models/m/health", "", 405),
        ("POST", "/healthz", "", 405),
        ("POST", "/v1/models/m/assign", "{not json", 400),
        ("POST", "/v1/models/m/assign", "{\"point\":[1.0]}", 400),
        ("POST", "/v1/models/m/assign", "{\"points\":[]}", 400),
    ];
    for (method, path, body, want) in cases {
        let (status, resp) = request(h.addr, method, path, body);
        assert_eq!(status, want, "{method} {path}: {resp}");
        assert!(resp.contains("\"error\""), "{method} {path}: {resp}");
    }
    // An oversized declared body is refused without reading it.
    let mut conn = TcpStream::connect(h.addr).unwrap();
    conn.write_all(
        b"POST /v1/models/m/assign HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n",
    )
    .unwrap();
    let (status, _) = read_response(conn);
    assert_eq!(status, 413);
    // A malformed request line is a 400, not a hang.
    let mut conn = TcpStream::connect(h.addr).unwrap();
    conn.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let (status, _) = read_response(conn);
    assert_eq!(status, 400);

    let report = h.stop();
    assert_eq!(report.requests, cases.len() as u64 + 2);
    assert_eq!(report.errors, cases.len() as u64 + 2);
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let h = Harness::start(1, 1, None);
    let mut conn = TcpStream::connect(h.addr).unwrap();
    for (i, q) in [[1.0, 0.0], [1.0, 100.0]].iter().enumerate() {
        let body = format!("{{\"point\":[{},{}]}}", q[0], q[1]);
        let head = format!(
            "POST /v1/models/m/assign HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        conn.write_all(head.as_bytes()).unwrap();
        conn.write_all(body.as_bytes()).unwrap();
        // Read exactly one framed response off the shared connection.
        let mut raw = Vec::new();
        let mut byte = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            conn.read_exact(&mut byte).unwrap();
            raw.push(byte[0]);
        }
        let head = String::from_utf8(raw).unwrap();
        assert!(head.starts_with("HTTP/1.1 200"), "request {i}: {head}");
        let len: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(str::to_string)
            })
            .and_then(|v| v.trim().parse().ok())
            .expect("content-length header");
        let mut body = vec![0u8; len];
        conn.read_exact(&mut body).unwrap();
        assert!(String::from_utf8(body).unwrap().contains("\"cluster\""));
    }
    drop(conn);
    let report = h.stop();
    assert_eq!(report.requests, 2);
}

/// One request whose body arrives in two halves with a pause in between,
/// stretching the server-side parse stage past any small slow threshold
/// while staying well under the 500ms idle timeout.
fn slow_request(
    addr: SocketAddr,
    path: &str,
    body: &str,
    delay: std::time::Duration,
) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).unwrap();
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    conn.write_all(head.as_bytes()).unwrap();
    let (first, rest) = body.split_at(body.len() / 2);
    conn.write_all(first.as_bytes()).unwrap();
    conn.flush().unwrap();
    std::thread::sleep(delay);
    conn.write_all(rest.as_bytes()).unwrap();
    read_response(conn)
}

/// Digs the first integer after `key` out of a JSON line (the trace
/// format flattens every stage field, so plain string math suffices).
fn extract_u64(line: &str, key: &str) -> u64 {
    let rest = &line[line.find(key).expect(key) + key.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn flight_recorder_retains_slow_and_error_traces_after_ring_wrap() {
    let h = Harness::start_cfg(
        1,
        |cfg| {
            cfg.slow_request_ms = Some(50);
            cfg.trace_capacity = 4;
        },
        2,
    );

    // One genuinely slow assign (the body stalls ~120ms mid-flight), one
    // 404, then enough fast traffic to wrap the 4-trace recent ring
    // several times over.
    let (status, body) = slow_request(
        h.addr,
        "/v1/models/m/assign",
        "{\"point\":[2.0,0.5]}",
        std::time::Duration::from_millis(120),
    );
    assert_eq!(status, 200, "slow assign body: {body}");
    let (status, _) = request(h.addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    for _ in 0..20 {
        let (status, _) = request(h.addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
    }

    let (status, body) = request(h.addr, "GET", "/debug/requests", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"capacity\":4"), "got: {body}");
    assert!(body.contains("\"slow_threshold_ms\":50"), "got: {body}");
    // Both interesting traces outlived the wrap, stage-attributed.
    assert!(
        body.contains("\"endpoint\":\"assign\"") && body.contains("\"slow\":true"),
        "slow assign trace missing: {body}"
    );
    assert!(
        body.contains("\"endpoint\":\"error\"") && body.contains("\"status\":404"),
        "error trace missing: {body}"
    );
    assert!(body.contains("\"parse_us\":"), "got: {body}");
    // The slow request's parse stage carries the injected stall.
    let slow_line = body
        .split("{\"request_id\"")
        .find(|chunk| chunk.contains("\"slow\":true"))
        .expect("slow trace present");
    assert!(
        extract_u64(slow_line, "\"parse_us\":") >= 100_000,
        "parse stage should carry the ~120ms stall: {slow_line}"
    );

    // The metrics section exposes the per-endpoint/stage histograms and
    // the queue gauges the acceptor maintains.
    let (status, text) = request(h.addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for name in [
        "dbsvec_http_request_duration_assign_seconds",
        "dbsvec_http_request_duration_healthz_seconds{quantile=\"0.95\"}",
        "dbsvec_http_stage_parse_seconds",
        "dbsvec_http_stage_engine_seconds",
        "dbsvec_http_queue_depth",
        "dbsvec_http_workers_busy",
        "dbsvec_http_queue_full_total",
    ] {
        assert!(text.contains(name), "missing {name} in: {text}");
    }

    let report = h.stop();
    assert_eq!(report.requests, 24);
    assert_eq!(report.errors, 1);
}

#[test]
fn healthz_reports_uptime_served_requests_and_shards() {
    let h = Harness::start(3, 1, None);
    let (status, _) = request(
        h.addr,
        "POST",
        "/v1/models/m/ingest",
        "{\"point\":[0.5,0.1]}",
    );
    assert_eq!(status, 200);
    let (status, body) = request(h.addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "got: {body}");
    assert!(body.contains("\"uptime_seconds\":"), "got: {body}");
    assert!(
        body.contains("\"requests\":1"),
        "healthz must count the one served request: {body}"
    );
    assert!(
        body.contains("\"name\":\"m\"") && body.contains("\"shards\":3"),
        "got: {body}"
    );
    h.stop();
}

#[test]
fn trace_jsonl_cross_checks_with_live_replay_counts() {
    let dir = scratch_dir();
    let mut router = Router::new();
    router.add_model("m", dir.join("m.dbm"), &artifact(), 2, None);
    let router = Arc::new(router);
    let server = Server::bind(
        Arc::clone(&router),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            backlog: 8,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let shutdown = ShutdownFlag::new();
    let flag = shutdown.clone();
    let handle = std::thread::spawn(move || {
        let mut recorder = RecordingObserver::new();
        let mut sink = JsonlSink::new(Vec::new());
        let report = {
            let mut tee = Tee(&mut recorder, &mut sink);
            server.run(&flag, &mut tee).unwrap()
        };
        (report, recorder, sink.finish().unwrap())
    });

    for i in 0..3 {
        let (status, _) = request(
            addr,
            "POST",
            "/v1/models/m/assign",
            &format!("{{\"point\":[{}.0,0.2]}}", i),
        );
        assert_eq!(status, 200);
    }
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    shutdown.request();
    let (report, recorder, jsonl) = handle.join().unwrap();
    let jsonl = String::from_utf8(jsonl).unwrap();
    assert_eq!(report.requests, 5);
    assert_eq!(report.errors, 1);

    let live = recorder.replay();
    assert_eq!(live.http_requests, 5);
    assert_eq!(live.http_errors, 1);
    assert!(live.http_duration_us > 0);

    // Replaying the written trace reproduces the live counts exactly —
    // including the summed per-request wall time.
    let replayed = ReplayCounts::from_jsonl(&jsonl).expect("trace replays");
    assert_eq!(replayed, live, "jsonl replay diverged from live counts");

    // And the per-request duration fields on the trace lines sum to that
    // same total: the jsonl is the ground truth the report renders.
    let mut duration_sum = 0u64;
    let mut ids = Vec::new();
    for line in jsonl.lines().filter(|l| l.contains("\"http_request\"")) {
        duration_sum += extract_u64(line, "\"duration_us\":");
        ids.push(extract_u64(line, "\"request_id\":"));
    }
    assert_eq!(duration_sum, live.http_duration_us);
    ids.sort_unstable();
    assert_eq!(ids, [1, 2, 3, 4, 5], "ids are dense and monotonic");

    let rendered = ProfileReport::from_recording(&recorder, 0).to_string();
    assert!(
        rendered.contains("http requests 5 | http errors 1"),
        "got: {rendered}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn max_requests_trips_shutdown_on_its_own() {
    let h = Harness::start(1, 1, Some(3));
    for _ in 0..3 {
        let (status, _) = request(h.addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
    }
    // No explicit shutdown.request(): the server stops itself.
    let report = h.handle.join().unwrap().unwrap();
    assert_eq!(report.requests, 3);
    let _ = std::fs::remove_dir_all(&h.dir);
}
