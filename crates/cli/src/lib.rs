//! Library backing the `dbsvec` command-line tool.
//!
//! Thin, testable wrappers around the workspace crates:
//!
//! * `dbsvec cluster` — cluster a CSV of points with DBSVEC or any
//!   baseline, writing labels (and optionally an SVG scatter for 2-D data);
//!   ε can be derived automatically from the k-distance knee;
//! * `dbsvec compare` — run DBSVEC and exact DBSCAN side by side and
//!   report agreement (recall, ARI) and timings;
//! * `dbsvec generate` — emit one of the synthetic benchmark datasets as
//!   CSV;
//! * `dbsvec suggest` — print the k-distance-derived ε for a dataset;
//! * `dbsvec fit` — cluster with DBSVEC and persist the fitted model as a
//!   versioned binary snapshot (`.dbm`);
//! * `dbsvec serve` — load a snapshot and assign a batch of new points
//!   (optionally fanned out over threads);
//! * `dbsvec serve-http` — expose one or more snapshots over the std-only
//!   HTTP/1.1 serving tier (sharded router, graceful shutdown);
//! * `dbsvec ingest` — stream new points into a loaded model, promoting
//!   dense arrivals to cores, and report the resulting drift;
//! * `dbsvec metrics-report` — render a `--metrics-file` dump (Prometheus
//!   text or JSON) human-readably, validating it along the way;
//! * `dbsvec monitor-report` — summarize the drift metrics a monitored
//!   serve/ingest run dumped, and optionally assert the refit verdict
//!   (`--expect-refit` / `--expect-fresh`) as an exit status for CI.
//!
//! All user errors surface as [`CliError`] with a message suitable for
//! stderr; the binary in `src/bin/dbsvec.rs` is a trivial shell around
//! [`run`].

pub mod args;
pub mod commands;

use args::{ArgError, ParsedArgs};

/// A user-facing CLI failure.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Usage text printed for `--help` / missing subcommands.
pub const USAGE: &str = "\
dbsvec-cli — density-based clustering using support vector expansion (ICDE 2019)

USAGE:
  dbsvec-cli cluster  --input points.csv [--algorithm NAME] [--eps F] [--min-pts N]
                  [--output labels.csv] [--svg plot.svg] [--seed N] [--stats]
                  [--profile] [--trace out.jsonl]
  dbsvec-cli compare  --input points.csv [--eps F] [--min-pts N] [--seed N]
  dbsvec-cli generate --dataset NAME [--n N] [--dims D] [--seed N] --output file.csv
  dbsvec-cli suggest  --input points.csv [--min-pts N]
  dbsvec-cli fit      --input points.csv --save model.dbm [--eps F] [--min-pts N]
                  [--threads N] [--cold-start] [--boundaries] [--stats] [--profile]
                  [--sample-rate R | --sample-kcenter M] [--sample-seed N]
                  [--trace out.jsonl]
  dbsvec-cli serve    --model model.dbm --assign points.csv [--output labels.csv]
                  [--threads N] [--profile] [--trace out.jsonl]
                  [--metrics-file metrics.prom] [--metrics-interval N]
                  [--monitor] [--monitor-window N] [--drift-threshold F]
                  [--refit-threshold F]
  dbsvec-cli serve-http --model a.dbm[,b.dbm] [--addr HOST:PORT] [--shards N]
                  [--threads N] [--monitor] [--monitor-window N]
                  [--drift-threshold F] [--metrics-file metrics.prom]
                  [--trace out.jsonl] [--max-requests N]
                  [--slow-request-ms N] [--trace-capacity N]
  dbsvec-cli ingest   --model model.dbm --input points.csv [--save updated.dbm]
                  [--remove-ids LIST] [--trace out.jsonl] [--metrics-file metrics.prom]
                  [--metrics-interval N] [--monitor] [--monitor-window N]
                  [--drift-threshold F] [--refit-threshold F]
  dbsvec-cli metrics-report --input metrics.prom
  dbsvec-cli monitor-report --input metrics.prom [--expect-refit | --expect-fresh]

ALGORITHMS (for --algorithm):
  dbsvec (default) | dbsvec-min | dbscan | kd-dbscan | parallel-dbscan |
  rho-approx | dbscan-lsh | nq-dbscan | fdbscan | kmeans (uses --k) |
  hdbscan (uses --min-cluster-size; --min-pts doubles as min_samples)

DATASETS (for --dataset):
  t48k | t710k | moons | spirals | walk (uses --n, --dims)

Omitting --eps derives it from the k-distance knee (Schubert et al. 2017);
omitting --min-pts uses a cardinality-based default.

fit --threads N fans the per-round support-vector range queries and the SMO
kernel rows across N worker threads (0 = all cores, the default; 1 = the
sequential code path). Labels, stats, and traces are identical at every N.
fit --cold-start disables the warm-started incremental SMO solver (cross-round
alpha reuse + active-set shrinking); labels are identical either way.

SAMPLED CORE DISCOVERY (fit):
  fit --sample-rate R draws a uniform Bernoulli subsample (each point a core
  candidate with probability R in (0, 1]) and restricts seeding, expansion,
  and the eps-derivation k-distance sweep to it; unsampled points are then
  attached to the nearest discovered core within eps or confirmed as noise.
  fit --sample-kcenter M draws M greedy farthest-first (k-center) candidates
  instead — better coverage of sparse regions at the same budget.
  --sample-seed N seeds the draw (default 20190401). At --sample-rate 1.0
  the fit is bit-identical to an exact fit. The summary prints a greppable
  `sampling:` line; the snapshot records the provenance, which serve and
  the /health endpoint report back.

SERVING:
  fit --save writes a versioned, checksummed binary snapshot (.dbm) of the
  fitted model (core points, labels, eps/MinPts; --boundaries also persists
  one trained SVDD per cluster). serve loads it and labels new points by the
  nearest-core-within-eps rule; ingest streams points in, promoting dense
  arrivals to cores, and prints a staleness-based re-fit recommendation.
  ingest --remove-ids LIST (row indices, e.g. 3,5,10-20) removes those input
  rows from the model by coordinates instead of ingesting them, in row
  order: tracked neighborhoods thin, cores falling below MinPts demote back
  to the buffer, and clusters merge or split as the core graph repairs.

HTTP SERVING (serve-http):
  serve-http exposes one or more snapshots over a std-only HTTP/1.1 server:
  POST /v1/models/{name}/assign and /ingest take {\"point\":[..]} or
  {\"points\":[[..],..]} JSON bodies (name = the .dbm file stem); DELETE
  /v1/models/{name}/points takes the same shapes and removes tracked
  points (single-point bodies naming an untracked point answer a typed
  404); GET /v1/models/{name}/health, /metrics (Prometheus text), and
  /healthz round it out. --shards N splits each model over N engines with
  consistent point-to-shard hashing (a removal lands on the shard that
  ingested the point); --threads N sizes the connection worker pool.
  SIGINT/SIGTERM (or --max-requests N) drains in-flight requests, persists
  every shard dirtied by ingest next to its source snapshot, and dumps
  final metrics to --metrics-file.

  Every request gets a monotonically increasing id and a stage-timed trace
  (queue/parse/route/lock/engine/serialize/write); GET /debug/requests
  returns the flight recorder's recent window (--trace-capacity N traces,
  default 256) with errors and slow requests tail-sampled so they survive
  the ring wrapping. --slow-request-ms N marks requests at or over N ms
  slow: each one is retained and logged as a one-line `slow request`
  report with its stage breakdown.

OBSERVABILITY (cluster, fit, serve, ingest; instrumented algorithms:
dbsvec, dbsvec-min, dbscan, kd-dbscan, nq-dbscan):
  --profile           print a per-phase wall-clock + theta breakdown after the run
  --trace out.jsonl   stream every phase span and event as one JSON object per line

TELEMETRY (serve, ingest):
  --metrics-file PATH   dump serving metrics (counters, health gauges, and
                        assign/ingest latency p50/p95/p99) to PATH; the format
                        is Prometheus text exposition unless PATH ends in
                        .json, which selects JSON
  --metrics-interval N  re-dump the file every N processed points (0 = only at
                        the end), so a scraper sees progress mid-run
  metrics-report        validate and pretty-print such a dump

QUALITY MONITORING (serve, ingest):
  fit records a quality baseline into the snapshot: per-cluster occupancy,
  the assign-distance histogram, and the noise rate of the training data.
  --monitor             window live traffic into the same distributions and
                        score the drift (histogram EMD, occupancy shift,
                        noise-rate delta); alerts and window summaries land
                        in traces and in the metrics dump
  --monitor-window N    observations per tumbling window (default 512)
  --drift-threshold F   smoothed-score alert threshold in (0, 1]
                        (default 0.35); at or above it, a re-fit is
                        recommended regardless of staleness
  --refit-threshold F   staleness ratio that alone recommends a re-fit
                        (default 0.25)
  monitor-report        summarize the drift metrics in such a dump;
                        --expect-refit / --expect-fresh assert the verdict
                        via the exit status (CI gate)
";

/// Entry point shared by the binary and the tests: parses `tokens`
/// (without the program name) and runs the requested command, writing
/// human-readable output through `out`.
pub fn run(tokens: Vec<String>, out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let parsed = ParsedArgs::parse(tokens)?;
    if parsed.has_switch("help") {
        writeln!(out, "{USAGE}")?;
        return Ok(());
    }
    match parsed.command() {
        Some("cluster") => commands::cluster(&parsed, out),
        Some("compare") => commands::compare(&parsed, out),
        Some("generate") => commands::generate(&parsed, out),
        Some("suggest") => commands::suggest(&parsed, out),
        Some("fit") => commands::fit(&parsed, out),
        Some("serve") => commands::serve(&parsed, out),
        Some("serve-http") => commands::serve_http(&parsed, out),
        Some("ingest") => commands::ingest(&parsed, out),
        Some("metrics-report") => commands::metrics_report(&parsed, out),
        Some("monitor-report") => commands::monitor_report(&parsed, out),
        Some(other) => Err(CliError(format!("unknown command {other:?}\n\n{USAGE}"))),
        None => Err(CliError(format!("no command given\n\n{USAGE}"))),
    }
}
