//! The `dbsvec` command-line tool. All logic lives in `dbsvec_cli`.

fn main() {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = dbsvec_cli::run(tokens, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
