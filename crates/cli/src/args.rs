//! Minimal flag parser for the CLI (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, `--key value` flags, and `--switch`
/// booleans.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    command: Option<String>,
    values: HashMap<String, String>,
    switches: Vec<String>,
}

/// A parse failure with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses a token stream. The first non-flag token is the subcommand;
    /// `--key value` pairs populate `values`; a `--key` followed by another
    /// flag (or nothing) is a boolean switch.
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut out = ParsedArgs::default();
        let mut tokens = tokens.into_iter().peekable();
        while let Some(token) = tokens.next() {
            if let Some(key) = token.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError("bare `--` is not a valid flag".into()));
                }
                match tokens.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = tokens.next().expect("peeked");
                        if out.values.insert(key.to_string(), value).is_some() {
                            return Err(ArgError(format!("--{key} given twice")));
                        }
                    }
                    _ => out.switches.push(key.to_string()),
                }
            } else if out.command.is_none() {
                out.command = Some(token);
            } else {
                return Err(ArgError(format!(
                    "unexpected positional argument {token:?}"
                )));
            }
        }
        Ok(out)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| ArgError(format!("missing required flag --{key}")))
    }

    /// An optional string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| ArgError(format!("bad value for --{key}: {e}"))),
        }
    }

    /// An optional parsed flag.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ArgError>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|e| ArgError(format!("bad value for --{key}: {e}"))),
        }
    }

    /// Whether a boolean switch was given.
    pub fn has_switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Flags the caller never consumed (typo detection).
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.values.keys().chain(self.switches.iter()) {
            if !known.contains(&key.as_str()) {
                return Err(ArgError(format!("unknown flag --{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ParsedArgs, ArgError> {
        ParsedArgs::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_flags_and_switches() {
        let args = parse(&["cluster", "--eps", "1.5", "--svg", "out.svg", "--verbose"]).unwrap();
        assert_eq!(args.command(), Some("cluster"));
        assert_eq!(args.require("eps").unwrap(), "1.5");
        assert_eq!(args.get("svg"), Some("out.svg"));
        assert!(args.has_switch("verbose"));
        assert!(!args.has_switch("quiet"));
    }

    #[test]
    fn typed_access() {
        let args = parse(&["x", "--eps", "2.5", "--min-pts", "7"]).unwrap();
        assert_eq!(args.get_or("eps", 0.0f64).unwrap(), 2.5);
        assert_eq!(args.get_or("min-pts", 0usize).unwrap(), 7);
        assert_eq!(args.get_or("seed", 42u64).unwrap(), 42);
        assert_eq!(args.get_parsed::<f64>("nope").unwrap(), None);
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(parse(&["x", "--eps"]).unwrap().require("eps").is_err()); // switch, not value
        let err = parse(&["x", "--eps", "abc"])
            .unwrap()
            .get_or("eps", 0.0f64)
            .unwrap_err();
        assert!(err.0.contains("--eps"));
        let err = parse(&["x", "--a", "1", "--a", "2"]).unwrap_err();
        assert!(err.0.contains("twice"));
        let err = parse(&["x", "y"]).unwrap_err();
        assert!(err.0.contains("positional"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let args = parse(&["x", "--eps", "1.0", "--oops"]).unwrap();
        assert!(args.reject_unknown(&["eps"]).is_err());
        assert!(args.reject_unknown(&["eps", "oops"]).is_ok());
    }

    #[test]
    fn no_command() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.command(), None);
    }
}
