//! The four CLI subcommands.

use std::io::Write;
use std::path::Path;
use std::time::Instant;

use dbsvec_baselines::{
    Dbscan, DbscanLsh, FDbscan, Hdbscan, KMeans, NqDbscan, ParallelDbscan, RhoApproxDbscan,
};
use dbsvec_core::{Clustering, Dbsvec, DbsvecConfig};
use dbsvec_datasets::io::{read_csv, write_csv};
use dbsvec_datasets::plot::write_svg_scatter;
use dbsvec_datasets::standins::{default_min_pts, suggest_eps};
use dbsvec_datasets::{
    chameleon_t48k, chameleon_t710k, random_walk_clusters, spirals, two_moons, Dataset,
    RandomWalkConfig,
};
use dbsvec_geometry::PointSet;
use dbsvec_index::{k_distance_profile, knee_epsilon, KdTree};
use dbsvec_metrics::{adjusted_rand_index, recall};
use dbsvec_obs::{JsonlSink, NoopObserver, Observer, ProfileReport, RecordingObserver, Tee};

use crate::args::ParsedArgs;
use crate::CliError;

/// Loads points (labels in the file are ignored) and resolves (ε, MinPts):
/// explicit flags win; otherwise MinPts comes from the cardinality default
/// and ε from the k-distance knee.
fn load_with_params(
    args: &ParsedArgs,
    out: &mut dyn Write,
) -> Result<(PointSet, f64, usize), CliError> {
    let input = args.require("input")?;
    let (points, _) = read_csv(Path::new(input))?;
    if points.is_empty() {
        return Err(CliError(format!("{input}: no points")));
    }
    let min_pts = args.get_or("min-pts", default_min_pts(points.len()))?;
    let eps = match args.get_parsed::<f64>("eps")? {
        Some(e) if e > 0.0 => e,
        Some(e) => return Err(CliError(format!("--eps must be positive, got {e}"))),
        None => {
            let index = KdTree::build(&points);
            let profile = k_distance_profile(&points, &index, min_pts, 500);
            let eps = knee_epsilon(&profile).unwrap_or_else(|| suggest_eps(&points, min_pts, 1));
            writeln!(
                out,
                "derived eps = {eps:.6} from the {min_pts}-distance knee"
            )?;
            eps
        }
    };
    Ok((points, eps, min_pts))
}

fn print_summary(
    out: &mut dyn Write,
    name: &str,
    clustering: &Clustering,
    seconds: f64,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{name}: {} clusters, {} noise of {} points in {seconds:.3}s",
        clustering.num_clusters(),
        clustering.noise_count(),
        clustering.len()
    )?;
    Ok(())
}

/// `dbsvec cluster`.
pub fn cluster(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[
        "input",
        "algorithm",
        "eps",
        "min-pts",
        "output",
        "svg",
        "seed",
        "k",
        "min-cluster-size",
        "stats",
        "trace",
        "profile",
        "help",
    ])?;
    let (points, eps, min_pts) = load_with_params(args, out)?;
    let seed: u64 = args.get_or("seed", 20190401)?;
    let algorithm = args.get("algorithm").unwrap_or("dbsvec");

    // Observability: --profile records in memory, --trace streams JSONL;
    // both can be active at once (the Tee fans out). Only the algorithms
    // with observed entry points (dbsvec variants, dbscan family,
    // nq-dbscan) report into it.
    let profile = args.has_switch("profile");
    let mut sink = match args.get("trace") {
        Some(path) => Some(JsonlSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)
                .map_err(|e| CliError(format!("cannot create trace file {path}: {e}")))?,
        ))),
        None => None,
    };
    let observing = profile || sink.is_some();
    let observable = matches!(
        algorithm,
        "dbsvec" | "dbsvec-min" | "dbscan" | "kd-dbscan" | "nq-dbscan"
    );
    if observing && !observable {
        writeln!(
            out,
            "note: --trace/--profile are not instrumented for {algorithm}; running unobserved"
        )?;
    }
    let mut recorder = RecordingObserver::new();
    let mut noop = NoopObserver;
    let mut tee = Tee(&mut recorder, &mut sink);
    let obs: &mut dyn Observer = if observing { &mut tee } else { &mut noop };

    let start = Instant::now();
    let (clustering, stats_line) = match algorithm {
        "dbsvec" => {
            let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit_observed(&points, obs);
            let s = *result.stats();
            (
                result.into_labels(),
                Some(format!(
                    "range queries {} (theta {:.3}), SVDD trainings {}, support vectors {}",
                    s.range_queries,
                    s.theta(points.len()),
                    s.svdd_trainings,
                    s.support_vectors
                )),
            )
        }
        "dbsvec-min" => {
            let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts).minimal_nu())
                .fit_observed(&points, obs);
            let s = *result.stats();
            (
                result.into_labels(),
                Some(format!(
                    "range queries {} (theta {:.3})",
                    s.range_queries,
                    s.theta(points.len())
                )),
            )
        }
        "dbscan" => (
            Dbscan::new(eps, min_pts)
                .fit_observed(&points, obs)
                .clustering,
            None,
        ),
        "kd-dbscan" => {
            let index = KdTree::build(&points);
            (
                Dbscan::new(eps, min_pts)
                    .fit_with_index_observed(&points, &index, obs)
                    .clustering,
                None,
            )
        }
        "parallel-dbscan" => (
            ParallelDbscan::new(eps, min_pts, 0).fit(&points).clustering,
            None,
        ),
        "rho-approx" => (
            RhoApproxDbscan::new(eps, min_pts, 0.001)
                .fit(&points)
                .clustering,
            None,
        ),
        "dbscan-lsh" => (
            DbscanLsh::new(eps, min_pts, seed).fit(&points).clustering,
            None,
        ),
        "nq-dbscan" => (
            NqDbscan::new(eps, min_pts)
                .fit_observed(&points, obs)
                .clustering,
            None,
        ),
        "fdbscan" => (FDbscan::new(eps, min_pts).fit(&points).clustering, None),
        "kmeans" => {
            let k: usize = args.get_or("k", 8)?;
            (KMeans::new(k, seed).fit(&points).clustering, None)
        }
        "hdbscan" => {
            let mcs: usize = args.get_or("min-cluster-size", min_pts.max(5))?;
            let result = Hdbscan::new(min_pts, mcs).fit(&points);
            (
                result.clustering,
                Some(format!(
                    "condensed clusters {}, selected {}",
                    result.stats.condensed_clusters, result.stats.selected_clusters
                )),
            )
        }
        other => return Err(CliError(format!("unknown algorithm {other:?}"))),
    };
    let seconds = start.elapsed().as_secs_f64();

    writeln!(out, "parameters: eps = {eps:.6}, MinPts = {min_pts}")?;
    print_summary(out, algorithm, &clustering, seconds)?;
    if args.has_switch("stats") {
        if let Some(line) = stats_line {
            writeln!(out, "cost: {line}")?;
        }
    }
    if profile && observable {
        writeln!(out, "\nprofile:")?;
        writeln!(
            out,
            "{}",
            ProfileReport::from_recording(&recorder, points.len())
        )?;
    }
    if let Some(sink) = sink.take() {
        let path = args.get("trace").expect("sink implies --trace");
        sink.finish()
            .map_err(|e| CliError(format!("writing trace file {path}: {e}")))?;
        writeln!(out, "trace written to {path}")?;
    }

    if let Some(output) = args.get("output") {
        write_csv(Path::new(output), &points, Some(clustering.assignments()))?;
        writeln!(out, "labels written to {output}")?;
    }
    if let Some(svg) = args.get("svg") {
        if points.dims() == 2 {
            write_svg_scatter(Path::new(svg), &points, clustering.assignments(), 800)?;
            writeln!(out, "plot written to {svg}")?;
        } else {
            writeln!(out, "skipping --svg: data is {}-dimensional", points.dims())?;
        }
    }
    Ok(())
}

/// `dbsvec compare`.
pub fn compare(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["input", "eps", "min-pts", "seed", "help"])?;
    let (points, eps, min_pts) = load_with_params(args, out)?;

    let t0 = Instant::now();
    let dbscan = Dbscan::new(eps, min_pts).fit(&points);
    let dbscan_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let dbsvec = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&points);
    let dbsvec_secs = t1.elapsed().as_secs_f64();

    writeln!(out, "parameters: eps = {eps:.6}, MinPts = {min_pts}")?;
    print_summary(out, "DBSCAN", &dbscan.clustering, dbscan_secs)?;
    print_summary(out, "DBSVEC", dbsvec.labels(), dbsvec_secs)?;
    let r = recall(
        dbscan.clustering.assignments(),
        dbsvec.labels().assignments(),
    );
    let ari = adjusted_rand_index(
        dbscan.clustering.assignments(),
        dbsvec.labels().assignments(),
    );
    writeln!(
        out,
        "agreement: recall = {r:.4}, ARI = {ari:.4}; queries {} vs {}; speedup {:.2}x",
        dbsvec.stats().range_queries,
        dbscan.stats.range_queries,
        dbscan_secs / dbsvec_secs.max(1e-9)
    )?;
    Ok(())
}

/// `dbsvec generate`.
pub fn generate(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["dataset", "n", "dims", "seed", "output", "help"])?;
    let name = args.require("dataset")?;
    let output = args.require("output")?.to_string();
    let seed: u64 = args.get_or("seed", 20190401)?;
    let n: usize = args.get_or("n", 8000)?;
    let dims: usize = args.get_or("dims", 2)?;

    let dataset: Dataset = match name {
        "t48k" => chameleon_t48k(seed),
        "t710k" => chameleon_t710k(seed),
        "moons" => two_moons(n, 0.05, seed),
        "spirals" => spirals(n, 3, 1.25, 0.015, seed),
        "walk" => random_walk_clusters(&RandomWalkConfig::paper_default(n, dims), seed),
        other => return Err(CliError(format!("unknown dataset {other:?}"))),
    };
    write_csv(Path::new(&output), &dataset.points, Some(&dataset.truth))?;
    writeln!(
        out,
        "wrote {} points ({}-d, {} ground-truth clusters) to {output}",
        dataset.len(),
        dataset.dims(),
        dataset.truth_clusters()
    )?;
    Ok(())
}

/// `dbsvec suggest`.
pub fn suggest(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["input", "min-pts", "help"])?;
    let input = args.require("input")?;
    let (points, _) = read_csv(Path::new(input))?;
    if points.is_empty() {
        return Err(CliError(format!("{input}: no points")));
    }
    let min_pts = args.get_or("min-pts", default_min_pts(points.len()))?;
    let index = KdTree::build(&points);
    let profile = k_distance_profile(&points, &index, min_pts, 500);
    let knee = knee_epsilon(&profile);
    writeln!(
        out,
        "n = {}, d = {}, MinPts = {min_pts}",
        points.len(),
        points.dims()
    )?;
    match knee {
        Some(eps) => writeln!(out, "suggested eps = {eps:.6} (k-distance knee)")?,
        None => writeln!(out, "profile too short for a knee; try a larger sample")?,
    }
    let fallback = suggest_eps(&points, min_pts, 1);
    writeln!(out, "median-based fallback eps = {fallback:.6}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbsvec-cli-test-{}-{name}", std::process::id()));
        p
    }

    fn run_ok(tokens: &[&str]) -> String {
        let mut out = Vec::new();
        run(tokens.iter().map(|s| s.to_string()).collect(), &mut out)
            .unwrap_or_else(|e| panic!("command {tokens:?} failed: {e}"));
        String::from_utf8(out).unwrap()
    }

    fn run_err(tokens: &[&str]) -> String {
        let mut out = Vec::new();
        run(tokens.iter().map(|s| s.to_string()).collect(), &mut out)
            .expect_err("command should fail")
            .0
    }

    #[test]
    fn generate_then_cluster_then_compare_round_trip() {
        let data = tempfile("roundtrip.csv");
        let labels = tempfile("roundtrip-labels.csv");
        let data_s = data.to_str().unwrap();
        let labels_s = labels.to_str().unwrap();

        let text = run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "600",
            "--output",
            data_s,
        ]);
        assert!(text.contains("600 points"));

        let text = run_ok(&[
            "cluster",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--output",
            labels_s,
            "--stats",
        ]);
        assert!(text.contains("dbsvec:"), "missing summary in {text}");
        assert!(text.contains("cost:"));

        let (points, read_labels) = read_csv(&labels).unwrap();
        assert_eq!(points.len(), 600);
        assert!(read_labels.is_some());

        let text = run_ok(&[
            "compare",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
        ]);
        assert!(text.contains("agreement: recall = 1.0000"), "got: {text}");

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&labels).ok();
    }

    #[test]
    fn every_algorithm_name_is_accepted() {
        let data = tempfile("algos.csv");
        let data_s = data.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "200",
            "--output",
            data_s,
        ]);
        for algo in [
            "dbsvec",
            "dbsvec-min",
            "dbscan",
            "kd-dbscan",
            "parallel-dbscan",
            "rho-approx",
            "dbscan-lsh",
            "nq-dbscan",
            "fdbscan",
            "kmeans",
            "hdbscan",
        ] {
            let text = run_ok(&[
                "cluster",
                "--input",
                data_s,
                "--algorithm",
                algo,
                "--eps",
                "0.2",
                "--min-pts",
                "4",
            ]);
            assert!(text.contains(algo), "{algo} summary missing: {text}");
        }
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn profile_and_trace_outputs() {
        let data = tempfile("obs.csv");
        let trace = tempfile("obs.jsonl");
        let data_s = data.to_str().unwrap();
        let trace_s = trace.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);

        let text = run_ok(&[
            "cluster",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--profile",
            "--trace",
            trace_s,
        ]);
        assert!(text.contains("profile:"), "missing profile table: {text}");
        for phase in ["init", "sv_expand", "svdd_train", "merge", "noise_verify"] {
            assert!(text.contains(phase), "missing {phase} row: {text}");
        }
        assert!(text.contains("theta = "), "missing theta line: {text}");
        assert!(
            text.contains("trace written to"),
            "missing trace note: {text}"
        );

        // Every trace line parses, and the replayed counters are sane.
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let counts = dbsvec_obs::ReplayCounts::from_jsonl(&trace_text).unwrap();
        assert!(counts.range_queries > 0);
        assert!(counts.seeds > 0);

        // Un-instrumented algorithms degrade gracefully.
        let text = run_ok(&[
            "cluster",
            "--input",
            data_s,
            "--algorithm",
            "kmeans",
            "--eps",
            "0.15",
            "--profile",
        ]);
        assert!(text.contains("running unobserved"), "got: {text}");

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn eps_is_derived_when_omitted() {
        let data = tempfile("derive.csv");
        let data_s = data.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);
        let text = run_ok(&["cluster", "--input", data_s, "--min-pts", "5"]);
        assert!(text.contains("derived eps"), "got: {text}");
        let text = run_ok(&["suggest", "--input", data_s, "--min-pts", "5"]);
        assert!(text.contains("suggested eps"));
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn svg_output_for_2d_data() {
        let data = tempfile("svg.csv");
        let svg = tempfile("svg.svg");
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "300",
            "--output",
            data.to_str().unwrap(),
        ]);
        run_ok(&[
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--eps",
            "0.2",
            "--min-pts",
            "4",
            "--svg",
            svg.to_str().unwrap(),
        ]);
        let content = std::fs::read_to_string(&svg).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&svg).ok();
    }

    #[test]
    fn helpful_errors() {
        assert!(run_err(&[]).contains("USAGE"));
        assert!(run_err(&["frobnicate"]).contains("unknown command"));
        assert!(run_err(&["cluster"]).contains("--input"));
        assert!(
            run_err(&["cluster", "--input", "/nonexistent-file.csv"]).contains("No such file")
                || run_err(&["cluster", "--input", "/nonexistent-file.csv"]).contains("(os error")
        );
        let data = tempfile("badalgo.csv");
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "100",
            "--output",
            data.to_str().unwrap(),
        ]);
        assert!(run_err(&[
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--algorithm",
            "magic",
            "--eps",
            "0.2",
        ])
        .contains("unknown algorithm"));
        assert!(
            run_err(&["generate", "--dataset", "nope", "--output", "/tmp/x.csv"])
                .contains("unknown dataset")
        );
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn help_prints_usage() {
        let text = run_ok(&["--help"]);
        assert!(text.contains("USAGE"));
    }
}
