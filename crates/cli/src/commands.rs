//! The CLI subcommands.

use std::io::Write;
use std::path::Path;
use std::time::Instant;

use dbsvec_baselines::{
    Dbscan, DbscanLsh, FDbscan, Hdbscan, KMeans, NqDbscan, ParallelDbscan, RhoApproxDbscan,
};
use dbsvec_core::sample::sample_candidates;
use dbsvec_core::{
    Clustering, Dbsvec, DbsvecConfig, SamplingConfig, SamplingMode, DEFAULT_SAMPLING_SEED,
};
use dbsvec_datasets::io::{read_csv, write_csv};
use dbsvec_datasets::plot::write_svg_scatter;
use dbsvec_datasets::standins::{default_min_pts, suggest_eps};
use dbsvec_datasets::{
    chameleon_t48k, chameleon_t710k, random_walk_clusters, spirals, two_moons, Dataset,
    RandomWalkConfig,
};
use dbsvec_engine::{
    snapshot, Assignment, Engine, EngineConfig, EngineMetrics, ModelArtifact, MonitorConfig,
    QualityMonitor, RemoveOutcome, SampledMode, SamplingInfo,
};
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::{k_distance_profile, k_distance_profile_for_ids, knee_epsilon, KdTree};
use dbsvec_metrics::{adjusted_rand_index, recall};
use dbsvec_obs::telemetry::{parse_prometheus, render_json, render_prometheus};
use dbsvec_obs::{
    Event, Json, JsonlSink, NoopObserver, Observer, Phase, ProfileReport, RecordingObserver,
    Registry, Tee,
};
use dbsvec_server::{Router, Server, ServerConfig, ShutdownFlag};

use crate::args::ParsedArgs;
use crate::CliError;

/// The JSONL trace sink opened by `--trace out.jsonl`.
type TraceSink = JsonlSink<std::io::BufWriter<std::fs::File>>;

/// Opens the `--trace` sink if the flag is present.
fn open_trace(args: &ParsedArgs) -> Result<Option<TraceSink>, CliError> {
    match args.get("trace") {
        Some(path) => Ok(Some(JsonlSink::new(std::io::BufWriter::new(
            std::fs::File::create(path)
                .map_err(|e| CliError(format!("cannot create trace file {path}: {e}")))?,
        )))),
        None => Ok(None),
    }
}

/// Flushes and closes the `--trace` sink, reporting where it went.
fn finish_trace(
    args: &ParsedArgs,
    sink: Option<TraceSink>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if let Some(sink) = sink {
        let path = args.get("trace").expect("sink implies --trace");
        sink.finish()
            .map_err(|e| CliError(format!("writing trace file {path}: {e}")))?;
        writeln!(out, "trace written to {path}")?;
    }
    Ok(())
}

/// Writes a registry dump to `path`: JSON when the extension is `.json`,
/// Prometheus text exposition format otherwise.
fn write_metrics_file(path: &str, reg: &Registry) -> Result<(), CliError> {
    let text = if path.ends_with(".json") {
        format!("{}\n", render_json(reg))
    } else {
        render_prometheus(reg)
    };
    std::fs::write(path, text)
        .map_err(|e| CliError(format!("cannot write metrics file {path}: {e}")))
}

/// Resolves `--metrics-file` / `--metrics-interval` into an optional
/// telemetry sink: `(metrics, path, interval)`.
fn open_metrics(
    args: &ParsedArgs,
) -> Result<(Option<EngineMetrics>, Option<String>, usize), CliError> {
    let path = args.get("metrics-file").map(str::to_string);
    let interval: usize = args.get_or("metrics-interval", 0)?;
    if path.is_none() && interval > 0 {
        return Err(CliError(
            "--metrics-interval requires --metrics-file".to_string(),
        ));
    }
    let metrics = path.as_ref().map(|_| EngineMetrics::new());
    Ok((metrics, path, interval))
}

/// Final refresh + dump + note, shared by `serve` and `ingest`. When a
/// quality monitor ran, its drift gauges land in the dump too.
fn finish_metrics(
    metrics: &mut Option<EngineMetrics>,
    path: Option<&str>,
    engine: &Engine,
    monitor: Option<&QualityMonitor>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    if let (Some(m), Some(path)) = (metrics.as_mut(), path) {
        match monitor {
            Some(mon) => m.refresh_with_monitor(engine, mon),
            None => m.refresh(engine),
        }
        write_metrics_file(path, m.registry())?;
        writeln!(out, "metrics written to {path}")?;
    }
    Ok(())
}

/// Resolves `--refit-threshold` into an engine configuration.
fn engine_config(args: &ParsedArgs) -> Result<EngineConfig, CliError> {
    match args.get_parsed::<f64>("refit-threshold")? {
        None => Ok(EngineConfig::default()),
        Some(t) if t.is_finite() && t > 0.0 => Ok(EngineConfig::default().with_refit_threshold(t)),
        Some(t) => Err(CliError(format!(
            "--refit-threshold must be a positive number, got {t}"
        ))),
    }
}

/// Resolves `--monitor` / `--monitor-window` / `--drift-threshold` into an
/// optional monitor configuration, validating before the panicking
/// builders see the values.
fn monitor_options(args: &ParsedArgs) -> Result<Option<MonitorConfig>, CliError> {
    let window: Option<usize> = args.get_parsed("monitor-window")?;
    let threshold: Option<f64> = args.get_parsed("drift-threshold")?;
    if !args.has_switch("monitor") {
        if window.is_some() || threshold.is_some() {
            return Err(CliError(
                "--monitor-window/--drift-threshold require --monitor".to_string(),
            ));
        }
        return Ok(None);
    }
    let mut config = MonitorConfig::new();
    if let Some(w) = window {
        if w == 0 {
            return Err(CliError("--monitor-window must be positive".to_string()));
        }
        config = config.with_window(w);
    }
    if let Some(t) = threshold {
        if !(t.is_finite() && t > 0.0 && t <= 1.0) {
            return Err(CliError(format!(
                "--drift-threshold must be in (0, 1], got {t}"
            )));
        }
        config = config.with_drift_threshold(t);
    }
    Ok(Some(config))
}

/// Prints the monitor's verdict and the combined refit recommendation
/// after a monitored serve/ingest run.
fn print_drift_summary(monitor: &QualityMonitor, out: &mut dyn Write) -> Result<(), CliError> {
    if !monitor.has_baseline() {
        writeln!(
            out,
            "drift: model has no fit-time quality baseline (snapshot predates it); \
             staleness is the only refit signal"
        )?;
    }
    match monitor.signals() {
        Some(s) => writeln!(
            out,
            "drift: {} windows, {} alerts; score {:.3} (smoothed {:.3}), dominant signal {}",
            monitor.windows_completed(),
            monitor.alerts(),
            s.score,
            s.smoothed_score,
            s.dominant()
        )?,
        None => writeln!(
            out,
            "drift: {} windows completed, none scored yet \
             (window {} larger than the traffic seen?)",
            monitor.windows_completed(),
            monitor.config().window
        )?,
    }
    Ok(())
}

/// The refit recommendation line: staleness and (when monitored) drift,
/// each against its own threshold.
fn print_recommendation(
    engine: &Engine,
    monitor: Option<&QualityMonitor>,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let stale = engine.refit_recommended();
    let drifted = monitor.is_some_and(QualityMonitor::drift_exceeded);
    if stale || drifted {
        let why = match (stale, drifted) {
            (true, true) => format!(
                "staleness above {:.0}% and drift above {:.2}",
                engine.config().refit_threshold * 100.0,
                monitor.expect("drifted").config().drift_threshold
            ),
            (true, false) => format!(
                "staleness above {:.0}%",
                engine.config().refit_threshold * 100.0
            ),
            _ => format!(
                "smoothed drift score at or above {:.2}",
                monitor.expect("drifted").config().drift_threshold
            ),
        };
        writeln!(out, "recommendation: re-fit from scratch ({why})")?;
    } else {
        writeln!(out, "recommendation: model is still fresh")?;
    }
    Ok(())
}

/// Resolves `--sample-rate` / `--sample-kcenter` / `--sample-seed` into a
/// sampling configuration (`Exact` when neither mode flag is present),
/// validating before the panicking core builders see the values.
fn sampling_options(args: &ParsedArgs) -> Result<SamplingConfig, CliError> {
    let rate: Option<f64> = args.get_parsed("sample-rate")?;
    let m: Option<usize> = args.get_parsed("sample-kcenter")?;
    let seed: u64 = args.get_or("sample-seed", DEFAULT_SAMPLING_SEED)?;
    let mode = match (rate, m) {
        (Some(_), Some(_)) => {
            return Err(CliError(
                "--sample-rate and --sample-kcenter are mutually exclusive".to_string(),
            ))
        }
        (Some(r), None) => {
            if !(r.is_finite() && r > 0.0 && r <= 1.0) {
                return Err(CliError(format!(
                    "--sample-rate must be in (0, 1], got {r}"
                )));
            }
            SamplingMode::Uniform { rate: r }
        }
        (None, Some(m)) => {
            if m == 0 {
                return Err(CliError("--sample-kcenter must be at least 1".to_string()));
            }
            SamplingMode::KCenter { m }
        }
        (None, None) => {
            if args.get("sample-seed").is_some() {
                return Err(CliError(
                    "--sample-seed requires --sample-rate or --sample-kcenter".to_string(),
                ));
            }
            SamplingMode::Exact
        }
    };
    Ok(SamplingConfig { mode, seed })
}

/// Loads points (labels in the file are ignored) and resolves (ε, MinPts):
/// explicit flags win; otherwise MinPts comes from the cardinality default
/// and ε from the k-distance knee.
fn load_with_params(
    args: &ParsedArgs,
    out: &mut dyn Write,
) -> Result<(PointSet, f64, usize), CliError> {
    load_with_params_sampled(args, &SamplingConfig::default(), out)
}

/// [`load_with_params`] for a (possibly) sampled fit: when ε must be
/// derived and a subsample is drawn, the k-distance sweep profiles the
/// drawn candidates instead of a stride over all n — the fit only seeds
/// from candidates, so the knee should reflect their density landscape
/// (and the profiling cost stays proportional to the subsample). At rate
/// 1.0 the draw collapses to full coverage and the classic sweep runs
/// unchanged, so the derived ε matches the exact fit's exactly.
fn load_with_params_sampled(
    args: &ParsedArgs,
    sampling: &SamplingConfig,
    out: &mut dyn Write,
) -> Result<(PointSet, f64, usize), CliError> {
    let input = args.require("input")?;
    let (points, _) = read_csv(Path::new(input))?;
    if points.is_empty() {
        return Err(CliError(format!("{input}: no points")));
    }
    let min_pts = args.get_or("min-pts", default_min_pts(points.len()))?;
    let eps = match args.get_parsed::<f64>("eps")? {
        Some(e) if e > 0.0 => e,
        Some(e) => return Err(CliError(format!("--eps must be positive, got {e}"))),
        None => {
            let index = KdTree::build(&points);
            let profile = match sample_candidates(&points, sampling) {
                Some(ids) => {
                    let stride = (ids.len() / 500).max(1);
                    let probes: Vec<PointId> = ids.iter().copied().step_by(stride).collect();
                    k_distance_profile_for_ids(&points, &index, min_pts, &probes, 1)
                }
                None => k_distance_profile(&points, &index, min_pts, 500),
            };
            let eps = knee_epsilon(&profile).unwrap_or_else(|| suggest_eps(&points, min_pts, 1));
            writeln!(
                out,
                "derived eps = {eps:.6} from the {min_pts}-distance knee"
            )?;
            eps
        }
    };
    Ok((points, eps, min_pts))
}

fn print_summary(
    out: &mut dyn Write,
    name: &str,
    clustering: &Clustering,
    seconds: f64,
) -> Result<(), CliError> {
    writeln!(
        out,
        "{name}: {} clusters, {} noise of {} points in {seconds:.3}s",
        clustering.num_clusters(),
        clustering.noise_count(),
        clustering.len()
    )?;
    Ok(())
}

/// `dbsvec cluster`.
pub fn cluster(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[
        "input",
        "algorithm",
        "eps",
        "min-pts",
        "output",
        "svg",
        "seed",
        "k",
        "min-cluster-size",
        "stats",
        "trace",
        "profile",
        "help",
    ])?;
    let (points, eps, min_pts) = load_with_params(args, out)?;
    let seed: u64 = args.get_or("seed", 20190401)?;
    let algorithm = args.get("algorithm").unwrap_or("dbsvec");

    // Observability: --profile records in memory, --trace streams JSONL;
    // both can be active at once (the Tee fans out). Only the algorithms
    // with observed entry points (dbsvec variants, dbscan family,
    // nq-dbscan) report into it.
    let profile = args.has_switch("profile");
    let mut sink = open_trace(args)?;
    let observing = profile || sink.is_some();
    let observable = matches!(
        algorithm,
        "dbsvec" | "dbsvec-min" | "dbscan" | "kd-dbscan" | "nq-dbscan"
    );
    if observing && !observable {
        writeln!(
            out,
            "note: --trace/--profile are not instrumented for {algorithm}; running unobserved"
        )?;
    }
    let mut recorder = RecordingObserver::new();
    let mut noop = NoopObserver;
    let mut tee = Tee(&mut recorder, &mut sink);
    let obs: &mut dyn Observer = if observing { &mut tee } else { &mut noop };

    let start = Instant::now();
    let (clustering, stats_line) = match algorithm {
        "dbsvec" => {
            let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit_observed(&points, obs);
            let s = *result.stats();
            (
                result.into_labels(),
                Some(format!(
                    "range queries {} (theta {:.3}), SVDD trainings {}, support vectors {}",
                    s.range_queries,
                    s.theta(points.len()),
                    s.svdd_trainings,
                    s.support_vectors
                )),
            )
        }
        "dbsvec-min" => {
            let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts).minimal_nu())
                .fit_observed(&points, obs);
            let s = *result.stats();
            (
                result.into_labels(),
                Some(format!(
                    "range queries {} (theta {:.3})",
                    s.range_queries,
                    s.theta(points.len())
                )),
            )
        }
        "dbscan" => (
            Dbscan::new(eps, min_pts)
                .fit_observed(&points, obs)
                .clustering,
            None,
        ),
        "kd-dbscan" => {
            let index = KdTree::build(&points);
            (
                Dbscan::new(eps, min_pts)
                    .fit_with_index_observed(&points, &index, obs)
                    .clustering,
                None,
            )
        }
        "parallel-dbscan" => (
            ParallelDbscan::new(eps, min_pts, 0).fit(&points).clustering,
            None,
        ),
        "rho-approx" => (
            RhoApproxDbscan::new(eps, min_pts, 0.001)
                .fit(&points)
                .clustering,
            None,
        ),
        "dbscan-lsh" => (
            DbscanLsh::new(eps, min_pts, seed).fit(&points).clustering,
            None,
        ),
        "nq-dbscan" => (
            NqDbscan::new(eps, min_pts)
                .fit_observed(&points, obs)
                .clustering,
            None,
        ),
        "fdbscan" => (FDbscan::new(eps, min_pts).fit(&points).clustering, None),
        "kmeans" => {
            let k: usize = args.get_or("k", 8)?;
            (KMeans::new(k, seed).fit(&points).clustering, None)
        }
        "hdbscan" => {
            let mcs: usize = args.get_or("min-cluster-size", min_pts.max(5))?;
            let result = Hdbscan::new(min_pts, mcs).fit(&points);
            (
                result.clustering,
                Some(format!(
                    "condensed clusters {}, selected {}",
                    result.stats.condensed_clusters, result.stats.selected_clusters
                )),
            )
        }
        other => return Err(CliError(format!("unknown algorithm {other:?}"))),
    };
    let seconds = start.elapsed().as_secs_f64();

    writeln!(out, "parameters: eps = {eps:.6}, MinPts = {min_pts}")?;
    print_summary(out, algorithm, &clustering, seconds)?;
    if args.has_switch("stats") {
        if let Some(line) = stats_line {
            writeln!(out, "cost: {line}")?;
        }
    }
    if profile && observable {
        writeln!(out, "\nprofile:")?;
        writeln!(
            out,
            "{}",
            ProfileReport::from_recording(&recorder, points.len())
        )?;
    }
    finish_trace(args, sink, out)?;

    if let Some(output) = args.get("output") {
        write_csv(Path::new(output), &points, Some(clustering.assignments()))?;
        writeln!(out, "labels written to {output}")?;
    }
    if let Some(svg) = args.get("svg") {
        if points.dims() == 2 {
            write_svg_scatter(Path::new(svg), &points, clustering.assignments(), 800)?;
            writeln!(out, "plot written to {svg}")?;
        } else {
            writeln!(out, "skipping --svg: data is {}-dimensional", points.dims())?;
        }
    }
    Ok(())
}

/// `dbsvec compare`.
pub fn compare(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["input", "eps", "min-pts", "seed", "help"])?;
    let (points, eps, min_pts) = load_with_params(args, out)?;

    let t0 = Instant::now();
    let dbscan = Dbscan::new(eps, min_pts).fit(&points);
    let dbscan_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let dbsvec = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&points);
    let dbsvec_secs = t1.elapsed().as_secs_f64();

    writeln!(out, "parameters: eps = {eps:.6}, MinPts = {min_pts}")?;
    print_summary(out, "DBSCAN", &dbscan.clustering, dbscan_secs)?;
    print_summary(out, "DBSVEC", dbsvec.labels(), dbsvec_secs)?;
    let r = recall(
        dbscan.clustering.assignments(),
        dbsvec.labels().assignments(),
    );
    let ari = adjusted_rand_index(
        dbscan.clustering.assignments(),
        dbsvec.labels().assignments(),
    );
    writeln!(
        out,
        "agreement: recall = {r:.4}, ARI = {ari:.4}; queries {} vs {}; speedup {:.2}x",
        dbsvec.stats().range_queries,
        dbscan.stats.range_queries,
        dbscan_secs / dbsvec_secs.max(1e-9)
    )?;
    Ok(())
}

/// `dbsvec generate`.
pub fn generate(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["dataset", "n", "dims", "seed", "output", "help"])?;
    let name = args.require("dataset")?;
    let output = args.require("output")?.to_string();
    let seed: u64 = args.get_or("seed", 20190401)?;
    let n: usize = args.get_or("n", 8000)?;
    let dims: usize = args.get_or("dims", 2)?;

    let dataset: Dataset = match name {
        "t48k" => chameleon_t48k(seed),
        "t710k" => chameleon_t710k(seed),
        "moons" => two_moons(n, 0.05, seed),
        "spirals" => spirals(n, 3, 1.25, 0.015, seed),
        "walk" => random_walk_clusters(&RandomWalkConfig::paper_default(n, dims), seed),
        other => return Err(CliError(format!("unknown dataset {other:?}"))),
    };
    write_csv(Path::new(&output), &dataset.points, Some(&dataset.truth))?;
    writeln!(
        out,
        "wrote {} points ({}-d, {} ground-truth clusters) to {output}",
        dataset.len(),
        dataset.dims(),
        dataset.truth_clusters()
    )?;
    Ok(())
}

/// `dbsvec suggest`.
pub fn suggest(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["input", "min-pts", "help"])?;
    let input = args.require("input")?;
    let (points, _) = read_csv(Path::new(input))?;
    if points.is_empty() {
        return Err(CliError(format!("{input}: no points")));
    }
    let min_pts = args.get_or("min-pts", default_min_pts(points.len()))?;
    let index = KdTree::build(&points);
    let profile = k_distance_profile(&points, &index, min_pts, 500);
    let knee = knee_epsilon(&profile);
    writeln!(
        out,
        "n = {}, d = {}, MinPts = {min_pts}",
        points.len(),
        points.dims()
    )?;
    match knee {
        Some(eps) => writeln!(out, "suggested eps = {eps:.6} (k-distance knee)")?,
        None => writeln!(out, "profile too short for a knee; try a larger sample")?,
    }
    let fallback = suggest_eps(&points, min_pts, 1);
    writeln!(out, "median-based fallback eps = {fallback:.6}")?;
    Ok(())
}

/// `dbsvec fit`: cluster with DBSVEC and persist the fitted model.
pub fn fit(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[
        "input",
        "eps",
        "min-pts",
        "save",
        "threads",
        "cold-start",
        "boundaries",
        "sample-rate",
        "sample-kcenter",
        "sample-seed",
        "stats",
        "trace",
        "profile",
        "help",
    ])?;
    let sampling = sampling_options(args)?;
    let (points, eps, min_pts) = load_with_params_sampled(args, &sampling, out)?;
    let save = args.require("save")?;
    let threads: usize = args.get_or("threads", 0)?;
    let cold_start = args.has_switch("cold-start");

    let profile = args.has_switch("profile");
    let mut sink = open_trace(args)?;
    let observing = profile || sink.is_some();
    let mut recorder = RecordingObserver::new();
    let mut noop = NoopObserver;
    let mut tee = Tee(&mut recorder, &mut sink);
    let obs: &mut dyn Observer = if observing { &mut tee } else { &mut noop };

    let start = Instant::now();
    let mut config = DbsvecConfig::new(eps, min_pts).with_threads(threads);
    config.sampling = sampling;
    if cold_start {
        config = config.cold_start();
    }
    let result = Dbsvec::new(config).fit_observed(&points, obs);
    let seconds = start.elapsed().as_secs_f64();
    let stats = *result.stats();

    let mut artifact = ModelArtifact::from_fit(
        &points,
        result.labels(),
        result.core_points(),
        eps,
        min_pts as u32,
    )
    .map_err(|e| CliError(format!("fit produced an unservable model: {e}")))?;
    if args.has_switch("boundaries") {
        artifact = artifact.with_boundaries(&points, result.labels());
    }
    // Always record the fit-time quality baseline: it is what `serve
    // --monitor` scores live traffic against, and costs one extra range
    // query per training point.
    artifact = artifact.with_quality(&points, result.labels());
    let sampling_info = match sampling.mode {
        SamplingMode::Exact => None,
        SamplingMode::Uniform { rate } => Some(SamplingInfo {
            mode: SampledMode::Uniform { rate },
            seed: sampling.seed,
            candidates: stats.sampled_candidates,
            total: points.len() as u64,
        }),
        SamplingMode::KCenter { m } => Some(SamplingInfo {
            mode: SampledMode::KCenter { m: m as u64 },
            seed: sampling.seed,
            candidates: stats.sampled_candidates,
            total: points.len() as u64,
        }),
    };
    if let Some(info) = sampling_info {
        artifact = artifact.with_sampling(info);
    }
    let bytes = snapshot::write_file(&artifact, Path::new(save))
        .map_err(|e| CliError(format!("cannot write model {save}: {e}")))?;
    obs.event(&Event::SnapshotWrite { bytes });

    writeln!(out, "parameters: eps = {eps:.6}, MinPts = {min_pts}")?;
    print_summary(out, "dbsvec", result.labels(), seconds)?;
    if let Some(info) = sampling_info {
        writeln!(
            out,
            "sampling: {}, attached {} of {} unsampled",
            info.describe(),
            stats.attached_points,
            stats.attachment_candidates
        )?;
    }
    let boundary_note = match &artifact.boundaries {
        Some(b) => format!(", {} SVDD boundaries", b.len()),
        None => String::new(),
    };
    writeln!(
        out,
        "model: {} core points, {} clusters{boundary_note}, quality baseline -> {save} ({bytes} bytes)",
        artifact.cores.len(),
        artifact.num_clusters,
    )?;
    if args.has_switch("stats") {
        writeln!(
            out,
            "cost: range queries {} (theta {:.3}), SVDD trainings {}, support vectors {}",
            stats.range_queries,
            stats.theta(points.len()),
            stats.svdd_trainings,
            stats.support_vectors
        )?;
    }
    if profile {
        writeln!(out, "\nprofile:")?;
        writeln!(
            out,
            "{}",
            ProfileReport::from_recording(&recorder, points.len())
        )?;
    }
    finish_trace(args, sink, out)?;
    Ok(())
}

/// `dbsvec serve`: load a persisted model and assign a batch of points.
pub fn serve(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[
        "model",
        "assign",
        "output",
        "threads",
        "profile",
        "trace",
        "metrics-file",
        "metrics-interval",
        "monitor",
        "monitor-window",
        "drift-threshold",
        "refit-threshold",
        "help",
    ])?;
    let model_path = args.require("model")?;
    let assign_path = args.require("assign")?;
    let threads: usize = args.get_or("threads", 1)?;
    let (mut metrics, metrics_path, metrics_interval) = open_metrics(args)?;
    let monitor_config = monitor_options(args)?;
    let config = engine_config(args)?;
    if monitor_config.is_some() && threads > 1 {
        return Err(CliError(
            "--monitor folds every assignment into one window stream and is \
             single-threaded; drop --threads"
                .to_string(),
        ));
    }

    let profile = args.has_switch("profile");
    let mut sink = open_trace(args)?;
    let observing = profile || sink.is_some();
    let mut recorder = RecordingObserver::new();
    let mut noop = NoopObserver;
    let mut tee = Tee(&mut recorder, &mut sink);
    let obs: &mut dyn Observer = if observing { &mut tee } else { &mut noop };

    let (artifact, bytes) = snapshot::read_file(Path::new(model_path))
        .map_err(|e| CliError(format!("cannot load model {model_path}: {e}")))?;
    obs.event(&Event::SnapshotLoad { bytes });
    if let Some(m) = metrics.as_mut() {
        m.inc_snapshot_load();
    }
    let mut engine = Engine::with_config(&artifact, config);
    let mut monitor = monitor_config.map(|c| engine.monitor(c));
    writeln!(
        out,
        "model: {}-d, {} core points, {} clusters, eps = {:.6}, MinPts = {} ({bytes} bytes)",
        engine.dims(),
        engine.core_count(),
        engine.num_clusters(),
        engine.eps(),
        engine.min_pts()
    )?;
    if let Some(s) = engine.sampling() {
        writeln!(out, "model sampling: {}", s.describe())?;
    }

    let (queries, _) = read_csv(Path::new(assign_path))?;
    if queries.is_empty() {
        return Err(CliError(format!("{assign_path}: no points")));
    }
    if queries.dims() != engine.dims() {
        return Err(CliError(format!(
            "{assign_path} is {}-dimensional but the model expects {}",
            queries.dims(),
            engine.dims()
        )));
    }

    obs.span_enter(Phase::Serve);
    let start = Instant::now();
    let assignments = if let Some(mon) = monitor.as_mut() {
        // Monitored path: every assignment folds into the tumbling window
        // (distances included), so windows complete — and drift alerts
        // fire — while the batch streams through.
        let mut assignments = Vec::with_capacity(queries.len());
        for (i, p) in queries.iter() {
            let t = Instant::now();
            let a = engine.assign_monitored(p, mon, obs);
            assignments.push(a);
            if let Some(m) = metrics.as_mut() {
                m.record_assign(t.elapsed());
                if metrics_interval > 0 && (i as usize + 1) % metrics_interval == 0 {
                    let path = metrics_path.as_deref().expect("metrics imply a path");
                    m.refresh_with_monitor(&engine, mon);
                    write_metrics_file(path, m.registry())?;
                }
            }
        }
        assignments
    } else {
        match metrics.as_mut() {
            None => engine.assign_batch_observed(&queries, threads, obs),
            Some(m) => {
                // Metered path: per-query latency lands in the registry, and
                // the dump is re-flushed every `--metrics-interval` queries so
                // a scraper watching the file sees progress mid-batch.
                let n = queries.len();
                let chunk = if metrics_interval == 0 {
                    n
                } else {
                    metrics_interval
                };
                let path = metrics_path.as_deref().expect("metrics imply a path");
                let mut assignments = Vec::with_capacity(n);
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    let mut part = PointSet::new(queries.dims());
                    for i in lo..hi {
                        part.push(queries.point(i as u32));
                    }
                    let res = engine.assign_batch_metered(&part, threads, m);
                    for a in &res {
                        obs.event(&Event::Assign {
                            hit: matches!(a, Assignment::Cluster(_)),
                        });
                    }
                    assignments.extend(res);
                    m.refresh(&engine);
                    write_metrics_file(path, m.registry())?;
                    lo = hi;
                }
                assignments
            }
        }
    };
    let seconds = start.elapsed().as_secs_f64();
    obs.span_exit(Phase::Serve);

    let hits = assignments
        .iter()
        .filter(|a| matches!(a, Assignment::Cluster(_)))
        .count();
    writeln!(
        out,
        "assigned {} points in {seconds:.3}s ({:.0} points/s, {threads} threads): {hits} clustered, {} noise",
        queries.len(),
        queries.len() as f64 / seconds.max(1e-9),
        queries.len() - hits
    )?;
    if let Some(mon) = monitor.as_ref() {
        print_drift_summary(mon, out)?;
        print_recommendation(&engine, Some(mon), out)?;
    }

    if let Some(output) = args.get("output") {
        let labels: Vec<Option<u32>> = assignments.iter().map(|a| a.cluster()).collect();
        write_csv(Path::new(output), &queries, Some(&labels))?;
        writeln!(out, "labels written to {output}")?;
    }
    if profile {
        writeln!(out, "\nprofile:")?;
        writeln!(
            out,
            "{}",
            ProfileReport::from_recording(&recorder, queries.len())
        )?;
    }
    finish_metrics(
        &mut metrics,
        metrics_path.as_deref(),
        &engine,
        monitor.as_ref(),
        out,
    )?;
    finish_trace(args, sink, out)?;
    Ok(())
}

/// `dbsvec serve-http`: expose one or more persisted models over the
/// zero-dependency HTTP/1.1 serving tier until SIGINT/SIGTERM (or
/// `--max-requests` for scripted runs), then drain, persist dirty
/// shards, and dump final metrics.
pub fn serve_http(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[
        "model",
        "addr",
        "shards",
        "threads",
        "max-requests",
        "slow-request-ms",
        "trace-capacity",
        "metrics-file",
        "trace",
        "monitor",
        "monitor-window",
        "drift-threshold",
        "help",
    ])?;
    let models = args.require("model")?;
    let addr = args.get("addr").unwrap_or("127.0.0.1:8080").to_string();
    let shards: usize = args.get_or("shards", 1)?;
    let threads: usize = args.get_or("threads", 1)?;
    let max_requests: Option<u64> = args.get_parsed("max-requests")?;
    let slow_request_ms: Option<u64> = args.get_parsed("slow-request-ms")?;
    let trace_capacity: usize = args.get_or("trace-capacity", 256)?;
    let metrics_path = args.get("metrics-file").map(str::to_string);
    let monitor_config = monitor_options(args)?;

    let paths: Vec<&str> = models
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if paths.is_empty() {
        return Err(CliError("--model needs at least one .dbm path".to_string()));
    }
    if monitor_config.is_some() && (paths.len() > 1 || shards > 1) {
        return Err(CliError(
            "--monitor aggregates drift gauges for exactly one model with --shards 1; \
             drop --monitor or serve a single unsharded model"
                .to_string(),
        ));
    }

    let mut router = Router::new();
    for path in &paths {
        router
            .load_model(Path::new(path), shards, monitor_config)
            .map_err(|e| CliError(format!("cannot load model {path}: {e}")))?;
    }
    for (i, m) in router.models().iter().enumerate() {
        if router.models()[..i].iter().any(|o| o.name() == m.name()) {
            return Err(CliError(format!(
                "duplicate model name {:?} — routing is by file stem, so stems must be unique",
                m.name()
            )));
        }
    }

    let mut sink = open_trace(args)?;
    let observing = sink.is_some();
    let mut recorder = RecordingObserver::new();
    let mut noop = NoopObserver;
    let mut tee = Tee(&mut recorder, &mut sink);
    let obs: &mut dyn Observer = if observing { &mut tee } else { &mut noop };

    let router = std::sync::Arc::new(router);
    let server = Server::bind(
        std::sync::Arc::clone(&router),
        ServerConfig {
            addr: addr.clone(),
            threads,
            max_requests,
            slow_request_ms,
            trace_capacity,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| CliError(format!("cannot bind {addr}: {e}")))?;
    let local = server.local_addr()?;
    for m in router.models() {
        writeln!(out, "model {}: {} shard(s)", m.name(), m.shard_count())?;
    }
    writeln!(
        out,
        "listening on {local} ({threads} thread(s)); endpoints: \
         POST /v1/models/{{name}}/assign, POST /v1/models/{{name}}/ingest, \
         DELETE /v1/models/{{name}}/points, GET /v1/models/{{name}}/health, \
         GET /metrics, GET /healthz, GET /debug/requests"
    )?;
    if let Some(ms) = slow_request_ms {
        writeln!(
            out,
            "slow-request threshold: {ms}ms (offenders logged and retained \
             in the {trace_capacity}-trace flight recorder)"
        )?;
    }
    out.flush()?;

    let shutdown = ShutdownFlag::new();
    shutdown.install_signal_handlers();
    let report = server
        .run_logged(&shutdown, obs, &mut *out)
        .map_err(|e| CliError(format!("serving on {local}: {e}")))?;

    writeln!(
        out,
        "shutdown: {} requests handled ({} errors)",
        report.requests, report.errors
    )?;
    for (path, bytes) in &report.persisted {
        writeln!(
            out,
            "persisted dirty shard -> {} ({bytes} bytes)",
            path.display()
        )?;
    }
    if let Some(path) = metrics_path.as_deref() {
        let metrics = router.aggregate_metrics();
        write_metrics_file(path, metrics.registry())?;
        writeln!(out, "metrics written to {path}")?;
    }
    finish_trace(args, sink, out)?;
    Ok(())
}

/// Parses a `--remove-ids` list (`3,5,10-20`) into sorted, deduplicated
/// row indices.
fn parse_id_list(spec: &str) -> Result<Vec<usize>, CliError> {
    let number = |s: &str| {
        s.trim()
            .parse::<usize>()
            .map_err(|_| CliError(format!("--remove-ids: {s:?} is not a row index")))
    };
    let mut ids = Vec::new();
    for part in spec.split(',') {
        match part.split_once('-') {
            Some((a, b)) => {
                let (a, b) = (number(a)?, number(b)?);
                if a > b {
                    return Err(CliError(format!("--remove-ids: backwards range {part:?}")));
                }
                ids.extend(a..=b);
            }
            None => ids.push(number(part)?),
        }
    }
    ids.sort_unstable();
    ids.dedup();
    Ok(ids)
}

/// `dbsvec ingest`: stream points into a persisted model and report drift.
pub fn ingest(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&[
        "model",
        "input",
        "save",
        "remove-ids",
        "trace",
        "metrics-file",
        "metrics-interval",
        "monitor",
        "monitor-window",
        "drift-threshold",
        "refit-threshold",
        "help",
    ])?;
    let model_path = args.require("model")?;
    let input = args.require("input")?;
    let (mut metrics, metrics_path, metrics_interval) = open_metrics(args)?;
    let monitor_config = monitor_options(args)?;
    let config = engine_config(args)?;

    let mut sink = open_trace(args)?;
    let observing = sink.is_some();
    let mut recorder = RecordingObserver::new();
    let mut noop = NoopObserver;
    let mut tee = Tee(&mut recorder, &mut sink);
    let obs: &mut dyn Observer = if observing { &mut tee } else { &mut noop };

    let (artifact, bytes) = snapshot::read_file(Path::new(model_path))
        .map_err(|e| CliError(format!("cannot load model {model_path}: {e}")))?;
    obs.event(&Event::SnapshotLoad { bytes });
    if let Some(m) = metrics.as_mut() {
        m.inc_snapshot_load();
    }
    let mut engine = Engine::with_config(&artifact, config);
    let mut monitor = monitor_config.map(|c| engine.monitor(c));

    let (points, _) = read_csv(Path::new(input))?;
    if points.is_empty() {
        return Err(CliError(format!("{input}: no points")));
    }
    if points.dims() != engine.dims() {
        return Err(CliError(format!(
            "{input} is {}-dimensional but the model expects {}",
            points.dims(),
            engine.dims()
        )));
    }
    let mut remove_row = vec![false; points.len()];
    if let Some(spec) = args.get("remove-ids") {
        for id in parse_id_list(spec)? {
            if id >= points.len() {
                return Err(CliError(format!(
                    "--remove-ids: row {id} out of range ({input} has {} rows)",
                    points.len()
                )));
            }
            remove_row[id] = true;
        }
    }

    obs.span_enter(Phase::Serve);
    let start = Instant::now();
    for (i, p) in points.iter() {
        let t = Instant::now();
        if remove_row[i as usize] {
            let outcome = engine.remove_observed(p, obs);
            if let Some(m) = metrics.as_mut() {
                m.record_remove(t.elapsed());
                if let RemoveOutcome::Removed { splits: 1.., .. } = outcome {
                    m.record_split(t.elapsed());
                }
            }
        } else {
            match monitor.as_mut() {
                Some(mon) => {
                    engine.ingest_monitored(p, mon, obs);
                }
                None => {
                    engine.ingest_observed(p, obs);
                }
            }
            if let Some(m) = metrics.as_mut() {
                m.record_ingest(t.elapsed());
            }
        }
        if let Some(m) = metrics.as_mut() {
            if metrics_interval > 0 && (i as usize + 1) % metrics_interval == 0 {
                let path = metrics_path.as_deref().expect("metrics imply a path");
                match monitor.as_ref() {
                    Some(mon) => m.refresh_with_monitor(&engine, mon),
                    None => m.refresh(&engine),
                }
                write_metrics_file(path, m.registry())?;
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    obs.span_exit(Phase::Serve);

    let s = *engine.stats();
    writeln!(
        out,
        "ingested {} points in {seconds:.3}s: {} duplicates, {} promoted to core \
         ({} new clusters, {} merges), {} still buffered",
        points.len(),
        s.duplicates,
        s.promotions,
        s.new_clusters,
        s.merges,
        engine.buffered_count()
    )?;
    if s.removals + s.remove_misses + s.demotions + s.splits > 0 {
        writeln!(
            out,
            "removed {} points ({} not tracked): {} cores demoted, {} cluster splits",
            s.removals, s.remove_misses, s.demotions, s.splits
        )?;
    }
    writeln!(
        out,
        "model drift: {} -> {} cores, {} -> {} clusters, staleness {:.1}%",
        artifact.cores.len(),
        engine.core_count(),
        artifact.num_clusters,
        engine.num_clusters(),
        engine.staleness() * 100.0
    )?;
    if let Some(mon) = monitor.as_ref() {
        print_drift_summary(mon, out)?;
    }
    print_recommendation(&engine, monitor.as_ref(), out)?;

    if let Some(save) = args.get("save") {
        let snap = engine.snapshot();
        let bytes = snapshot::write_file(&snap, Path::new(save))
            .map_err(|e| CliError(format!("cannot write model {save}: {e}")))?;
        obs.event(&Event::SnapshotWrite { bytes });
        if let Some(m) = metrics.as_mut() {
            m.inc_snapshot_write();
        }
        writeln!(out, "updated model written to {save} ({bytes} bytes)")?;
    }
    finish_metrics(
        &mut metrics,
        metrics_path.as_deref(),
        &engine,
        monitor.as_ref(),
        out,
    )?;
    finish_trace(args, sink, out)?;
    Ok(())
}

/// `dbsvec metrics-report`: render a metrics dump human-readably.
///
/// Accepts either format `--metrics-file` emits: a Prometheus text dump
/// (validated by the same parser the golden tests use) or a JSON dump.
pub fn metrics_report(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["input", "help"])?;
    let path = args.require("input")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read metrics dump {path}: {e}")))?;
    if path.ends_with(".json") {
        let v = dbsvec_obs::json::parse(&text)
            .map_err(|e| CliError(format!("{path}: invalid JSON: {e}")))?;
        for section in ["counters", "gauges"] {
            if let Some(Json::Obj(pairs)) = v.get(section) {
                if pairs.is_empty() {
                    continue;
                }
                writeln!(out, "{section}:")?;
                for (name, value) in pairs {
                    writeln!(out, "  {name:<36} {value}")?;
                }
            }
        }
        if let Some(Json::Obj(pairs)) = v.get("histograms") {
            if !pairs.is_empty() {
                writeln!(out, "histograms:")?;
            }
            let field = |h: &Json, k: &str| h.get(k).cloned().unwrap_or(Json::Null);
            for (name, h) in pairs {
                writeln!(
                    out,
                    "  {name:<36} count={} p50={} p95={} p99={}",
                    field(h, "count"),
                    field(h, "p50"),
                    field(h, "p95"),
                    field(h, "p99"),
                )?;
            }
        }
    } else {
        let samples = parse_prometheus(&text).map_err(|e| CliError(format!("{path}: {e}")))?;
        writeln!(out, "{} samples in {path}", samples.len())?;
        for s in &samples {
            let labels = if s.labels.is_empty() {
                String::new()
            } else {
                let pairs: Vec<String> =
                    s.labels.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
                format!("{{{}}}", pairs.join(","))
            };
            writeln!(out, "  {}{labels} = {}", s.name, s.value)?;
        }
    }
    Ok(())
}

/// Numeric value of a JSON scalar, if it is one.
fn json_num(v: &Json) -> Option<f64> {
    match v {
        Json::Int(i) => Some(*i as f64),
        Json::UInt(u) => Some(*u as f64),
        Json::Num(f) => Some(*f),
        _ => None,
    }
}

/// `dbsvec monitor-report`: summarize the drift metrics in a metrics dump
/// and optionally assert the refit verdict (for CI gates).
///
/// Reads the same Prometheus-text or JSON dumps `--metrics-file` writes,
/// extracts the quality/drift series published by `serve --monitor` /
/// `ingest --monitor`, and renders a verdict. `--expect-refit` /
/// `--expect-fresh` turn the verdict into an exit status.
pub fn monitor_report(args: &ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    args.reject_unknown(&["input", "expect-refit", "expect-fresh", "help"])?;
    let path = args.require("input")?;
    if args.has_switch("expect-refit") && args.has_switch("expect-fresh") {
        return Err(CliError(
            "--expect-refit and --expect-fresh are mutually exclusive".to_string(),
        ));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read metrics dump {path}: {e}")))?;

    // Flatten either dump format into (name, value) pairs.
    let values: Vec<(String, f64)> = if path.ends_with(".json") {
        let v = dbsvec_obs::json::parse(&text)
            .map_err(|e| CliError(format!("{path}: invalid JSON: {e}")))?;
        let mut pairs = Vec::new();
        for section in ["counters", "gauges"] {
            if let Some(Json::Obj(entries)) = v.get(section) {
                for (name, value) in entries {
                    if let Some(x) = json_num(value) {
                        pairs.push((name.clone(), x));
                    }
                }
            }
        }
        pairs
    } else {
        parse_prometheus(&text)
            .map_err(|e| CliError(format!("{path}: {e}")))?
            .into_iter()
            .filter(|s| s.labels.is_empty())
            .map(|s| (s.name, s.value))
            .collect()
    };
    let get = |name: &str| values.iter().find(|(n, _)| n == name).map(|(_, v)| *v);

    let windows = get("dbsvec_quality_windows_total").ok_or_else(|| {
        CliError(format!(
            "{path}: no quality metrics found; the dump must come from \
             `serve --monitor` or `ingest --monitor` with --metrics-file"
        ))
    })?;
    let alerts = get("dbsvec_drift_alerts_total").unwrap_or(0.0);
    let baseline = get("dbsvec_quality_baseline_present").unwrap_or(0.0) >= 0.5;
    let yes_no = |b: bool| if b { "yes" } else { "no" };

    writeln!(out, "monitor report for {path}:")?;
    writeln!(out, "  quality windows     {windows:>10}")?;
    writeln!(out, "  drift alerts        {alerts:>10}")?;
    writeln!(out, "  baseline present    {:>10}", yes_no(baseline))?;
    for (label, name) in [
        ("drift score", "dbsvec_drift_score"),
        ("smoothed score", "dbsvec_drift_score_smoothed"),
        ("hist distance", "dbsvec_drift_hist_distance"),
        ("occupancy shift", "dbsvec_drift_occupancy_shift"),
        ("noise delta", "dbsvec_drift_noise_delta"),
        ("window noise rate", "dbsvec_noise_rate_window"),
        ("staleness", "dbsvec_staleness_ratio"),
    ] {
        if let Some(v) = get(name) {
            writeln!(out, "  {label:<19} {v:>10.4}")?;
        }
    }
    let mut occupancy: Vec<(usize, f64)> = values
        .iter()
        .filter_map(|(n, v)| {
            n.strip_prefix("dbsvec_cluster_occupancy_c")
                .and_then(|c| c.parse().ok())
                .map(|c| (c, *v))
        })
        .collect();
    if !occupancy.is_empty() {
        occupancy.sort_by_key(|&(c, _)| c);
        let shares: Vec<String> = occupancy
            .iter()
            .map(|(c, v)| format!("c{c}={v:.3}"))
            .collect();
        writeln!(out, "  window occupancy    {}", shares.join(" "))?;
    }

    let refit = get("dbsvec_refit_recommended")
        .map(|v| v >= 0.5)
        .ok_or_else(|| CliError(format!("{path}: dbsvec_refit_recommended gauge missing")))?;
    writeln!(out, "  refit recommended   {:>10}", yes_no(refit))?;

    if args.has_switch("expect-refit") && !refit {
        return Err(CliError(format!(
            "{path}: expected a refit recommendation, but the model looks fresh"
        )));
    }
    if args.has_switch("expect-fresh") && refit {
        return Err(CliError(format!(
            "{path}: expected a fresh model, but a refit is recommended"
        )));
    }
    if args.has_switch("expect-refit") || args.has_switch("expect-fresh") {
        writeln!(out, "expectation met")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dbsvec-cli-test-{}-{name}", std::process::id()));
        p
    }

    fn run_ok(tokens: &[&str]) -> String {
        let mut out = Vec::new();
        run(tokens.iter().map(|s| s.to_string()).collect(), &mut out)
            .unwrap_or_else(|e| panic!("command {tokens:?} failed: {e}"));
        String::from_utf8(out).unwrap()
    }

    fn run_err(tokens: &[&str]) -> String {
        let mut out = Vec::new();
        run(tokens.iter().map(|s| s.to_string()).collect(), &mut out)
            .expect_err("command should fail")
            .0
    }

    #[test]
    fn generate_then_cluster_then_compare_round_trip() {
        let data = tempfile("roundtrip.csv");
        let labels = tempfile("roundtrip-labels.csv");
        let data_s = data.to_str().unwrap();
        let labels_s = labels.to_str().unwrap();

        let text = run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "600",
            "--output",
            data_s,
        ]);
        assert!(text.contains("600 points"));

        let text = run_ok(&[
            "cluster",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--output",
            labels_s,
            "--stats",
        ]);
        assert!(text.contains("dbsvec:"), "missing summary in {text}");
        assert!(text.contains("cost:"));

        let (points, read_labels) = read_csv(&labels).unwrap();
        assert_eq!(points.len(), 600);
        assert!(read_labels.is_some());

        let text = run_ok(&[
            "compare",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
        ]);
        assert!(text.contains("agreement: recall = 1.0000"), "got: {text}");

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&labels).ok();
    }

    #[test]
    fn every_algorithm_name_is_accepted() {
        let data = tempfile("algos.csv");
        let data_s = data.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "200",
            "--output",
            data_s,
        ]);
        for algo in [
            "dbsvec",
            "dbsvec-min",
            "dbscan",
            "kd-dbscan",
            "parallel-dbscan",
            "rho-approx",
            "dbscan-lsh",
            "nq-dbscan",
            "fdbscan",
            "kmeans",
            "hdbscan",
        ] {
            let text = run_ok(&[
                "cluster",
                "--input",
                data_s,
                "--algorithm",
                algo,
                "--eps",
                "0.2",
                "--min-pts",
                "4",
            ]);
            assert!(text.contains(algo), "{algo} summary missing: {text}");
        }
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn profile_and_trace_outputs() {
        let data = tempfile("obs.csv");
        let trace = tempfile("obs.jsonl");
        let data_s = data.to_str().unwrap();
        let trace_s = trace.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);

        let text = run_ok(&[
            "cluster",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--profile",
            "--trace",
            trace_s,
        ]);
        assert!(text.contains("profile:"), "missing profile table: {text}");
        for phase in ["init", "sv_expand", "svdd_train", "merge", "noise_verify"] {
            assert!(text.contains(phase), "missing {phase} row: {text}");
        }
        assert!(text.contains("theta = "), "missing theta line: {text}");
        assert!(
            text.contains("trace written to"),
            "missing trace note: {text}"
        );

        // Every trace line parses, and the replayed counters are sane.
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let counts = dbsvec_obs::ReplayCounts::from_jsonl(&trace_text).unwrap();
        assert!(counts.range_queries > 0);
        assert!(counts.seeds > 0);

        // Un-instrumented algorithms degrade gracefully.
        let text = run_ok(&[
            "cluster",
            "--input",
            data_s,
            "--algorithm",
            "kmeans",
            "--eps",
            "0.15",
            "--profile",
        ]);
        assert!(text.contains("running unobserved"), "got: {text}");

        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn eps_is_derived_when_omitted() {
        let data = tempfile("derive.csv");
        let data_s = data.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);
        let text = run_ok(&["cluster", "--input", data_s, "--min-pts", "5"]);
        assert!(text.contains("derived eps"), "got: {text}");
        let text = run_ok(&["suggest", "--input", data_s, "--min-pts", "5"]);
        assert!(text.contains("suggested eps"));
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn svg_output_for_2d_data() {
        let data = tempfile("svg.csv");
        let svg = tempfile("svg.svg");
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "300",
            "--output",
            data.to_str().unwrap(),
        ]);
        run_ok(&[
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--eps",
            "0.2",
            "--min-pts",
            "4",
            "--svg",
            svg.to_str().unwrap(),
        ]);
        let content = std::fs::read_to_string(&svg).unwrap();
        assert!(content.contains("</svg>"));
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&svg).ok();
    }

    #[test]
    fn helpful_errors() {
        assert!(run_err(&[]).contains("USAGE"));
        assert!(run_err(&["frobnicate"]).contains("unknown command"));
        assert!(run_err(&["cluster"]).contains("--input"));
        assert!(
            run_err(&["cluster", "--input", "/nonexistent-file.csv"]).contains("No such file")
                || run_err(&["cluster", "--input", "/nonexistent-file.csv"]).contains("(os error")
        );
        let data = tempfile("badalgo.csv");
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "100",
            "--output",
            data.to_str().unwrap(),
        ]);
        assert!(run_err(&[
            "cluster",
            "--input",
            data.to_str().unwrap(),
            "--algorithm",
            "magic",
            "--eps",
            "0.2",
        ])
        .contains("unknown algorithm"));
        assert!(
            run_err(&["generate", "--dataset", "nope", "--output", "/tmp/x.csv"])
                .contains("unknown dataset")
        );
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn help_prints_usage() {
        let text = run_ok(&["--help"]);
        assert!(text.contains("USAGE"));
        assert!(text.contains("serve"), "serving commands documented");
        assert!(text.contains("--cold-start"), "solver switch documented");
    }

    #[test]
    fn cold_start_fit_matches_the_default_fit() {
        let data = tempfile("coldstart.csv");
        let warm_model = tempfile("coldstart-warm.dbm");
        let cold_model = tempfile("coldstart-cold.dbm");
        let data_s = data.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);
        let common = [
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--stats",
        ];
        let mut warm_args = vec!["fit"];
        warm_args.extend_from_slice(&common);
        warm_args.extend_from_slice(&["--save", warm_model.to_str().unwrap()]);
        let warm_text = run_ok(&warm_args);
        let mut cold_args = vec!["fit"];
        cold_args.extend_from_slice(&common);
        cold_args.extend_from_slice(&["--save", cold_model.to_str().unwrap(), "--cold-start"]);
        let cold_text = run_ok(&cold_args);
        // Same clusters either way; only the solver path differs.
        let model_line = |t: &str| {
            t.lines()
                .find(|l| l.starts_with("model:"))
                .map(str::to_string)
                .unwrap()
        };
        let (warm_line, cold_line) = (model_line(&warm_text), model_line(&cold_text));
        let strip_path = |l: &str| l.split(" -> ").next().unwrap().to_string();
        assert_eq!(strip_path(&warm_line), strip_path(&cold_line));
        for f in [&data, &warm_model, &cold_model] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn fit_then_serve_reproduces_training_labels() {
        let data = tempfile("serve.csv");
        let model = tempfile("serve.dbm");
        let fit_labels = tempfile("serve-fit-labels.csv");
        let served_labels = tempfile("serve-labels.csv");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();

        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "600",
            "--output",
            data_s,
        ]);
        let common = ["--input", data_s, "--eps", "0.15", "--min-pts", "5"];

        // The fit's own labels, via the cluster command.
        let mut cluster_args = vec!["cluster"];
        cluster_args.extend_from_slice(&common);
        cluster_args.extend_from_slice(&["--output", fit_labels.to_str().unwrap()]);
        run_ok(&cluster_args);

        let mut fit_args = vec!["fit"];
        fit_args.extend_from_slice(&common);
        fit_args.extend_from_slice(&["--save", model_s, "--stats"]);
        let text = run_ok(&fit_args);
        assert!(text.contains("model:"), "missing model line: {text}");
        assert!(text.contains("cost:"), "missing stats line: {text}");

        let text = run_ok(&[
            "serve",
            "--model",
            model_s,
            "--assign",
            data_s,
            "--threads",
            "2",
            "--output",
            served_labels.to_str().unwrap(),
        ]);
        assert!(text.contains("assigned 600 points"), "got: {text}");

        // Served labels must reproduce the fit, modulo border tie-breaks.
        let (_, fitted) = read_csv(&fit_labels).unwrap();
        let (_, served) = read_csv(&served_labels).unwrap();
        let (fitted, served) = (fitted.unwrap(), served.unwrap());
        assert_eq!(fitted.len(), served.len());
        let noise = |l: &[Option<u32>]| l.iter().filter(|x| x.is_none()).count();
        assert_eq!(noise(&fitted), noise(&served), "noise sets must match");
        let agree = fitted.iter().zip(&served).filter(|(a, b)| a == b).count();
        assert!(
            agree as f64 >= 0.999 * fitted.len() as f64,
            "only {agree}/{} labels agree",
            fitted.len()
        );

        for f in [&data, &model, &fit_labels, &served_labels] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn sampled_fit_prints_provenance_and_serves() {
        let data = tempfile("sampled-fit.csv");
        let model = tempfile("sampled-fit.dbm");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "600",
            "--output",
            data_s,
        ]);
        let text = run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
            "--sample-rate",
            "0.5",
            "--sample-seed",
            "7",
        ]);
        assert!(
            text.contains("sampling: uniform rate 0.5 (seed 7)"),
            "missing sampling line: {text}"
        );
        assert!(
            text.contains("attached"),
            "missing attachment counts: {text}"
        );

        // The persisted provenance comes back out of the snapshot.
        let text = run_ok(&["serve", "--model", model_s, "--assign", data_s]);
        assert!(
            text.contains("model sampling: uniform rate 0.5 (seed 7)"),
            "missing provenance on load: {text}"
        );

        // k-center mode and the rate-1.0 full-coverage collapse.
        let text = run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
            "--sample-kcenter",
            "150",
        ]);
        assert!(
            text.contains("sampling: k-center m 150"),
            "missing k-center line: {text}"
        );
        let text = run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
            "--sample-rate",
            "1.0",
        ]);
        assert!(
            text.contains("sampling: uniform rate 1") && text.contains("full coverage"),
            "rate 1.0 must report full coverage: {text}"
        );

        for f in [&data, &model] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn sampling_flags_are_validated() {
        let data = tempfile("sampled-validate.csv");
        let data_s = data.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "100",
            "--output",
            data_s,
        ]);
        let base = [
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            "/dev/null",
        ];
        let with = |extra: &[&str]| {
            let mut v: Vec<&str> = base.to_vec();
            v.extend_from_slice(extra);
            run_err(&v)
        };
        assert!(with(&["--sample-rate", "0.5", "--sample-kcenter", "10"])
            .contains("mutually exclusive"));
        assert!(with(&["--sample-rate", "0.0"]).contains("must be in (0, 1]"));
        assert!(with(&["--sample-rate", "1.5"]).contains("must be in (0, 1]"));
        assert!(with(&["--sample-kcenter", "0"]).contains("at least 1"));
        assert!(with(&["--sample-seed", "9"]).contains("requires"));
        std::fs::remove_file(&data).ok();
    }

    #[test]
    fn serve_trace_and_profile_cover_the_serve_phase() {
        let data = tempfile("serve-obs.csv");
        let model = tempfile("serve-obs.dbm");
        let trace = tempfile("serve-obs.jsonl");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "300",
            "--output",
            data_s,
        ]);
        run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
        ]);

        let text = run_ok(&[
            "serve",
            "--model",
            model_s,
            "--assign",
            data_s,
            "--profile",
            "--trace",
            trace.to_str().unwrap(),
        ]);
        assert!(text.contains("profile:"), "missing profile: {text}");
        assert!(text.contains("trace written to"), "missing trace: {text}");

        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let counts = dbsvec_obs::ReplayCounts::from_jsonl(&trace_text).unwrap();
        assert_eq!(counts.assigns, 300);
        assert_eq!(counts.snapshot_loads, 1);

        for f in [&data, &model, &trace] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn ingest_reports_drift_and_saves_a_servable_model() {
        let data = tempfile("ingest.csv");
        let extra = tempfile("ingest-extra.csv");
        let model = tempfile("ingest.dbm");
        let updated = tempfile("ingest-updated.dbm");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);
        run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
        ]);
        // A fresh batch from the same distribution.
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "200",
            "--seed",
            "7",
            "--output",
            extra.to_str().unwrap(),
        ]);

        let text = run_ok(&[
            "ingest",
            "--model",
            model_s,
            "--input",
            extra.to_str().unwrap(),
            "--save",
            updated.to_str().unwrap(),
        ]);
        assert!(text.contains("ingested 200 points"), "got: {text}");
        assert!(text.contains("staleness"), "got: {text}");
        assert!(text.contains("recommendation:"), "got: {text}");
        assert!(text.contains("updated model written to"), "got: {text}");

        // The updated snapshot must itself be loadable and servable.
        let text = run_ok(&[
            "serve",
            "--model",
            updated.to_str().unwrap(),
            "--assign",
            data_s,
        ]);
        assert!(text.contains("assigned 400 points"), "got: {text}");

        for f in [&data, &extra, &model, &updated] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_metrics_file_is_valid_prometheus_with_latency_percentiles() {
        let data = tempfile("metrics.csv");
        let model = tempfile("metrics.dbm");
        let prom = tempfile("metrics.prom");
        let json = tempfile("metrics.json");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        let prom_s = prom.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);
        run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
        ]);

        let text = run_ok(&[
            "serve",
            "--model",
            model_s,
            "--assign",
            data_s,
            "--metrics-file",
            prom_s,
            "--metrics-interval",
            "150",
        ]);
        assert!(text.contains("metrics written to"), "got: {text}");

        // The dump is valid exposition format and carries the acceptance
        // metrics: assign-latency percentiles and the health gauges.
        let dump = std::fs::read_to_string(&prom).unwrap();
        for line in [
            "# TYPE dbsvec_assign_latency_seconds summary",
            "dbsvec_assign_latency_seconds{quantile=\"0.5\"}",
            "dbsvec_assign_latency_seconds{quantile=\"0.95\"}",
            "dbsvec_assign_latency_seconds{quantile=\"0.99\"}",
            "dbsvec_assign_latency_seconds_count 400",
            "dbsvec_assigns_total 400",
            "# TYPE dbsvec_staleness_ratio gauge",
            "dbsvec_tree_rebuilds_total 0",
            "dbsvec_snapshot_loads_total 1",
        ] {
            assert!(dump.contains(line), "missing {line:?} in:\n{dump}");
        }
        let samples = parse_prometheus(&dump).expect("dump must parse");
        let p95 = samples
            .iter()
            .find(|s| {
                s.name == "dbsvec_assign_latency_seconds" && s.label("quantile") == Some("0.95")
            })
            .expect("p95 sample");
        assert!(p95.value > 0.0 && p95.value < 1.0, "p95 = {}", p95.value);

        // metrics-report renders the same dump.
        let text = run_ok(&["metrics-report", "--input", prom_s]);
        assert!(text.contains("samples in"), "got: {text}");
        assert!(text.contains("dbsvec_assign_latency_seconds"), "{text}");

        // The .json extension selects the JSON rendering, which parses
        // with the shared parser and also round-trips through the report.
        run_ok(&[
            "serve",
            "--model",
            model_s,
            "--assign",
            data_s,
            "--metrics-file",
            json.to_str().unwrap(),
        ]);
        let jtext = std::fs::read_to_string(&json).unwrap();
        let v = dbsvec_obs::json::parse(&jtext).expect("valid JSON dump");
        assert!(v.get("histograms").is_some());
        let text = run_ok(&["metrics-report", "--input", json.to_str().unwrap()]);
        assert!(text.contains("histograms:"), "got: {text}");

        // --metrics-interval without --metrics-file is a user error.
        let err = run_err(&[
            "serve",
            "--model",
            model_s,
            "--assign",
            data_s,
            "--metrics-interval",
            "10",
        ]);
        assert!(err.contains("--metrics-file"), "got: {err}");

        for f in [&data, &model, &prom, &json] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn ingest_metrics_cover_latency_and_snapshot_io() {
        let data = tempfile("ingest-metrics.csv");
        let extra = tempfile("ingest-metrics-extra.csv");
        let model = tempfile("ingest-metrics.dbm");
        let updated = tempfile("ingest-metrics-updated.dbm");
        let prom = tempfile("ingest-metrics.prom");
        let data_s = data.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "300",
            "--output",
            data_s,
        ]);
        run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model.to_str().unwrap(),
        ]);
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "120",
            "--seed",
            "9",
            "--output",
            extra.to_str().unwrap(),
        ]);

        let text = run_ok(&[
            "ingest",
            "--model",
            model.to_str().unwrap(),
            "--input",
            extra.to_str().unwrap(),
            "--save",
            updated.to_str().unwrap(),
            "--metrics-file",
            prom.to_str().unwrap(),
            "--metrics-interval",
            "50",
        ]);
        assert!(text.contains("metrics written to"), "got: {text}");
        let dump = std::fs::read_to_string(&prom).unwrap();
        for line in [
            "dbsvec_ingests_total 120",
            "dbsvec_ingest_latency_seconds_count 120",
            "dbsvec_snapshot_loads_total 1",
            "dbsvec_snapshot_writes_total 1",
        ] {
            assert!(dump.contains(line), "missing {line:?} in:\n{dump}");
        }
        assert!(parse_prometheus(&dump).is_ok());

        for f in [&data, &extra, &model, &updated, &prom] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn fit_records_a_quality_baseline() {
        let data = tempfile("baseline.csv");
        let model = tempfile("baseline.dbm");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "300",
            "--output",
            data_s,
        ]);
        let text = run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
        ]);
        assert!(text.contains("quality baseline"), "got: {text}");
        let (artifact, _) = snapshot::read_file(&model).unwrap();
        let q = artifact.quality.expect("fit must persist a baseline");
        assert_eq!(q.total_points, 300);
        std::fs::remove_file(&data).ok();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn monitored_serve_separates_drifted_from_stationary_traffic() {
        let train = tempfile("drift-train.csv");
        let fresh = tempfile("drift-fresh.csv");
        let shifted = tempfile("drift-shifted.csv");
        let model = tempfile("drift.dbm");
        let fresh_prom = tempfile("drift-fresh.prom");
        let shifted_json = tempfile("drift-shifted.json");
        let trace = tempfile("drift.jsonl");
        let train_s = train.to_str().unwrap();
        let model_s = model.to_str().unwrap();

        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "600",
            "--output",
            train_s,
        ]);
        run_ok(&[
            "fit",
            "--input",
            train_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
        ]);
        // Stationary traffic: the same distribution, a different seed.
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "600",
            "--seed",
            "99",
            "--output",
            fresh.to_str().unwrap(),
        ]);
        // Drifted traffic: a different generator entirely.
        run_ok(&[
            "generate",
            "--dataset",
            "spirals",
            "--n",
            "600",
            "--output",
            shifted.to_str().unwrap(),
        ]);

        let text = run_ok(&[
            "serve",
            "--model",
            model_s,
            "--assign",
            fresh.to_str().unwrap(),
            "--monitor",
            "--monitor-window",
            "150",
            "--metrics-file",
            fresh_prom.to_str().unwrap(),
        ]);
        assert!(text.contains("drift:"), "missing drift summary: {text}");
        assert!(
            text.contains("model is still fresh"),
            "stationary traffic must not trigger a refit: {text}"
        );

        let text = run_ok(&[
            "serve",
            "--model",
            model_s,
            "--assign",
            shifted.to_str().unwrap(),
            "--monitor",
            "--monitor-window",
            "150",
            "--metrics-file",
            shifted_json.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]);
        assert!(
            text.contains("re-fit from scratch"),
            "drifted traffic must recommend a refit: {text}"
        );
        assert!(text.contains("alerts"), "got: {text}");

        // The drift events stream through the trace and replay cleanly.
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let counts = dbsvec_obs::ReplayCounts::from_jsonl(&trace_text).unwrap();
        assert_eq!(counts.quality_windows, 4, "600 / 150 windows");
        assert!(counts.drift_alerts > 0, "no alerts in {counts:?}");

        // The Prometheus dump carries the drift series...
        let dump = std::fs::read_to_string(&fresh_prom).unwrap();
        for name in [
            "dbsvec_drift_score_smoothed",
            "dbsvec_quality_windows_total 4",
            "dbsvec_quality_baseline_present 1",
            "dbsvec_noise_rate_window",
            "dbsvec_cluster_occupancy_c0",
        ] {
            assert!(dump.contains(name), "missing {name:?} in:\n{dump}");
        }

        // ...and monitor-report turns the verdict into an exit status.
        let fresh_s = fresh_prom.to_str().unwrap();
        let shifted_s = shifted_json.to_str().unwrap();
        let text = run_ok(&["monitor-report", "--input", fresh_s, "--expect-fresh"]);
        assert!(text.contains("refit recommended"), "{text}");
        assert!(text.contains("expectation met"), "{text}");
        let text = run_ok(&["monitor-report", "--input", shifted_s, "--expect-refit"]);
        assert!(text.contains("expectation met"), "{text}");
        assert!(text.contains("drift score"), "{text}");
        assert!(text.contains("window occupancy"), "{text}");
        let err = run_err(&["monitor-report", "--input", shifted_s, "--expect-fresh"]);
        assert!(err.contains("refit is recommended"), "got: {err}");
        let err = run_err(&["monitor-report", "--input", fresh_s, "--expect-refit"]);
        assert!(err.contains("looks fresh"), "got: {err}");

        for f in [
            &train,
            &fresh,
            &shifted,
            &model,
            &fresh_prom,
            &shifted_json,
            &trace,
        ] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn monitored_ingest_reports_drift_and_honors_refit_threshold() {
        let data = tempfile("mon-ingest.csv");
        let extra = tempfile("mon-ingest-extra.csv");
        let model = tempfile("mon-ingest.dbm");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);
        run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
        ]);
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "200",
            "--seed",
            "11",
            "--output",
            extra.to_str().unwrap(),
        ]);

        let text = run_ok(&[
            "ingest",
            "--model",
            model_s,
            "--input",
            extra.to_str().unwrap(),
            "--monitor",
            "--monitor-window",
            "50",
        ]);
        assert!(text.contains("drift:"), "missing drift summary: {text}");
        assert!(text.contains("recommendation:"), "got: {text}");

        // A configurable staleness threshold: low enough, any topology
        // change at all recommends a refit.
        let text = run_ok(&[
            "ingest",
            "--model",
            model_s,
            "--input",
            extra.to_str().unwrap(),
            "--refit-threshold",
            "0.0001",
        ]);
        assert!(
            text.contains("re-fit from scratch (staleness above 0%)"),
            "got: {text}"
        );

        for f in [&data, &extra, &model] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn monitor_flag_validation() {
        let data = tempfile("monflags.csv");
        let model = tempfile("monflags.dbm");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "150",
            "--output",
            data_s,
        ]);
        run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            model_s,
        ]);

        let base = ["serve", "--model", model_s, "--assign", data_s];
        let with = |extra: &[&'static str]| {
            let mut v = base.to_vec();
            v.extend_from_slice(extra);
            v
        };
        let err = run_err(&with(&["--monitor-window", "64"]));
        assert!(err.contains("require --monitor"), "got: {err}");
        let err = run_err(&with(&["--monitor", "--monitor-window", "0"]));
        assert!(err.contains("--monitor-window"), "got: {err}");
        let err = run_err(&with(&["--monitor", "--drift-threshold", "1.5"]));
        assert!(err.contains("(0, 1]"), "got: {err}");
        let err = run_err(&with(&["--refit-threshold", "-0.5"]));
        assert!(err.contains("--refit-threshold"), "got: {err}");
        let err = run_err(&with(&["--monitor", "--threads", "4"]));
        assert!(err.contains("single-threaded"), "got: {err}");
        let err = run_err(&[
            "monitor-report",
            "--input",
            "x.prom",
            "--expect-refit",
            "--expect-fresh",
        ]);
        assert!(err.contains("mutually exclusive"), "got: {err}");

        // A dump without the quality series is called out, not zero-filled.
        let foreign = tempfile("monflags-foreign.prom");
        std::fs::write(&foreign, "# TYPE up gauge\nup 1\n").unwrap();
        let err = run_err(&["monitor-report", "--input", foreign.to_str().unwrap()]);
        assert!(err.contains("no quality metrics"), "got: {err}");

        for f in [&data, &model, &foreign] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_rejects_non_model_files() {
        let data = tempfile("notamodel.csv");
        let data_s = data.to_str().unwrap();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "50",
            "--output",
            data_s,
        ]);
        let err = run_err(&["serve", "--model", data_s, "--assign", data_s]);
        assert!(err.contains("cannot load model"), "got: {err}");
        std::fs::remove_file(&data).ok();
    }

    /// A `Write` target shared with the thread running `serve-http`, so
    /// the test can scrape the "listening on" line for the ephemeral port.
    #[derive(Clone, Default)]
    struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap()).into_owned()
        }
    }

    fn http_request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
        use std::io::Read;
        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        conn.write_all(head.as_bytes()).unwrap();
        conn.write_all(body.as_bytes()).unwrap();
        let mut raw = String::new();
        conn.read_to_string(&mut raw).unwrap();
        let status: u16 = raw.split_whitespace().nth(1).unwrap().parse().unwrap();
        let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        (status, body.to_string())
    }

    #[test]
    fn serve_http_serves_and_stops_after_max_requests() {
        let data = tempfile("http.csv");
        let model = tempfile("http.dbm");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap().to_string();
        let name = model.file_stem().unwrap().to_str().unwrap().to_string();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);
        run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            &model_s,
        ]);

        let buf = SharedBuf::default();
        let mut out = buf.clone();
        let model_arg = model_s.clone();
        let handle = std::thread::spawn(move || {
            run(
                [
                    "serve-http",
                    "--model",
                    &model_arg,
                    "--addr",
                    "127.0.0.1:0",
                    "--shards",
                    "2",
                    "--threads",
                    "2",
                    "--max-requests",
                    "4",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                &mut out,
            )
        });
        let addr = loop {
            if let Some(line) = buf.text().lines().find(|l| l.starts_with("listening on ")) {
                break line["listening on ".len()..]
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let (status, body) = http_request(&addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains(&format!("\"{name}\"")), "got: {body}");
        let (status, body) = http_request(
            &addr,
            "POST",
            &format!("/v1/models/{name}/assign"),
            "{\"points\":[[0.5,0.2],[9.0,9.0]]}",
        );
        assert_eq!(status, 200, "assign body: {body}");
        assert!(body.contains("\"clusters\""), "got: {body}");
        let (status, _) = http_request(&addr, "GET", &format!("/v1/models/{name}/health"), "");
        assert_eq!(status, 200);
        let (status, text) = http_request(&addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(text.contains("dbsvec_http_requests_total"), "got: {text}");

        handle.join().unwrap().unwrap();
        let text = buf.text();
        assert!(text.contains("4 requests handled"), "got: {text}");
        for f in [&data, &model] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_http_flight_recorder_and_slow_logging() {
        let data = tempfile("http_fr.csv");
        let model = tempfile("http_fr.dbm");
        let data_s = data.to_str().unwrap();
        let model_s = model.to_str().unwrap().to_string();
        run_ok(&[
            "generate",
            "--dataset",
            "moons",
            "--n",
            "400",
            "--output",
            data_s,
        ]);
        run_ok(&[
            "fit",
            "--input",
            data_s,
            "--eps",
            "0.15",
            "--min-pts",
            "5",
            "--save",
            &model_s,
        ]);

        let buf = SharedBuf::default();
        let mut out = buf.clone();
        let model_arg = model_s.clone();
        let handle = std::thread::spawn(move || {
            run(
                [
                    "serve-http",
                    "--model",
                    &model_arg,
                    "--addr",
                    "127.0.0.1:0",
                    "--max-requests",
                    "3",
                    "--slow-request-ms",
                    "0",
                    "--trace-capacity",
                    "8",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                &mut out,
            )
        });
        let addr = loop {
            if let Some(line) = buf.text().lines().find(|l| l.starts_with("listening on ")) {
                break line["listening on ".len()..]
                    .split_whitespace()
                    .next()
                    .unwrap()
                    .to_string();
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        };

        let (status, _) = http_request(&addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let (status, body) = http_request(&addr, "GET", "/debug/requests", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"endpoint\":\"healthz\""), "got: {body}");
        assert!(body.contains("\"slow\":true"), "got: {body}");
        assert!(body.contains("\"slow_threshold_ms\":0"), "got: {body}");
        let (status, _) = http_request(&addr, "GET", "/nope", "");
        assert_eq!(status, 404);

        handle.join().unwrap().unwrap();
        let text = buf.text();
        assert!(text.contains("slow-request threshold: 0ms"), "got: {text}");
        assert!(text.contains("slow request #1 healthz"), "got: {text}");
        assert!(text.contains("queue="), "got: {text}");
        for f in [&data, &model] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_http_rejects_bad_flag_combinations() {
        let err = run_err(&["serve-http", "--model", "a.dbm,b.dbm", "--monitor"]);
        assert!(err.contains("--monitor"), "got: {err}");
        let err = run_err(&["serve-http", "--model", ""]);
        assert!(err.contains("at least one"), "got: {err}");
        let err = run_err(&["serve-http", "--model", "/nonexistent/x.dbm"]);
        assert!(err.contains("cannot load model"), "got: {err}");
    }
}
