//! A hand-rolled JSON value and writer.
//!
//! The workspace builds offline with zero external dependencies, so this
//! module provides the small JSON surface the observability layer and the
//! bench harness need: construct a [`Json`] tree, `Display` it. Numbers
//! follow RFC 8259 (non-finite floats serialize as `null`); strings are
//! escaped per the JSON grammar.

use std::fmt;

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer (covers `u64` counters beyond `i64::MAX`).
    UInt(u64),
    /// A float; NaN and infinities serialize as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Fetches `key` from an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Escapes `s` into `out` per the JSON string grammar (quotes included).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(i) => write!(f, "{i}"),
            Json::UInt(u) => write!(f, "{u}"),
            Json::Num(x) if x.is_finite() => {
                // Round-trippable and valid JSON: Rust's shortest repr,
                // with a decimal point forced so `1` stays a float `1.0`.
                let s = format!("{x}");
                if s.contains(['.', 'e', 'E']) {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(s, &mut buf);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A minimal validating JSON parser — enough to round-trip what [`Json`]
/// writes. Used by the golden tests (every JSONL line must parse) and by
/// the replay path; not a general-purpose parser (rejects some exotic but
/// legal inputs like `1e999`).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                expected as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| e.to_string())
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Json::Int(i))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|e| e.to_string())
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] but got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected , or }} but got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-5).to_string(), "-5");
        assert_eq!(Json::UInt(u64::MAX).to_string(), u64::MAX.to_string());
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(2.0).to_string(), "2.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").to_string(),
            r#""a\"b\\c\nd\u0001""#
        );
    }

    #[test]
    fn renders_nested_structures() {
        let v = Json::obj([
            ("name", Json::str("t4.8k")),
            ("theta", Json::Num(0.25)),
            ("sizes", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"t4.8k","theta":0.25,"sizes":[1,2]}"#
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj([
            ("a", Json::Num(1.25)),
            ("b", Json::Arr(vec![Json::Null, Json::Bool(false)])),
            ("c", Json::str("x\"y\\z\n")),
            ("d", Json::Int(-7)),
            ("e", Json::UInt(18_446_744_073_709_551_615)),
        ]);
        let parsed = parse(&v.to_string()).expect("round trip");
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn get_on_objects() {
        let v = Json::obj([("k", Json::Int(3))]);
        assert_eq!(v.get("k"), Some(&Json::Int(3)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }
}
