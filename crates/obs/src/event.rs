//! The observation vocabulary: phases and typed events.
//!
//! The variants mirror the paper's cost model exactly, so a recorded event
//! stream can be *replayed* into the same counters `DbsvecStats`
//! accumulates (see [`crate::replay`]). Point ids are bare `u32`s — the
//! same representation `dbsvec-geometry` uses for `PointId` — so this
//! crate depends on nothing.

/// One timed phase of a clustering run (or a serving session).
///
/// DBSVEC fitting emits the first five; plain DBSCAN-family baselines emit
/// only [`Phase::Init`] (their single scan loop). Spans nest: `SvExpand`
/// opens inside `Init`, and `SvddTrain` opens inside `SvExpand`. The
/// serving engine opens [`Phase::Serve`] around an assignment or ingest
/// session, so `--profile` tables cover serving like they cover fitting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The seed scan: iterate unclassified points, query, seed clusters.
    Init,
    /// One SVDD training (SMO solve) inside an expansion round.
    SvddTrain,
    /// Support-vector expansion of one sub-cluster (all its rounds).
    SvExpand,
    /// Finalization: union-find resolution and label compaction.
    Merge,
    /// The noise-verification pass over the potential-noise list.
    NoiseVerify,
    /// An online serving session (assignment and/or ingest) over a fitted
    /// model.
    Serve,
}

impl Phase {
    /// Every phase, in canonical display order.
    pub const ALL: [Phase; 6] = [
        Phase::Init,
        Phase::SvExpand,
        Phase::SvddTrain,
        Phase::Merge,
        Phase::NoiseVerify,
        Phase::Serve,
    ];

    /// Stable snake_case name (used in JSONL output and tables).
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Init => "init",
            Phase::SvddTrain => "svdd_train",
            Phase::SvExpand => "sv_expand",
            Phase::Merge => "merge",
            Phase::NoiseVerify => "noise_verify",
            Phase::Serve => "serve",
        }
    }
}

/// A typed observation emitted by an instrumented algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A new sub-cluster was seeded from a core point's neighborhood.
    Seed {
        /// The seed point.
        point: u32,
        /// Size of its materialized ε-neighborhood.
        neighborhood_len: usize,
    },
    /// One ε-range query (materializing or counting).
    RangeQuery {
        /// The query point.
        probe: u32,
        /// Number of neighbors found (the count, for counting queries).
        result_len: usize,
    },
    /// One SVDD training finished (fires once per expansion round).
    SmoSolve {
        /// Target-set size ñ the model was trained on.
        target_size: usize,
        /// SMO iterations to convergence.
        iterations: usize,
        /// Distance-row cache hits during the solve.
        cache_hits: u64,
        /// Distance-row cache misses during the solve.
        cache_misses: u64,
        /// Whether the solve was seeded from the previous round's α.
        warm_started: bool,
        /// `false` when the solve exhausted its iteration cap instead of
        /// reaching the KKT tolerance.
        converged: bool,
        /// Peak variables simultaneously dropped by active-set shrinking
        /// (divide by `target_size` for the shrunk fraction).
        shrunk: usize,
        /// Initial KKT violation in fixed-point microunits
        /// (`round(violation · 1e6)`); integers keep the event `Eq` and
        /// the replay exact.
        initial_kkt_violation_e6: u64,
    },
    /// One support-vector expansion round completed.
    ExpansionRound {
        /// Raw (pre-compaction) sub-cluster id being expanded.
        cluster: u32,
        /// 1-based round number within this sub-cluster's expansion.
        round: usize,
        /// Target-set size ñ at the start of the round.
        target_size: usize,
        /// Support vectors the round's SVDD model produced.
        n_sv: usize,
        /// Support vectors that passed the core test this round.
        n_core_sv: usize,
        /// SMO iterations the round's training spent.
        smo_iters: usize,
    },
    /// Two sub-clusters were united through an overlapping core point.
    Merge {
        /// Raw id of the cluster that was already labeled on the point.
        existing: u32,
        /// Raw id of the cluster being expanded into it.
        expanding: u32,
    },
    /// A potential-noise point was resolved.
    NoiseVerdict {
        /// The point in question.
        point: u32,
        /// `true` if confirmed noise, `false` if attached as a border point.
        confirmed: bool,
    },
    /// A sampled fit drew its core-candidate subsample (fires once, at the
    /// start of initialization; exact fits never emit it).
    Sample {
        /// Candidates drawn.
        candidates: usize,
        /// Points in the dataset.
        total: usize,
        /// Effective sampling rate `candidates / total` in fixed-point
        /// microunits (`round(rate · 1e6)`), keeping the event `Eq`.
        rate_e6: u64,
    },
    /// The attachment pass resolved one unsampled point: attached to the
    /// cluster of its nearest discovered core within ε, or confirmed noise.
    Attach {
        /// The point in question.
        point: u32,
        /// `true` if the point joined a cluster, `false` for noise.
        attached: bool,
    },
    /// The serving engine classified one observation.
    Assign {
        /// `true` if the point landed in a cluster, `false` for noise.
        hit: bool,
    },
    /// The serving engine absorbed one streamed observation.
    Ingest {
        /// `true` if the point entered the core set immediately.
        core: bool,
        /// `true` if the point duplicated an already-tracked observation
        /// (recorded for staleness but not re-counted for density).
        duplicate: bool,
    },
    /// A point became a core point online (at ingest, or promoted from the
    /// boundary buffer once its ε-neighborhood reached MinPts).
    Promote {
        /// Compact cluster id the new core landed in.
        cluster: u32,
    },
    /// The serving engine processed one removal request
    /// (`Engine::remove`).
    Remove {
        /// `true` if the removed point was a core point (`false`: a
        /// buffered observation, or a miss).
        core: bool,
        /// `false` when the point was not tracked (never ingested, or
        /// already removed) and nothing changed.
        found: bool,
    },
    /// A removal dropped a core point's tracked ε-neighborhood below
    /// MinPts; the core was demoted back to the boundary buffer.
    Demote {
        /// Compact cluster id the core belonged to when demoted.
        cluster: u32,
    },
    /// A removal or demotion disconnected a cluster's core graph; the
    /// cluster was split into its connected pieces.
    Split {
        /// Connected pieces the cluster broke into (always ≥ 2).
        pieces: u32,
    },
    /// A model snapshot was serialized.
    SnapshotWrite {
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// A model snapshot was deserialized.
    SnapshotLoad {
        /// Snapshot size in bytes.
        bytes: u64,
    },
    /// The quality monitor completed one tumbling window.
    ///
    /// Scores are fixed-point microunits (`round(score · 1e6)`), the same
    /// convention as [`Event::SmoSolve::initial_kkt_violation_e6`]:
    /// integers keep the event `Eq` and the replay exact.
    QualityWindow {
        /// 1-based ordinal of the completed window.
        window: u64,
        /// Observations the window folded in.
        samples: u64,
        /// Combined drift evidence score in microunits.
        drift_score_e6: u64,
        /// Assign-distance histogram drift in microunits.
        hist_distance_e6: u64,
        /// Per-cluster occupancy-share shift in microunits.
        occupancy_shift_e6: u64,
        /// Noise-rate delta against the baseline in microunits.
        noise_delta_e6: u64,
        /// `false` when the model carried no quality baseline and the
        /// scores above are zeros (staleness-only degraded mode).
        baseline: bool,
    },
    /// A completed window's smoothed drift score crossed the alert
    /// threshold.
    DriftAlert {
        /// 1-based ordinal of the window that tripped the alert.
        window: u64,
        /// Smoothed drift score in microunits.
        drift_score_e6: u64,
        /// The configured alert threshold in microunits.
        threshold_e6: u64,
    },
    /// The HTTP serving tier finished handling one request.
    HttpRequest {
        /// Stable endpoint slug: `assign`, `ingest`, `health`, `metrics`,
        /// `healthz`, `debug_requests`, or `error` for requests rejected
        /// before routing.
        endpoint: String,
        /// HTTP status code of the response.
        status: u16,
        /// Points carried by the request body (0 for bodyless endpoints).
        points: u64,
        /// Monotonically increasing id assigned when a worker picked the
        /// request up (1-based; unique within one server run).
        request_id: u64,
        /// End-to-end wall time in microseconds: accept-queue wait plus
        /// every stage from first request byte to last response byte.
        duration_us: u64,
        /// Where the time went, stage by stage.
        stages: HttpStages,
    },
}

/// Stage-attributed timing breakdown of one HTTP request, in microseconds.
///
/// Integers keep [`Event`] `Eq` and the jsonl round-trip exact. The stages
/// partition [`Event::HttpRequest::duration_us`] up to rounding: `queue_us`
/// plus the six handling stages is never more than a few microseconds away
/// from the total (each stage truncates independently).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct HttpStages {
    /// Accept-queue wait: accept() to worker pickup. Attributed to the
    /// first request of a connection; follow-up keep-alive requests
    /// report 0.
    pub queue_us: u64,
    /// Reading and parsing the request head + body off the socket
    /// (includes time spent waiting for the client to send).
    pub parse_us: u64,
    /// Routing and handler bookkeeping outside the shard locks.
    pub route_us: u64,
    /// Total time blocked acquiring per-shard locks.
    pub lock_us: u64,
    /// Engine compute under the shard locks (assign/ingest/health fold).
    pub engine_us: u64,
    /// Rendering the response body (JSON or metrics text).
    pub serialize_us: u64,
    /// Writing the framed response back to the socket.
    pub write_us: u64,
}

impl Event {
    /// Stable snake_case name of the variant (used in JSONL output).
    pub fn name(&self) -> &'static str {
        match self {
            Event::Seed { .. } => "seed",
            Event::RangeQuery { .. } => "range_query",
            Event::SmoSolve { .. } => "smo_solve",
            Event::ExpansionRound { .. } => "expansion_round",
            Event::Merge { .. } => "merge",
            Event::NoiseVerdict { .. } => "noise_verdict",
            Event::Sample { .. } => "sample",
            Event::Attach { .. } => "attach",
            Event::Assign { .. } => "assign",
            Event::Ingest { .. } => "ingest",
            Event::Promote { .. } => "promote",
            Event::Remove { .. } => "remove",
            Event::Demote { .. } => "demote",
            Event::Split { .. } => "split",
            Event::SnapshotWrite { .. } => "snapshot_write",
            Event::SnapshotLoad { .. } => "snapshot_load",
            Event::QualityWindow { .. } => "quality_window",
            Event::DriftAlert { .. } => "drift_alert",
            Event::HttpRequest { .. } => "http_request",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            [
                "init",
                "sv_expand",
                "svdd_train",
                "merge",
                "noise_verify",
                "serve"
            ]
        );
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(
            Event::RangeQuery {
                probe: 0,
                result_len: 0
            }
            .name(),
            "range_query"
        );
        assert_eq!(
            Event::NoiseVerdict {
                point: 1,
                confirmed: true
            }
            .name(),
            "noise_verdict"
        );
        assert_eq!(
            Event::Sample {
                candidates: 250,
                total: 1000,
                rate_e6: 250_000
            }
            .name(),
            "sample"
        );
        assert_eq!(
            Event::Attach {
                point: 4,
                attached: true
            }
            .name(),
            "attach"
        );
        assert_eq!(Event::Assign { hit: true }.name(), "assign");
        assert_eq!(
            Event::Ingest {
                core: false,
                duplicate: false
            }
            .name(),
            "ingest"
        );
        assert_eq!(Event::Promote { cluster: 2 }.name(), "promote");
        assert_eq!(
            Event::Remove {
                core: true,
                found: true
            }
            .name(),
            "remove"
        );
        assert_eq!(Event::Demote { cluster: 1 }.name(), "demote");
        assert_eq!(Event::Split { pieces: 2 }.name(), "split");
        assert_eq!(Event::SnapshotWrite { bytes: 64 }.name(), "snapshot_write");
        assert_eq!(Event::SnapshotLoad { bytes: 64 }.name(), "snapshot_load");
        assert_eq!(
            Event::QualityWindow {
                window: 1,
                samples: 256,
                drift_score_e6: 120_000,
                hist_distance_e6: 120_000,
                occupancy_shift_e6: 40_000,
                noise_delta_e6: 10_000,
                baseline: true,
            }
            .name(),
            "quality_window"
        );
        assert_eq!(
            Event::DriftAlert {
                window: 2,
                drift_score_e6: 700_000,
                threshold_e6: 350_000,
            }
            .name(),
            "drift_alert"
        );
        assert_eq!(
            Event::HttpRequest {
                endpoint: "assign".to_string(),
                status: 200,
                points: 16,
                request_id: 1,
                duration_us: 1_250,
                stages: HttpStages {
                    queue_us: 10,
                    parse_us: 200,
                    route_us: 5,
                    lock_us: 15,
                    engine_us: 900,
                    serialize_us: 40,
                    write_us: 80,
                },
            }
            .name(),
            "http_request"
        );
    }
}
