//! Model-quality drift math: distribution distances and smoothing.
//!
//! The serving engine compares a fit-time **baseline** distribution
//! against a tumbling window of live traffic and needs a score that is
//! `0` for identical distributions, symmetric, bounded in `[0, 1]`, and
//! monotone as the window drifts away from the baseline. Two distances
//! cover the signals the monitor tracks:
//!
//! * [`hist_drift`] — for *ordered* quantities (assign distances, SVDD
//!   margins) held in log-linear [`Histogram`]s. Raw per-bucket distances
//!   (total variation, KL) are brittle here: two narrow distributions
//!   offset by one bucket width look maximally different even though the
//!   shift is ~6%. Instead the buckets are first pooled into their octave
//!   groups (one group per power of two, matching the histogram's
//!   log-linear layout), then compared with a 1-Wasserstein
//!   (earth-mover) distance on the group masses. The result is the mean
//!   number of octaves a sample must move to turn one distribution into
//!   the other — robust to sub-octave jitter, linear in genuine shift —
//!   and is normalized so a displacement of
//!   [`DRIFT_SATURATION_OCTAVES`] octaves (16× in the underlying unit)
//!   saturates the score at 1.
//! * [`share_shift`] — for *categorical* quantities (per-cluster
//!   occupancy shares), where total variation distance is the natural
//!   choice: half the L1 distance between the share vectors, the
//!   probability mass that changed cluster.
//!
//! [`Ewma`] smooths per-window scores so a single odd window does not
//! flip an alert; the engine's `QualityMonitor` combines all three
//! signals into its refit evidence.

use crate::telemetry::hist::{Histogram, BUCKET_COUNT, SUB_BUCKETS};

/// Octave groups in a [`Histogram`]: one per power of two, plus the exact
/// `0..SUB_BUCKETS` range as group zero.
const GROUPS: usize = BUCKET_COUNT / SUB_BUCKETS as usize;

/// Octave displacement at which [`hist_drift`] saturates at `1.0`. Four
/// octaves means the typical sample moved by 16× — far past any
/// quantization noise, unambiguously a different distribution.
pub const DRIFT_SATURATION_OCTAVES: f64 = 4.0;

/// Pools bucket counts into per-octave probability masses.
fn octave_masses(h: &Histogram) -> Option<[f64; GROUPS]> {
    if h.is_empty() {
        return None;
    }
    let total = h.count() as f64;
    let mut masses = [0.0; GROUPS];
    for (index, count) in h.sparse_counts() {
        masses[index / SUB_BUCKETS as usize] += count as f64 / total;
    }
    Some(masses)
}

/// Drift score between two histograms of the same quantity, in `[0, 1]`.
///
/// Zero iff the distributions agree at octave granularity; `1.0` when one
/// side is empty and the other is not (maximal evidence of change), or
/// when the earth-mover displacement reaches
/// [`DRIFT_SATURATION_OCTAVES`]. Symmetric, and stable under
/// element-wise histogram merge: scoring a merged pair of worker-local
/// windows equals scoring the directly recorded window.
pub fn hist_drift(a: &Histogram, b: &Histogram) -> f64 {
    match (octave_masses(a), octave_masses(b)) {
        (None, None) => 0.0,
        (None, Some(_)) | (Some(_), None) => 1.0,
        (Some(p), Some(q)) => {
            // 1-Wasserstein on the line of octave groups: sum of absolute
            // CDF differences = mean octaves a unit of mass must travel.
            let mut cum = 0.0;
            let mut emd = 0.0;
            for g in 0..GROUPS - 1 {
                cum += p[g] - q[g];
                emd += cum.abs();
            }
            (emd / DRIFT_SATURATION_OCTAVES).min(1.0)
        }
    }
}

/// Total variation distance between two share vectors, in `[0, 1]`.
///
/// Shorter vectors are zero-padded, so a cluster present on only one
/// side contributes its full share. For probability vectors this is the
/// probability mass that moved between categories.
pub fn share_shift(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().max(b.len());
    let at = |v: &[f64], i: usize| v.get(i).copied().unwrap_or(0.0);
    let l1: f64 = (0..n).map(|i| (at(a, i) - at(b, i)).abs()).sum();
    (l1 / 2.0).min(1.0)
}

/// An exponentially weighted moving average of a scalar signal.
///
/// `value ← α·x + (1−α)·value`, seeded with the first observation. Larger
/// `alpha` reacts faster; the monitor's default weights recent windows
/// heavily while still damping one-window spikes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A fresh average with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Folds in one observation and returns the updated average.
    pub fn observe(&mut self, x: f64) -> f64 {
        let next = match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        };
        self.value = Some(next);
        next
    }

    /// The current average, `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for property-style sampling (no external
    /// crates, no wall clock).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn sampled(seed: u64, n: usize, lo: u64, hi: u64) -> Vec<u64> {
        let mut rng = Rng(seed | 1);
        (0..n).map(|_| lo + rng.next() % (hi - lo)).collect()
    }

    fn hist_of(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    #[test]
    fn identical_distributions_score_zero() {
        for seed in 1..20u64 {
            let samples = sampled(seed, 500, 100, 100_000);
            let (a, b) = (hist_of(&samples), hist_of(&samples));
            assert_eq!(hist_drift(&a, &b), 0.0, "seed {seed}");
        }
        assert_eq!(hist_drift(&Histogram::new(), &Histogram::new()), 0.0);
        assert_eq!(share_shift(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert_eq!(share_shift(&[], &[]), 0.0);
    }

    #[test]
    fn drift_is_symmetric() {
        for seed in 1..20u64 {
            let a = hist_of(&sampled(seed, 400, 50, 5_000));
            let b = hist_of(&sampled(seed + 100, 400, 500, 50_000));
            assert_eq!(hist_drift(&a, &b), hist_drift(&b, &a), "seed {seed}");
        }
        let (p, q) = ([0.7, 0.2, 0.1], [0.1, 0.1, 0.8]);
        assert_eq!(share_shift(&p, &q), share_shift(&q, &p));
    }

    #[test]
    fn drift_is_bounded_and_detects_empty_vs_nonempty() {
        let a = hist_of(&sampled(7, 300, 1, 1_000_000_000));
        assert_eq!(hist_drift(&a, &Histogram::new()), 1.0);
        assert_eq!(hist_drift(&Histogram::new(), &a), 1.0);
        for seed in 1..20u64 {
            let b = hist_of(&sampled(seed, 300, 1, u64::MAX / 2));
            let d = hist_drift(&a, &b);
            assert!((0.0..=1.0).contains(&d), "seed {seed}: {d}");
        }
        // All mass moving to a cluster absent on the other side is the
        // maximal categorical change.
        assert_eq!(share_shift(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
        assert_eq!(share_shift(&[1.0], &[]), 0.5);
    }

    #[test]
    fn drift_is_monotone_under_growing_shift() {
        // Scaling every sample by 2^k translates the distribution by
        // exactly k octave groups, so the score must be non-decreasing in
        // k and reach saturation once k passes DRIFT_SATURATION_OCTAVES.
        for seed in 1..10u64 {
            let base = sampled(seed, 600, 64, 4_096);
            let reference = hist_of(&base);
            let mut prev = 0.0;
            for k in 0..8u32 {
                let shifted: Vec<u64> = base.iter().map(|&s| s << k).collect();
                let d = hist_drift(&reference, &hist_of(&shifted));
                assert!(
                    d >= prev - 1e-12,
                    "seed {seed}, k={k}: score {d} fell below {prev}"
                );
                prev = d;
            }
            assert_eq!(prev, 1.0, "seed {seed}: 128x shift must saturate");
        }

        // Share shift grows as more mass moves to a new cluster.
        let mut prev = 0.0;
        for moved in 0..=10 {
            let m = moved as f64 / 10.0;
            let d = share_shift(&[1.0, 0.0], &[1.0 - m, m]);
            assert!(d >= prev);
            prev = d;
        }
        assert_eq!(prev, 1.0);
    }

    #[test]
    fn drift_is_stable_under_histogram_merge() {
        // Scoring a merge of worker-local windows equals scoring the
        // directly recorded window — the scorer only sees bucket counts,
        // and merge is an element-wise add (associativity pinned in the
        // hist tests; this extends the guarantee to the scorer).
        for seed in 1..10u64 {
            let samples = sampled(seed, 900, 10, 1_000_000);
            let direct = hist_of(&samples);
            let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
            for (i, &s) in samples.iter().enumerate() {
                parts[i % 3].record(s);
            }
            let [a, b, c] = parts;
            let mut merged = a;
            merged.merge(&b);
            merged.merge(&c);
            let reference = hist_of(&sampled(seed + 50, 900, 10, 1_000_000));
            assert_eq!(
                hist_drift(&merged, &reference),
                hist_drift(&direct, &reference),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn share_shift_pads_missing_clusters() {
        // A cluster that exists only in the window counts in full.
        let d = share_shift(&[0.5, 0.5], &[0.5, 0.25, 0.25]);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ewma_smooths_toward_new_observations() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.observe(1.0), 1.0);
        assert_eq!(e.observe(0.0), 0.5);
        assert_eq!(e.observe(0.0), 0.25);
        assert_eq!(e.value(), Some(0.25));
        assert_eq!(e.alpha(), 0.5);

        // alpha = 1 tracks the signal exactly.
        let mut track = Ewma::new(1.0);
        for x in [0.3, 0.9, 0.1] {
            assert_eq!(track.observe(x), x);
        }
    }

    #[test]
    #[should_panic(expected = "EWMA alpha")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }
}
