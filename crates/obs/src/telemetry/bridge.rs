//! The bridge between the trace seam and the metric registry.
//!
//! [`MetricsObserver`] implements [`Observer`], so any instrumentation
//! site that can stream a trace can feed steady-state metrics through the
//! *same* callbacks — one seam, two consumers. Events map to counters
//! mirroring [`ReplayCounts`](crate::ReplayCounts) field for field (the
//! round-trip test in `tests/telemetry.rs` pins that equivalence), and
//! phase spans map to per-phase duration histograms, timed against the
//! observer's own clock like every other sink.

use std::time::Instant;

use crate::event::{Event, Phase};
use crate::observer::Observer;
use crate::telemetry::registry::{CounterId, GaugeId, HistogramId, Registry};

/// Counter ids in [`ReplayCounts`](crate::ReplayCounts) field order.
#[derive(Clone, Copy, Debug)]
struct EventCounters {
    seeds: CounterId,
    svdd_trainings: CounterId,
    support_vectors: CounterId,
    core_support_vectors: CounterId,
    merges: CounterId,
    noise_candidates: CounterId,
    noise_confirmed: CounterId,
    range_queries: CounterId,
    expansion_rounds: CounterId,
    smo_iterations: CounterId,
    warm_started_trainings: CounterId,
    iterations_exhausted: CounterId,
    shrunk_variables: CounterId,
    initial_kkt_violation_e6: CounterId,
    sampled_candidates: CounterId,
    attachment_candidates: CounterId,
    attached_points: CounterId,
    assigns: CounterId,
    assign_hits: CounterId,
    ingests: CounterId,
    ingest_duplicates: CounterId,
    promotions: CounterId,
    removals: CounterId,
    remove_misses: CounterId,
    demotions: CounterId,
    splits: CounterId,
    snapshot_writes: CounterId,
    snapshot_loads: CounterId,
    quality_windows: CounterId,
    drift_alerts: CounterId,
    http_requests: CounterId,
    http_errors: CounterId,
}

/// An [`Observer`] that folds events into registry counters and phase
/// spans into per-phase latency histograms.
#[derive(Debug)]
pub struct MetricsObserver {
    registry: Registry,
    counters: EventCounters,
    /// Largest SVDD target set seen (a high-water mark, so a gauge).
    max_target_size: GaugeId,
    max_target_seen: usize,
    /// End-to-end HTTP request durations (all endpoints), seconds.
    http_duration: HistogramId,
    /// One duration histogram per [`Phase::ALL`] entry, same order.
    phase_hists: [HistogramId; Phase::ALL.len()],
    /// Open spans: `(phase, entered_at)`, LIFO like the trace discipline.
    stack: Vec<(Phase, Instant)>,
}

impl Default for MetricsObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsObserver {
    /// Creates the observer with every metric pre-registered under
    /// `dbsvec_*` names.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let c = |reg: &mut Registry, name: &str, help: &str| reg.counter(name, help);
        let counters = EventCounters {
            seeds: c(&mut reg, "dbsvec_seeds_total", "Sub-clusters seeded."),
            svdd_trainings: c(&mut reg, "dbsvec_svdd_trainings_total", "SVDD SMO solves."),
            support_vectors: c(
                &mut reg,
                "dbsvec_support_vectors_total",
                "Support vectors produced, summed over expansion rounds.",
            ),
            core_support_vectors: c(
                &mut reg,
                "dbsvec_core_support_vectors_total",
                "Support vectors that passed the core test.",
            ),
            merges: c(&mut reg, "dbsvec_merges_total", "Cluster unions."),
            noise_candidates: c(
                &mut reg,
                "dbsvec_noise_candidates_total",
                "Potential-noise points examined.",
            ),
            noise_confirmed: c(
                &mut reg,
                "dbsvec_noise_confirmed_total",
                "Potential-noise points confirmed as noise.",
            ),
            range_queries: c(
                &mut reg,
                "dbsvec_range_queries_total",
                "Epsilon-range queries issued.",
            ),
            expansion_rounds: c(
                &mut reg,
                "dbsvec_expansion_rounds_total",
                "Support-vector expansion rounds completed.",
            ),
            smo_iterations: c(
                &mut reg,
                "dbsvec_smo_iterations_total",
                "SMO iterations, summed over trainings.",
            ),
            warm_started_trainings: c(
                &mut reg,
                "dbsvec_warm_started_trainings_total",
                "SVDD trainings seeded from the previous round's multipliers.",
            ),
            iterations_exhausted: c(
                &mut reg,
                "dbsvec_iterations_exhausted_total",
                "SVDD trainings that hit the SMO iteration cap.",
            ),
            shrunk_variables: c(
                &mut reg,
                "dbsvec_shrunk_variables_total",
                "Peak shrunk variables, summed over trainings.",
            ),
            initial_kkt_violation_e6: c(
                &mut reg,
                "dbsvec_initial_kkt_violation_e6_total",
                "Initial KKT violations in microunits, summed over trainings.",
            ),
            sampled_candidates: c(
                &mut reg,
                "dbsvec_sampled_candidates_total",
                "Core candidates drawn by sampled fits.",
            ),
            attachment_candidates: c(
                &mut reg,
                "dbsvec_attachment_candidates_total",
                "Unsampled points examined by the attachment pass.",
            ),
            attached_points: c(
                &mut reg,
                "dbsvec_attached_points_total",
                "Attachment candidates that joined a cluster.",
            ),
            assigns: c(&mut reg, "dbsvec_assigns_total", "Assignments answered."),
            assign_hits: c(
                &mut reg,
                "dbsvec_assign_hits_total",
                "Assignments that landed in a cluster.",
            ),
            ingests: c(&mut reg, "dbsvec_ingests_total", "Observations ingested."),
            ingest_duplicates: c(
                &mut reg,
                "dbsvec_ingest_duplicates_total",
                "Ingests dropped as exact duplicates.",
            ),
            promotions: c(
                &mut reg,
                "dbsvec_promotions_total",
                "Points promoted to core online.",
            ),
            removals: c(
                &mut reg,
                "dbsvec_removals_total",
                "Tracked points removed online.",
            ),
            remove_misses: c(
                &mut reg,
                "dbsvec_remove_misses_total",
                "Removal requests for untracked points.",
            ),
            demotions: c(
                &mut reg,
                "dbsvec_demotions_total",
                "Cores demoted below MinPts by removals.",
            ),
            splits: c(
                &mut reg,
                "dbsvec_splits_total",
                "Cluster splits repaired after removals.",
            ),
            snapshot_writes: c(
                &mut reg,
                "dbsvec_snapshot_writes_total",
                "Model snapshots serialized.",
            ),
            snapshot_loads: c(
                &mut reg,
                "dbsvec_snapshot_loads_total",
                "Model snapshots deserialized.",
            ),
            quality_windows: c(
                &mut reg,
                "dbsvec_quality_windows_total",
                "Quality-monitor tumbling windows completed.",
            ),
            drift_alerts: c(
                &mut reg,
                "dbsvec_drift_alerts_total",
                "Windows whose smoothed drift score crossed the threshold.",
            ),
            http_requests: c(
                &mut reg,
                "dbsvec_http_requests_total",
                "HTTP requests handled by the serving tier.",
            ),
            http_errors: c(
                &mut reg,
                "dbsvec_http_errors_total",
                "HTTP requests answered with a 4xx/5xx status.",
            ),
        };
        let max_target_size = reg.gauge(
            "dbsvec_max_target_size",
            "Largest target set any SVDD was trained on.",
        );
        let http_duration = reg.histogram(
            "dbsvec_http_request_duration_seconds",
            "End-to-end HTTP request wall time, all endpoints.",
            1e6,
        );
        let phase_hists = Phase::ALL.map(|p| {
            reg.histogram(
                &format!("dbsvec_phase_{}_seconds", p.name()),
                &format!("Wall-clock duration of {} phase spans.", p.name()),
                1e9,
            )
        });
        Self {
            registry: reg,
            counters,
            max_target_size,
            max_target_seen: 0,
            http_duration,
            phase_hists,
            stack: Vec::new(),
        }
    }

    /// The registry the observer writes into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access (to register or update additional metrics).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }

    /// Consumes the observer, returning the registry.
    pub fn into_registry(self) -> Registry {
        self.registry
    }

    fn observe_max_target(&mut self, target_size: usize) {
        if target_size > self.max_target_seen {
            self.max_target_seen = target_size;
            self.registry.set(self.max_target_size, target_size as f64);
        }
    }
}

impl Observer for MetricsObserver {
    fn span_enter(&mut self, phase: Phase) {
        self.stack.push((phase, Instant::now()));
    }

    fn span_exit(&mut self, phase: Phase) {
        let (entered, start) = self.stack.pop().expect("span exit without matching enter");
        debug_assert_eq!(entered, phase, "span exit out of LIFO order");
        let i = Phase::ALL
            .iter()
            .position(|&p| p == phase)
            .expect("every phase is in Phase::ALL");
        self.registry
            .observe_duration(self.phase_hists[i], start.elapsed());
    }

    fn event(&mut self, event: &Event) {
        let c = self.counters;
        match event {
            Event::Seed { .. } => self.registry.inc(c.seeds),
            Event::RangeQuery { .. } => self.registry.inc(c.range_queries),
            Event::SmoSolve {
                target_size,
                iterations,
                warm_started,
                converged,
                shrunk,
                initial_kkt_violation_e6,
                ..
            } => {
                self.registry.inc(c.svdd_trainings);
                self.registry.add(c.smo_iterations, *iterations as u64);
                self.registry
                    .add(c.warm_started_trainings, *warm_started as u64);
                self.registry
                    .add(c.iterations_exhausted, !*converged as u64);
                self.registry.add(c.shrunk_variables, *shrunk as u64);
                self.registry
                    .add(c.initial_kkt_violation_e6, *initial_kkt_violation_e6);
                self.observe_max_target(*target_size);
            }
            Event::ExpansionRound {
                target_size,
                n_sv,
                n_core_sv,
                ..
            } => {
                self.registry.inc(c.expansion_rounds);
                self.registry.add(c.support_vectors, *n_sv as u64);
                self.registry.add(c.core_support_vectors, *n_core_sv as u64);
                self.observe_max_target(*target_size);
            }
            Event::Merge { .. } => self.registry.inc(c.merges),
            Event::NoiseVerdict { confirmed, .. } => {
                self.registry.inc(c.noise_candidates);
                if *confirmed {
                    self.registry.inc(c.noise_confirmed);
                }
            }
            Event::Sample { candidates, .. } => {
                self.registry.add(c.sampled_candidates, *candidates as u64)
            }
            Event::Attach { attached, .. } => {
                self.registry.inc(c.attachment_candidates);
                if *attached {
                    self.registry.inc(c.attached_points);
                }
            }
            Event::Assign { hit } => {
                self.registry.inc(c.assigns);
                if *hit {
                    self.registry.inc(c.assign_hits);
                }
            }
            Event::Ingest { duplicate, .. } => {
                self.registry.inc(c.ingests);
                if *duplicate {
                    self.registry.inc(c.ingest_duplicates);
                }
            }
            Event::Promote { .. } => self.registry.inc(c.promotions),
            Event::Remove { found, .. } => {
                if *found {
                    self.registry.inc(c.removals);
                } else {
                    self.registry.inc(c.remove_misses);
                }
            }
            Event::Demote { .. } => self.registry.inc(c.demotions),
            Event::Split { pieces } => self
                .registry
                .add(c.splits, (*pieces as u64).saturating_sub(1)),
            Event::SnapshotWrite { .. } => self.registry.inc(c.snapshot_writes),
            Event::SnapshotLoad { .. } => self.registry.inc(c.snapshot_loads),
            Event::QualityWindow { .. } => self.registry.inc(c.quality_windows),
            Event::DriftAlert { .. } => self.registry.inc(c.drift_alerts),
            Event::HttpRequest {
                status,
                duration_us,
                ..
            } => {
                self.registry.inc(c.http_requests);
                if *status >= 400 {
                    self.registry.inc(c.http_errors);
                }
                let hist = self.http_duration;
                self.registry.observe(hist, *duration_us);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_land_in_the_matching_counters() {
        let mut m = MetricsObserver::new();
        m.event(&Event::RangeQuery {
            probe: 0,
            result_len: 3,
        });
        m.event(&Event::Assign { hit: true });
        m.event(&Event::Assign { hit: false });
        m.event(&Event::Sample {
            candidates: 30,
            total: 100,
            rate_e6: 300_000,
        });
        m.event(&Event::Attach {
            point: 5,
            attached: true,
        });
        m.event(&Event::Attach {
            point: 6,
            attached: false,
        });
        m.event(&Event::SmoSolve {
            target_size: 40,
            iterations: 17,
            cache_hits: 0,
            cache_misses: 0,
            warm_started: true,
            converged: false,
            shrunk: 12,
            initial_kkt_violation_e6: 250,
        });
        let reg = m.registry();
        assert_eq!(reg.counter_value("dbsvec_range_queries_total"), Some(1));
        assert_eq!(reg.counter_value("dbsvec_assigns_total"), Some(2));
        assert_eq!(reg.counter_value("dbsvec_assign_hits_total"), Some(1));
        assert_eq!(reg.counter_value("dbsvec_smo_iterations_total"), Some(17));
        assert_eq!(
            reg.counter_value("dbsvec_warm_started_trainings_total"),
            Some(1)
        );
        assert_eq!(
            reg.counter_value("dbsvec_iterations_exhausted_total"),
            Some(1)
        );
        assert_eq!(reg.counter_value("dbsvec_shrunk_variables_total"), Some(12));
        assert_eq!(
            reg.counter_value("dbsvec_initial_kkt_violation_e6_total"),
            Some(250)
        );
        assert_eq!(reg.gauge_value("dbsvec_max_target_size"), Some(40.0));
        assert_eq!(
            reg.counter_value("dbsvec_sampled_candidates_total"),
            Some(30)
        );
        assert_eq!(
            reg.counter_value("dbsvec_attachment_candidates_total"),
            Some(2)
        );
        assert_eq!(reg.counter_value("dbsvec_attached_points_total"), Some(1));
    }

    #[test]
    fn spans_fill_the_per_phase_histograms() {
        let mut m = MetricsObserver::new();
        m.span_enter(Phase::Serve);
        m.span_enter(Phase::Init);
        m.span_exit(Phase::Init);
        m.span_exit(Phase::Serve);
        let reg = m.into_registry();
        let serve = reg
            .histogram_by_name("dbsvec_phase_serve_seconds")
            .unwrap()
            .histogram();
        assert_eq!(serve.count(), 1);
        let init = reg
            .histogram_by_name("dbsvec_phase_init_seconds")
            .unwrap()
            .histogram();
        assert_eq!(init.count(), 1);
        assert_eq!(
            reg.histogram_by_name("dbsvec_phase_merge_seconds")
                .unwrap()
                .histogram()
                .count(),
            0
        );
    }
}
