//! The metric registry: named counters, gauges, and histograms.
//!
//! A [`Registry`] is the single mutable store a serving process writes its
//! steady-state signals into. Registration returns a typed id
//! ([`CounterId`] / [`GaugeId`] / [`HistogramId`]) — an index, so the hot
//! path updates a metric with one bounds-checked array access and no
//! hashing. Names follow the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and are validated at registration, which
//! is the slow path; duplicates and invalid names panic there, because
//! both are programmer errors.
//!
//! Exposition lives in [`crate::telemetry::expo`]; this module only holds
//! state. Metrics iterate in registration order, so rendered output is
//! deterministic.

use crate::telemetry::hist::Histogram;

/// Handle to a registered counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Clone, Debug)]
struct Metric<T> {
    name: String,
    help: String,
    value: T,
}

/// A registered histogram plus the scale mapping its integer ticks to the
/// exposition unit (e.g. `1e9` ticks per unit for nanosecond ticks exposed
/// as seconds). Exposition divides by this scale — a divisor like `1e9` is
/// exactly representable, so `8000 ns` renders as `0.000008`, not
/// `0.000008000000000000001`.
#[derive(Clone, Debug)]
pub struct HistogramMetric {
    name: String,
    help: String,
    ticks_per_unit: f64,
    hist: Histogram,
}

impl HistogramMetric {
    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The help text.
    pub fn help(&self) -> &str {
        &self.help
    }

    /// Recorded ticks per exposition unit.
    pub fn ticks_per_unit(&self) -> f64 {
        self.ticks_per_unit
    }

    /// A recorded tick value in exposition units.
    pub fn scaled(&self, ticks: f64) -> f64 {
        ticks / self.ticks_per_unit
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }
}

/// A named store of counters, gauges, and histograms.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: Vec<Metric<u64>>,
    gauges: Vec<Metric<f64>>,
    hists: Vec<HistogramMetric>,
}

/// Panics unless `name` matches `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn validate_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    let tail_ok = chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    assert!(
        head_ok && tail_ok,
        "invalid metric name {name:?} (want [a-zA-Z_:][a-zA-Z0-9_:]*)"
    );
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn assert_fresh(&self, name: &str) {
        validate_name(name);
        let taken = self.counters.iter().any(|m| m.name == name)
            || self.gauges.iter().any(|m| m.name == name)
            || self.hists.iter().any(|m| m.name == name);
        assert!(!taken, "metric {name:?} registered twice");
    }

    /// Registers a counter (starts at 0).
    pub fn counter(&mut self, name: &str, help: &str) -> CounterId {
        self.assert_fresh(name);
        self.counters.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (starts at 0).
    pub fn gauge(&mut self, name: &str, help: &str) -> GaugeId {
        self.assert_fresh(name);
        self.gauges.push(Metric {
            name: name.to_string(),
            help: help.to_string(),
            value: 0.0,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram whose ticks are exposed as
    /// `tick / ticks_per_unit` (pass `1e9` to record nanoseconds and
    /// expose seconds).
    pub fn histogram(&mut self, name: &str, help: &str, ticks_per_unit: f64) -> HistogramId {
        self.assert_fresh(name);
        assert!(ticks_per_unit > 0.0, "histogram scale must be positive");
        self.hists.push(HistogramMetric {
            name: name.to_string(),
            help: help.to_string(),
            ticks_per_unit,
            hist: Histogram::new(),
        });
        HistogramId(self.hists.len() - 1)
    }

    /// Increments a counter by 1.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].value += n;
    }

    /// Overwrites a counter from an external cumulative source (e.g. an
    /// engine's lifetime stats struct). The caller guarantees monotonicity.
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        self.counters[id.0].value = v;
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].value = v;
    }

    /// Records one tick into a histogram.
    pub fn observe(&mut self, id: HistogramId, ticks: u64) {
        self.hists[id.0].hist.record(ticks);
    }

    /// Records a duration into a histogram as nanosecond ticks.
    pub fn observe_duration(&mut self, id: HistogramId, d: std::time::Duration) {
        self.hists[id.0].hist.record_duration(d);
    }

    /// Folds a worker-local histogram into a registered one.
    pub fn merge_histogram(&mut self, id: HistogramId, local: &Histogram) {
        self.hists[id.0].hist.merge(local);
    }

    /// A registered histogram by id.
    pub fn histogram_at(&self, id: HistogramId) -> &HistogramMetric {
        &self.hists[id.0]
    }

    /// Current value of a counter, by name (for tests and reports).
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// Current value of a gauge, by name.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// A registered histogram by name.
    pub fn histogram_by_name(&self, name: &str) -> Option<&HistogramMetric> {
        self.hists.iter().find(|m| m.name == name)
    }

    /// All counters as `(name, help, value)` in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, &str, u64)> {
        self.counters
            .iter()
            .map(|m| (m.name.as_str(), m.help.as_str(), m.value))
    }

    /// All gauges as `(name, help, value)` in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &str, f64)> {
        self.gauges
            .iter()
            .map(|m| (m.name.as_str(), m.help.as_str(), m.value))
    }

    /// All histograms in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = &HistogramMetric> {
        self.hists.iter()
    }

    /// Total number of registered metrics.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let mut reg = Registry::new();
        let c = reg.counter("requests_total", "Requests served.");
        let g = reg.gauge("staleness_ratio", "Drift per fitted core.");
        let h = reg.histogram("latency_seconds", "Call latency.", 1e9);

        reg.inc(c);
        reg.add(c, 4);
        reg.set(g, 0.25);
        reg.observe(h, 1_000);
        reg.observe_duration(h, std::time::Duration::from_micros(2));

        assert_eq!(reg.counter_value("requests_total"), Some(5));
        assert_eq!(reg.gauge_value("staleness_ratio"), Some(0.25));
        let hm = reg.histogram_by_name("latency_seconds").unwrap();
        assert_eq!(hm.histogram().count(), 2);
        assert_eq!(hm.ticks_per_unit(), 1e9);
        assert_eq!(hm.scaled(2_000.0), 0.000002);
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.counter_value("nope"), None);

        reg.set_counter(c, 100);
        assert_eq!(reg.counter_value("requests_total"), Some(100));

        let mut local = Histogram::new();
        local.record(7);
        reg.merge_histogram(h, &local);
        assert_eq!(reg.histogram_at(h).histogram().count(), 3);
    }

    #[test]
    fn iteration_preserves_registration_order() {
        let mut reg = Registry::new();
        reg.counter("b_total", "");
        reg.counter("a_total", "");
        let names: Vec<&str> = reg.counters().map(|(n, _, _)| n).collect();
        assert_eq!(names, ["b_total", "a_total"]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_panic() {
        let mut reg = Registry::new();
        reg.counter("x_total", "");
        reg.gauge("x_total", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_panic() {
        Registry::new().counter("9starts-with-digit", "");
    }
}
