//! Serving metrics: registry, latency histograms, and exposition.
//!
//! Traces ([`crate::jsonl`]) answer "what happened during this run";
//! telemetry answers "how is the process doing right now" — cumulative
//! counters, point-in-time gauges, and latency distributions that a
//! scraper polls. The two share one instrumentation seam: a
//! [`MetricsObserver`] is an [`Observer`](crate::Observer), so the same
//! callbacks that stream a trace can also feed a [`Registry`].
//!
//! * [`registry`] — named counters/gauges/histograms behind typed ids; the
//!   hot path is one array index, no hashing.
//! * [`hist`] — log-linear-bucket [`Histogram`]: fixed 8 KiB footprint,
//!   ≤ 6.25 % relative error, mergeable across threads, p50/p95/p99.
//! * [`expo`] — renders a registry as Prometheus text exposition format
//!   0.0.4 or as JSON, plus a validating parser for the text format
//!   (used by `metrics-report` and the CI smoke test).
//! * [`bridge`] — the [`MetricsObserver`] event→counter / span→histogram
//!   bridge.
//! * [`quality`] — drift math for the model-quality monitor: octave-level
//!   earth-mover distance between histograms, total-variation shift
//!   between share vectors, and EWMA smoothing.
//!
//! Everything here is hand-rolled; `DESIGN.md` explains why no
//! `prometheus`/`metrics` crate (the workspace's offline-buildable rule).

pub mod bridge;
pub mod expo;
pub mod hist;
pub mod quality;
pub mod registry;

pub use bridge::MetricsObserver;
pub use expo::{parse_prometheus, render_json, render_prometheus, Sample};
pub use hist::{Histogram, HistogramSummary};
pub use quality::{hist_drift, share_shift, Ewma, DRIFT_SATURATION_OCTAVES};
pub use registry::{CounterId, GaugeId, HistogramId, HistogramMetric, Registry};
