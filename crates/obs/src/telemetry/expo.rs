//! Exposition: render a [`Registry`] as Prometheus text or JSON, and
//! parse the text format back for validation and reports.
//!
//! The text renderer emits the Prometheus exposition format version 0.0.4
//! — `# HELP` / `# TYPE` comments followed by `name{labels} value` sample
//! lines. Histograms are exposed as `summary` families with
//! `quantile="0.5" / "0.95" / "0.99"` labels plus `_sum` / `_count`
//! series, because the log-linear buckets are an implementation detail:
//! scrape consumers want percentiles, not 976 `_bucket` lines.
//!
//! [`parse_prometheus`] is the validating inverse used by the
//! `metrics-report` CLI command, the CI smoke job, and the golden tests;
//! it parses every sample line (names, labels, values, optional
//! timestamps) and rejects malformed lines with a line number.
//!
//! The JSON rendering shares [`crate::json::Json`] with the trace layer,
//! so `--metrics-file metrics.json` dumps parse with the same
//! [`crate::json::parse`] the JSONL golden tests use.

use crate::json::Json;
use crate::telemetry::registry::Registry;

/// The quantiles every histogram family exposes.
pub const QUANTILES: [(f64, &str); 3] = [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")];

/// Formats a sample value the Prometheus way (`NaN`, `+Inf`, `-Inf` for
/// non-finite floats; shortest round-trippable representation otherwise).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn push_header(out: &mut String, name: &str, help: &str, kind: &str) {
    if !help.is_empty() {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        // HELP text runs to end of line; strip anything that would break
        // the line-oriented grammar.
        out.push_str(&help.replace(['\n', '\r'], " "));
        out.push('\n');
    }
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Renders the registry in the Prometheus text exposition format.
pub fn render_prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, help, value) in reg.counters() {
        push_header(&mut out, name, help, "counter");
        out.push_str(&format!("{name} {value}\n"));
    }
    for (name, help, value) in reg.gauges() {
        push_header(&mut out, name, help, "gauge");
        out.push_str(&format!("{name} {}\n", fmt_value(value)));
    }
    for hm in reg.histograms() {
        let (name, h) = (hm.name(), hm.histogram());
        push_header(&mut out, name, hm.help(), "summary");
        for (q, label) in QUANTILES {
            if let Some(est) = h.quantile(q) {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    fmt_value(hm.scaled(est))
                ));
            }
        }
        out.push_str(&format!(
            "{name}_sum {}\n",
            fmt_value(hm.scaled(h.sum() as f64))
        ));
        out.push_str(&format!("{name}_count {}\n", h.count()));
    }
    out
}

/// Renders the registry as one JSON object (counters, gauges, histogram
/// summaries in exposition units).
pub fn render_json(reg: &Registry) -> Json {
    let counters = reg
        .counters()
        .map(|(name, _, v)| (name.to_string(), Json::UInt(v)))
        .collect();
    let gauges = reg
        .gauges()
        .map(|(name, _, v)| (name.to_string(), Json::Num(v)))
        .collect();
    let hists = reg
        .histograms()
        .map(|hm| {
            let s = hm.histogram().summary();
            (
                hm.name().to_string(),
                Json::obj([
                    ("count", Json::UInt(s.count)),
                    ("sum", Json::Num(hm.scaled(s.sum as f64))),
                    ("min", Json::Num(hm.scaled(s.min as f64))),
                    ("max", Json::Num(hm.scaled(s.max as f64))),
                    ("p50", Json::Num(hm.scaled(s.p50))),
                    ("p95", Json::Num(hm.scaled(s.p95))),
                    ("p99", Json::Num(hm.scaled(s.p99))),
                ]),
            )
        })
        .collect();
    Json::obj([
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(hists)),
    ])
}

/// One parsed sample line of a Prometheus text dump.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// The metric name.
    pub name: String,
    /// Label pairs in source order (empty for unlabeled samples).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn is_name_char(c: char, first: bool) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':' || (!first && c.is_ascii_digit())
}

fn parse_name(line: &str, lineno: usize) -> Result<(String, &str), String> {
    let end = line
        .char_indices()
        .take_while(|&(i, c)| is_name_char(c, i == 0))
        .count();
    if end == 0 {
        return Err(format!("line {lineno}: expected a metric name"));
    }
    Ok((line[..end].to_string(), &line[end..]))
}

/// Label pairs in source order, as parsed off a sample line.
type Labels = Vec<(String, String)>;

fn parse_labels(rest: &str, lineno: usize) -> Result<(Labels, &str), String> {
    let Some(mut rest) = rest.strip_prefix('{') else {
        return Ok((Vec::new(), rest));
    };
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(tail) = rest.strip_prefix('}') {
            return Ok((labels, tail));
        }
        let (key, tail) = parse_name(rest, lineno)?;
        let tail = tail
            .strip_prefix('=')
            .ok_or_else(|| format!("line {lineno}: expected = after label {key:?}"))?;
        let mut chars = tail.strip_prefix('"').map_or_else(
            || Err(format!("line {lineno}: expected quoted label value")),
            |t| Ok(t.chars()),
        )?;
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err(format!("line {lineno}: unterminated label value")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('"') => value.push('"'),
                    Some('\\') => value.push('\\'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("line {lineno}: bad escape {other:?}")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
        rest = chars.as_str().trim_start();
        if let Some(tail) = rest.strip_prefix(',') {
            rest = tail;
        }
    }
}

/// Parses a Prometheus text dump into its sample lines, validating the
/// whole document. `# HELP` / `# TYPE` comments are checked for shape and
/// skipped; other comments are ignored per the format spec.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(body) = comment.strip_prefix("TYPE") {
                let (_, rest) = parse_name(body.trim_start(), lineno)?;
                let kind = rest.trim();
                if !["counter", "gauge", "summary", "histogram", "untyped"].contains(&kind) {
                    return Err(format!("line {lineno}: unknown TYPE {kind:?}"));
                }
            } else if let Some(body) = comment.strip_prefix("HELP") {
                parse_name(body.trim_start(), lineno)?;
            }
            continue;
        }
        let (name, rest) = parse_name(line, lineno)?;
        let (labels, rest) = parse_labels(rest, lineno)?;
        let mut fields = rest.split_whitespace();
        let value_text = fields
            .next()
            .ok_or_else(|| format!("line {lineno}: missing sample value"))?;
        let value = match value_text {
            "NaN" => f64::NAN,
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            other => other
                .parse::<f64>()
                .map_err(|e| format!("line {lineno}: bad value {other:?}: {e}"))?,
        };
        // An optional integer timestamp may follow; nothing after that.
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|e| format!("line {lineno}: bad timestamp {ts:?}: {e}"))?;
        }
        if fields.next().is_some() {
            return Err(format!("line {lineno}: trailing garbage"));
        }
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_registry() -> Registry {
        let mut reg = Registry::new();
        let c = reg.counter("dbsvec_assigns_total", "Assignments answered.");
        let g = reg.gauge("dbsvec_staleness_ratio", "Drift per fitted core.");
        let h = reg.histogram(
            "dbsvec_assign_latency_seconds",
            "Per-call assign latency.",
            1e9,
        );
        reg.add(c, 12);
        reg.set(g, 0.125);
        for ns in [1_000u64, 2_000, 4_000, 8_000] {
            reg.observe(h, ns);
        }
        reg
    }

    /// The golden exposition test: the rendered document is pinned
    /// byte-for-byte. Histogram quantile values follow from the log-linear
    /// bucket scheme deterministically, so this breaks loudly on any
    /// format or bucketing change.
    #[test]
    fn prometheus_rendering_is_pinned() {
        let text = render_prometheus(&demo_registry());
        let expected = "\
# HELP dbsvec_assigns_total Assignments answered.
# TYPE dbsvec_assigns_total counter
dbsvec_assigns_total 12
# HELP dbsvec_staleness_ratio Drift per fitted core.
# TYPE dbsvec_staleness_ratio gauge
dbsvec_staleness_ratio 0.125
# HELP dbsvec_assign_latency_seconds Per-call assign latency.
# TYPE dbsvec_assign_latency_seconds summary
dbsvec_assign_latency_seconds{quantile=\"0.5\"} 0.000002048
dbsvec_assign_latency_seconds{quantile=\"0.95\"} 0.000008
dbsvec_assign_latency_seconds{quantile=\"0.99\"} 0.000008
dbsvec_assign_latency_seconds_sum 0.000015
dbsvec_assign_latency_seconds_count 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn rendered_output_parses_back() {
        let text = render_prometheus(&demo_registry());
        let samples = parse_prometheus(&text).expect("own output must parse");
        assert_eq!(samples.len(), 7);
        let counter = samples.iter().find(|s| s.name == "dbsvec_assigns_total");
        assert_eq!(counter.unwrap().value, 12.0);
        let p95 = samples
            .iter()
            .find(|s| {
                s.name == "dbsvec_assign_latency_seconds" && s.label("quantile") == Some("0.95")
            })
            .expect("p95 sample");
        assert!(p95.value > 0.0);
    }

    #[test]
    fn empty_histograms_skip_quantiles_but_keep_sum_and_count() {
        let mut reg = Registry::new();
        reg.histogram("idle_seconds", "Never recorded.", 1e9);
        let text = render_prometheus(&reg);
        assert!(!text.contains("quantile"), "unexpected quantiles:\n{text}");
        assert!(text.contains("idle_seconds_sum 0\n"));
        assert!(text.contains("idle_seconds_count 0\n"));
        assert!(parse_prometheus(&text).is_ok());
    }

    #[test]
    fn non_finite_gauges_render_the_prometheus_way() {
        let mut reg = Registry::new();
        let g = reg.gauge("weird", "");
        reg.set(g, f64::NAN);
        assert!(render_prometheus(&reg).contains("weird NaN\n"));
        reg.set(g, f64::INFINITY);
        assert!(render_prometheus(&reg).contains("weird +Inf\n"));
        let samples = parse_prometheus(&render_prometheus(&reg)).unwrap();
        assert_eq!(samples[0].value, f64::INFINITY);
    }

    #[test]
    fn json_rendering_parses_and_carries_percentiles() {
        let value = render_json(&demo_registry());
        let text = value.to_string();
        let parsed = crate::json::parse(&text).expect("valid JSON");
        // The shared parser reads non-negative integers back as `Int`.
        let counters = parsed.get("counters").expect("counters object");
        assert_eq!(counters.get("dbsvec_assigns_total"), Some(&Json::Int(12)));
        let hists = parsed.get("histograms").expect("histograms object");
        let lat = hists
            .get("dbsvec_assign_latency_seconds")
            .expect("latency histogram");
        assert_eq!(lat.get("count"), Some(&Json::Int(4)));
        assert!(matches!(lat.get("p50"), Some(Json::Num(v)) if *v > 0.0));
        assert!(matches!(lat.get("p99"), Some(Json::Num(v)) if *v > 0.0));
    }

    #[test]
    fn parser_accepts_labels_timestamps_and_comments() {
        let text = "\
# a free-form comment
# TYPE http_requests_total counter
http_requests_total{method=\"post\",code=\"200\"} 1027 1395066363000
escaped{msg=\"say \\\"hi\\\"\\n\"} 1
";
        let samples = parse_prometheus(text).unwrap();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].label("method"), Some("post"));
        assert_eq!(samples[0].value, 1027.0);
        assert_eq!(samples[1].label("msg"), Some("say \"hi\"\n"));
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "1bad_name 3\n",
            "name_without_value\n",
            "name not_a_number\n",
            "name{unterminated=\"x} 1\n",
            "name{key=unquoted} 1\n",
            "name 1 2 3\n",
            "# TYPE x mystery\n",
        ] {
            assert!(parse_prometheus(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
