//! Log-linear-bucket latency histograms: record, merge, percentiles.
//!
//! A [`Histogram`] counts unsigned integer samples (the serving paths
//! record nanoseconds) into buckets whose width grows with magnitude:
//! every power of two is split into [`SUB_BUCKETS`] linear sub-buckets, so
//! the relative quantization error is bounded by `1/SUB_BUCKETS` (6.25%)
//! at every scale from 1 ns to `u64::MAX`. The scheme is the same one
//! HdrHistogram popularized, shrunk to what serving metrics need:
//!
//! * bucket boundaries depend only on the constants, never on the data,
//!   so [`Histogram::merge`] is a plain element-wise add — associative and
//!   commutative, which lets scoped-thread workers record into local
//!   histograms and fold them together after the join;
//! * [`Histogram::quantile`] walks the cumulative counts and interpolates
//!   linearly inside the landing bucket, clamped to the exact observed
//!   `[min, max]`;
//! * a [`HistogramSummary`] snapshot carries count/sum/min/max/p50/p95/p99
//!   as plain numbers for exposition.
//!
//! Total footprint is [`BUCKET_COUNT`] (976) `u64` slots — about 8 KiB per
//! histogram, allocated once at construction.

/// Each power of two is split into this many linear sub-buckets.
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 4;

/// Number of buckets needed to cover the full `u64` range.
pub const BUCKET_COUNT: usize =
    (63 - SUB_BITS as usize) * SUB_BUCKETS as usize + 2 * SUB_BUCKETS as usize;

/// Bucket index for a sample (values below [`SUB_BUCKETS`] map exactly).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let magnitude = 63 - v.leading_zeros();
        let sub = (v >> (magnitude - SUB_BITS)) as usize;
        (magnitude - SUB_BITS) as usize * SUB_BUCKETS as usize + sub
    }
}

/// Inclusive lower bound of bucket `i` (inverse of [`bucket_index`]).
fn bucket_lower(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        i as u64
    } else {
        let group = i / SUB_BUCKETS as usize;
        let sub = (i % SUB_BUCKETS as usize) as u64;
        (SUB_BUCKETS + sub) << (group - 1)
    }
}

/// Width of bucket `i` (its exclusive upper bound is `lower + width`).
fn bucket_width(i: usize) -> u64 {
    if i < SUB_BUCKETS as usize {
        1
    } else {
        1u64 << (i / SUB_BUCKETS as usize - 1)
    }
}

/// A mergeable log-linear histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a [`std::time::Duration`] as nanoseconds (saturating).
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.min)
    }

    /// Largest recorded sample, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (!self.is_empty()).then_some(self.max)
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (!self.is_empty()).then(|| self.sum as f64 / self.count as f64)
    }

    /// The `q`-quantile (`q` in `[0, 1]`), `None` when empty.
    ///
    /// Walks the cumulative bucket counts to the target rank and
    /// interpolates linearly inside the landing bucket; the estimate is
    /// clamped to the exact observed `[min, max]`, so `quantile(0.0)`
    /// returns the true minimum and `quantile(1.0)` the true maximum.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 {
            return Some(self.min as f64);
        }
        // 1-based rank of the sample the quantile lands on.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let into = (target - seen) as f64 / c as f64;
                let est = bucket_lower(i) as f64 + into * bucket_width(i) as f64;
                return Some(est.clamp(self.min as f64, self.max as f64));
            }
            seen += c;
        }
        Some(self.max as f64)
    }

    /// Median estimate, `None` when empty.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate, `None` when empty.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate, `None` when empty.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` (element-wise bucket add). Associative
    /// and commutative: merging worker-local histograms in any order gives
    /// the same result as recording every sample into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The non-empty buckets as `(lower, width, count)` triples.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_width(i), c))
    }

    /// The non-empty buckets as `(bucket index, count)` pairs, in index
    /// order. Bucket indices depend only on the module constants
    /// ([`SUB_BUCKETS`], [`BUCKET_COUNT`]), never on the data, so the
    /// pairs are a stable serialization of the distribution — the snapshot
    /// format relies on this and [`Histogram::from_sparse`] round-trips it.
    pub fn sparse_counts(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }

    /// Reconstructs a histogram from [`Histogram::sparse_counts`] output
    /// plus the exact `sum`/`min`/`max` it tracked.
    ///
    /// Returns `Err` when an index is out of range, a count is zero,
    /// indices are not strictly increasing, or the min/max/sum headline
    /// numbers are inconsistent with the buckets (the snapshot decoder
    /// surfaces these as corruption).
    pub fn from_sparse(
        entries: &[(usize, u64)],
        sum: u64,
        min: u64,
        max: u64,
    ) -> Result<Self, String> {
        if entries.is_empty() {
            return Ok(Self::new());
        }
        let mut h = Self::new();
        let mut prev: Option<usize> = None;
        for &(i, c) in entries {
            if i >= BUCKET_COUNT {
                return Err(format!("bucket index {i} out of range"));
            }
            if c == 0 {
                return Err(format!("empty bucket {i} in sparse encoding"));
            }
            if prev.is_some_and(|p| p >= i) {
                return Err(format!("bucket indices not strictly increasing at {i}"));
            }
            prev = Some(i);
            h.counts[i] = c;
            h.count += c;
        }
        if min > max {
            return Err(format!("histogram min {min} exceeds max {max}"));
        }
        let (lo, hi) = (entries[0].0, entries[entries.len() - 1].0);
        if bucket_index(min) != lo {
            return Err(format!("min {min} outside first occupied bucket {lo}"));
        }
        if bucket_index(max) != hi {
            return Err(format!("max {max} outside last occupied bucket {hi}"));
        }
        h.sum = sum;
        h.min = min;
        h.max = max;
        Ok(h)
    }

    /// A plain-number snapshot for exposition.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.p50().unwrap_or(0.0),
            p95: self.p95().unwrap_or(0.0),
            p99: self.p99().unwrap_or(0.0),
        }
    }
}

/// A snapshot of a histogram's headline numbers (zeros when empty).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median estimate (0 when empty).
    pub p50: f64,
    /// 95th-percentile estimate (0 when empty).
    pub p95: f64,
    /// 99th-percentile estimate (0 when empty).
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_lower_are_inverse_and_monotone() {
        // Small values map exactly.
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
        }
        // Boundaries are continuous: each bucket's lower bound is the
        // previous bucket's exclusive upper bound.
        for i in 1..BUCKET_COUNT {
            assert_eq!(
                bucket_lower(i),
                bucket_lower(i - 1) + bucket_width(i - 1),
                "gap between buckets {} and {i}",
                i - 1
            );
        }
        // Every lower bound maps back to its own bucket.
        for i in 0..BUCKET_COUNT {
            assert_eq!(bucket_index(bucket_lower(i)), i, "bucket {i}");
        }
        // The extremes are representable.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        // A sample lands in a bucket whose width is at most 1/SUB_BUCKETS
        // of its lower bound, for all magnitudes.
        for v in [17, 1000, 123_456, 789_012_345, u64::MAX / 3] {
            let i = bucket_index(v);
            let lo = bucket_lower(i);
            let w = bucket_width(i);
            assert!(lo <= v && v < lo + w, "sample {v} outside bucket {i}");
            assert!(w as f64 / lo as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-12);
        }
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.buckets().count(), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
        // Merging an empty histogram is a no-op in both directions.
        let mut a = Histogram::new();
        a.record(42);
        let before = a.clone();
        a.merge(&h);
        assert_eq!(a, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(1_000_000.0), "q = {q}");
        }
        assert_eq!(h.min(), Some(1_000_000));
        assert_eq!(h.max(), Some(1_000_000));
        assert_eq!(h.mean(), Some(1_000_000.0));
    }

    #[test]
    fn quantiles_are_within_bucket_error_of_truth() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let tol = 1.0 / SUB_BUCKETS as f64; // 6.25% relative
        for (q, truth) in [(0.50, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let est = h.quantile(q).unwrap();
            let rel = (est - truth).abs() / truth;
            assert!(rel <= tol, "q={q}: est {est} vs {truth} (rel {rel:.4})");
        }
        // Extremes are exact thanks to the min/max clamp.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(10_000.0));
    }

    #[test]
    fn merge_is_associative_and_matches_direct_recording() {
        let samples: Vec<u64> = (0..3_000u64).map(|i| (i * i * 37) % 500_000 + 1).collect();
        let mut direct = Histogram::new();
        for &s in &samples {
            direct.record(s);
        }
        // Split three ways, merge as (a+b)+c and a+(b+c).
        let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % 3].record(s);
        }
        let [a, b, c] = parts;
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        assert_eq!(left, direct, "merged parts must equal direct recording");
        assert_eq!(left.summary(), direct.summary());
    }

    #[test]
    fn sparse_counts_round_trip() {
        let mut h = Histogram::new();
        for v in [0, 3, 17, 17, 1_000, 123_456_789] {
            h.record(v);
        }
        let entries: Vec<(usize, u64)> = h.sparse_counts().collect();
        let back =
            Histogram::from_sparse(&entries, h.sum(), h.min().unwrap(), h.max().unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.summary(), h.summary());

        // Empty round-trips too.
        let empty = Histogram::from_sparse(&[], 0, u64::MAX, 0).unwrap();
        assert_eq!(empty, Histogram::new());
    }

    #[test]
    fn from_sparse_rejects_malformed_encodings() {
        let bad_index = Histogram::from_sparse(&[(BUCKET_COUNT, 1)], 0, 0, 0);
        assert!(bad_index.is_err());
        let zero_count = Histogram::from_sparse(&[(3, 0)], 0, 3, 3);
        assert!(zero_count.is_err());
        let unsorted = Histogram::from_sparse(&[(5, 1), (3, 1)], 8, 3, 5);
        assert!(unsorted.is_err());
        let min_gt_max = Histogram::from_sparse(&[(3, 2)], 6, 5, 3);
        assert!(min_gt_max.is_err());
        let min_outside = Histogram::from_sparse(&[(3, 1), (5, 1)], 9, 4, 5);
        assert!(min_outside.is_err());
        let max_outside = Histogram::from_sparse(&[(3, 1), (5, 1)], 8, 3, 9);
        assert!(max_outside.is_err());
    }

    #[test]
    fn summary_carries_the_headline_numbers() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 100);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 40);
        assert!(s.p50 >= 10.0 && s.p50 <= 30.0);
        assert!(s.p99 <= 40.0);
    }
}
