//! The streaming sink: one JSON object per observer callback, one per line.
//!
//! Line schema (all lines carry `t`, seconds since the sink was created):
//!
//! ```text
//! {"t":0.000012,"kind":"enter","phase":"init"}
//! {"t":0.000204,"kind":"event","event":"range_query","probe":17,"result_len":9}
//! {"t":0.004100,"kind":"exit","phase":"init"}
//! ```
//!
//! `kind:"event"` lines flatten the event's fields next to its name, so a
//! trace is greppable (`grep '"event":"merge"'`) and replayable
//! ([`crate::ReplayCounts::from_jsonl`]).

use std::io::{self, Write};
use std::time::Instant;

use crate::event::{Event, Phase};
use crate::json::Json;
use crate::observer::Observer;

/// Encodes an event as a flat JSON object: `{"event":"<name>", ...fields}`.
pub fn event_to_json(event: &Event) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![("event".to_string(), Json::str(event.name()))];
    let mut push = |k: &str, v: Json| pairs.push((k.to_string(), v));
    match *event {
        Event::Seed {
            point,
            neighborhood_len,
        } => {
            push("point", Json::UInt(point as u64));
            push("neighborhood_len", Json::UInt(neighborhood_len as u64));
        }
        Event::RangeQuery { probe, result_len } => {
            push("probe", Json::UInt(probe as u64));
            push("result_len", Json::UInt(result_len as u64));
        }
        Event::SmoSolve {
            target_size,
            iterations,
            cache_hits,
            cache_misses,
            warm_started,
            converged,
            shrunk,
            initial_kkt_violation_e6,
        } => {
            push("target_size", Json::UInt(target_size as u64));
            push("iterations", Json::UInt(iterations as u64));
            push("cache_hits", Json::UInt(cache_hits));
            push("cache_misses", Json::UInt(cache_misses));
            push("warm_started", Json::Bool(warm_started));
            push("converged", Json::Bool(converged));
            push("shrunk", Json::UInt(shrunk as u64));
            push(
                "initial_kkt_violation_e6",
                Json::UInt(initial_kkt_violation_e6),
            );
        }
        Event::ExpansionRound {
            cluster,
            round,
            target_size,
            n_sv,
            n_core_sv,
            smo_iters,
        } => {
            push("cluster", Json::UInt(cluster as u64));
            push("round", Json::UInt(round as u64));
            push("target_size", Json::UInt(target_size as u64));
            push("n_sv", Json::UInt(n_sv as u64));
            push("n_core_sv", Json::UInt(n_core_sv as u64));
            push("smo_iters", Json::UInt(smo_iters as u64));
        }
        Event::Merge {
            existing,
            expanding,
        } => {
            push("existing", Json::UInt(existing as u64));
            push("expanding", Json::UInt(expanding as u64));
        }
        Event::NoiseVerdict { point, confirmed } => {
            push("point", Json::UInt(point as u64));
            push("confirmed", Json::Bool(confirmed));
        }
        Event::Sample {
            candidates,
            total,
            rate_e6,
        } => {
            push("candidates", Json::UInt(candidates as u64));
            push("total", Json::UInt(total as u64));
            push("rate_e6", Json::UInt(rate_e6));
        }
        Event::Attach { point, attached } => {
            push("point", Json::UInt(point as u64));
            push("attached", Json::Bool(attached));
        }
        Event::Assign { hit } => {
            push("hit", Json::Bool(hit));
        }
        Event::Ingest { core, duplicate } => {
            push("core", Json::Bool(core));
            push("duplicate", Json::Bool(duplicate));
        }
        Event::Promote { cluster } => {
            push("cluster", Json::UInt(cluster as u64));
        }
        Event::Remove { core, found } => {
            push("core", Json::Bool(core));
            push("found", Json::Bool(found));
        }
        Event::Demote { cluster } => {
            push("cluster", Json::UInt(cluster as u64));
        }
        Event::Split { pieces } => {
            push("pieces", Json::UInt(pieces as u64));
        }
        Event::SnapshotWrite { bytes } => {
            push("bytes", Json::UInt(bytes));
        }
        Event::SnapshotLoad { bytes } => {
            push("bytes", Json::UInt(bytes));
        }
        Event::QualityWindow {
            window,
            samples,
            drift_score_e6,
            hist_distance_e6,
            occupancy_shift_e6,
            noise_delta_e6,
            baseline,
        } => {
            push("window", Json::UInt(window));
            push("samples", Json::UInt(samples));
            push("drift_score_e6", Json::UInt(drift_score_e6));
            push("hist_distance_e6", Json::UInt(hist_distance_e6));
            push("occupancy_shift_e6", Json::UInt(occupancy_shift_e6));
            push("noise_delta_e6", Json::UInt(noise_delta_e6));
            push("baseline", Json::Bool(baseline));
        }
        Event::DriftAlert {
            window,
            drift_score_e6,
            threshold_e6,
        } => {
            push("window", Json::UInt(window));
            push("drift_score_e6", Json::UInt(drift_score_e6));
            push("threshold_e6", Json::UInt(threshold_e6));
        }
        Event::HttpRequest {
            ref endpoint,
            status,
            points,
            request_id,
            duration_us,
            stages,
        } => {
            push("endpoint", Json::Str(endpoint.clone()));
            push("status", Json::UInt(status as u64));
            push("points", Json::UInt(points));
            push("request_id", Json::UInt(request_id));
            push("duration_us", Json::UInt(duration_us));
            push("queue_us", Json::UInt(stages.queue_us));
            push("parse_us", Json::UInt(stages.parse_us));
            push("route_us", Json::UInt(stages.route_us));
            push("lock_us", Json::UInt(stages.lock_us));
            push("engine_us", Json::UInt(stages.engine_us));
            push("serialize_us", Json::UInt(stages.serialize_us));
            push("write_us", Json::UInt(stages.write_us));
        }
    }
    Json::Obj(pairs)
}

/// Streams every callback as a JSONL line to a writer.
///
/// Writes are best-effort: the first I/O error is stored (and stops
/// further output) rather than panicking inside the clustering hot path;
/// call [`JsonlSink::finish`] to flush and surface it.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    start: Instant,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer; timestamps are measured from this call. Hand in a
    /// `BufWriter` when `W` is a file — the sink writes one line per
    /// callback.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            start: Instant::now(),
            error: None,
        }
    }

    /// The first write error hit so far, if any.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flushes and returns the writer, or the first error encountered.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }

    fn write_line(&mut self, mut pairs: Vec<(String, Json)>) {
        if self.error.is_some() {
            return;
        }
        let t = self.start.elapsed().as_secs_f64();
        pairs.insert(0, ("t".to_string(), Json::Num(t)));
        if let Err(e) = writeln!(self.writer, "{}", Json::Obj(pairs)) {
            self.error = Some(e);
        }
    }

    fn span_line(&mut self, kind: &str, phase: Phase) {
        self.write_line(vec![
            ("kind".to_string(), Json::str(kind)),
            ("phase".to_string(), Json::str(phase.name())),
        ]);
    }
}

impl<W: Write> Observer for JsonlSink<W> {
    fn span_enter(&mut self, phase: Phase) {
        self.span_line("enter", phase);
    }

    fn span_exit(&mut self, phase: Phase) {
        self.span_line("exit", phase);
    }

    fn event(&mut self, event: &Event) {
        if self.error.is_some() {
            return;
        }
        let mut pairs = vec![("kind".to_string(), Json::str("event"))];
        if let Json::Obj(fields) = event_to_json(event) {
            pairs.extend(fields);
        }
        self.write_line(pairs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::replay::{event_from_json, ReplayCounts};

    fn demo_run(obs: &mut dyn Observer) {
        obs.span_enter(Phase::Init);
        obs.event(&Event::Seed {
            point: 3,
            neighborhood_len: 12,
        });
        obs.event(&Event::RangeQuery {
            probe: 3,
            result_len: 12,
        });
        obs.span_enter(Phase::SvExpand);
        obs.event(&Event::SmoSolve {
            target_size: 12,
            iterations: 9,
            cache_hits: 40,
            cache_misses: 4,
            warm_started: true,
            converged: true,
            shrunk: 5,
            initial_kkt_violation_e6: 1834,
        });
        obs.event(&Event::ExpansionRound {
            cluster: 0,
            round: 1,
            target_size: 12,
            n_sv: 3,
            n_core_sv: 2,
            smo_iters: 9,
        });
        obs.span_exit(Phase::SvExpand);
        obs.span_exit(Phase::Init);
        obs.span_enter(Phase::NoiseVerify);
        obs.event(&Event::NoiseVerdict {
            point: 8,
            confirmed: true,
        });
        obs.span_exit(Phase::NoiseVerify);
    }

    #[test]
    fn every_line_is_valid_json_with_the_schema_fields() {
        let mut sink = JsonlSink::new(Vec::new());
        demo_run(&mut sink);
        let bytes = sink.finish().expect("no io errors on a Vec");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 11);
        let mut last_t = 0.0;
        for line in &lines {
            let v = json::parse(line).expect("valid JSON line");
            let t = match v.get("t") {
                Some(Json::Num(t)) => *t,
                other => panic!("missing t: {other:?}"),
            };
            assert!(t >= last_t, "timestamps must be monotone");
            last_t = t;
            match v.get("kind") {
                Some(Json::Str(k)) if k == "enter" || k == "exit" => {
                    assert!(matches!(v.get("phase"), Some(Json::Str(_))));
                }
                Some(Json::Str(k)) if k == "event" => {
                    event_from_json(&v).expect("decodable event line");
                }
                other => panic!("bad kind: {other:?}"),
            }
        }
    }

    #[test]
    fn trace_replays_to_the_same_counts_as_recording() {
        let mut sink = JsonlSink::new(Vec::new());
        let mut recorder = crate::RecordingObserver::new();
        demo_run(&mut sink);
        demo_run(&mut recorder);
        let text = String::from_utf8(sink.finish().unwrap()).unwrap();
        let from_trace = ReplayCounts::from_jsonl(&text).expect("replayable");
        assert_eq!(from_trace, recorder.replay());
        assert_eq!(from_trace.range_queries, 1);
        assert_eq!(from_trace.noise_confirmed, 1);
    }

    #[test]
    fn io_errors_are_stored_not_panicked() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.span_enter(Phase::Init);
        assert!(sink.error().is_some());
        sink.span_exit(Phase::Init); // must not panic after the error
        assert!(sink.finish().is_err());
    }
}
