//! The human-readable `--profile` report: phase times + θ breakdown.

use std::fmt;
use std::time::Duration;

use crate::event::Phase;
use crate::recording::{PhaseTimings, RecordingObserver};
use crate::replay::ReplayCounts;

/// A finished run's profile: per-phase wall-clock plus the replayed cost
/// counters, rendered as the table the CLI prints under `--profile`.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// Dataset size the run clustered (for θ).
    pub n: usize,
    /// Per-phase timings in [`Phase::ALL`] order (phases that never ran
    /// report zeros).
    pub phases: Vec<(Phase, PhaseTimings)>,
    /// The counters replayed from the recorded events.
    pub counts: ReplayCounts,
}

impl ProfileReport {
    /// Builds the report from a recording of the run.
    pub fn from_recording(recorder: &RecordingObserver, n: usize) -> Self {
        let measured = recorder.phase_timings();
        let phases = Phase::ALL
            .iter()
            .map(|&p| {
                let t = measured
                    .iter()
                    .find(|(q, _)| *q == p)
                    .map(|(_, t)| *t)
                    .unwrap_or_default();
                (p, t)
            })
            .collect();
        Self {
            n,
            phases,
            counts: recorder.replay(),
        }
    }

    /// Total observed wall-clock (sum of self-times, so nested spans are
    /// not double-counted).
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|(_, t)| t.self_time).sum()
    }
}

fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_time().as_secs_f64().max(f64::MIN_POSITIVE);
        writeln!(
            f,
            "{:<14} {:>6} {:>12} {:>12} {:>7}",
            "phase", "spans", "total", "self", "self%"
        )?;
        for (phase, t) in &self.phases {
            writeln!(
                f,
                "{:<14} {:>6} {:>12} {:>12} {:>6.1}%",
                phase.name(),
                t.spans,
                fmt_duration(t.total),
                fmt_duration(t.self_time),
                100.0 * t.self_time.as_secs_f64() / total
            )?;
        }
        writeln!(
            f,
            "{:<14} {:>6} {:>12} {:>12} {:>7}",
            "(sum of self)",
            "",
            "",
            fmt_duration(self.total_time()),
            "100.0%"
        )?;
        writeln!(f)?;
        let c = &self.counts;
        writeln!(
            f,
            "range queries  {:>10}   over n = {} points   theta = {:.4}",
            c.range_queries,
            self.n,
            c.theta(self.n)
        )?;
        writeln!(
            f,
            "seeds {} | expansion rounds {} | svdd trainings {} | smo iterations {}",
            c.seeds, c.expansion_rounds, c.svdd_trainings, c.smo_iterations
        )?;
        writeln!(
            f,
            "support vectors {} (core {}) | max target size {} | merges {}",
            c.support_vectors, c.core_support_vectors, c.max_target_size, c.merges
        )?;
        write!(
            f,
            "noise candidates {} | confirmed noise {}",
            c.noise_candidates, c.noise_confirmed
        )?;
        if c.sampled_candidates + c.attachment_candidates > 0 {
            writeln!(f)?;
            write!(
                f,
                "sampled candidates {} | attachment candidates {} | attached {}",
                c.sampled_candidates, c.attachment_candidates, c.attached_points
            )?;
        }
        if c.assigns + c.ingests + c.promotions + c.snapshot_writes + c.snapshot_loads > 0 {
            writeln!(f)?;
            write!(
                f,
                "assigns {} (hits {}) | ingests {} (dups {}) | promotions {} | snapshots w {} / r {}",
                c.assigns,
                c.assign_hits,
                c.ingests,
                c.ingest_duplicates,
                c.promotions,
                c.snapshot_writes,
                c.snapshot_loads
            )?;
        }
        if c.removals + c.remove_misses + c.demotions + c.splits > 0 {
            writeln!(f)?;
            write!(
                f,
                "removals {} (misses {}) | demotions {} | splits {}",
                c.removals, c.remove_misses, c.demotions, c.splits
            )?;
        }
        if c.quality_windows + c.drift_alerts > 0 {
            writeln!(f)?;
            write!(
                f,
                "quality windows {} | drift alerts {}",
                c.quality_windows, c.drift_alerts
            )?;
        }
        if c.http_requests > 0 {
            writeln!(f)?;
            write!(
                f,
                "http requests {} | http errors {} | http time {}",
                c.http_requests,
                c.http_errors,
                fmt_duration(Duration::from_micros(c.http_duration_us))
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::observer::Observer;

    #[test]
    fn report_lists_all_phases_and_theta() {
        let mut rec = RecordingObserver::new();
        rec.span_enter(Phase::Init);
        rec.event(&Event::RangeQuery {
            probe: 0,
            result_len: 2,
        });
        rec.event(&Event::RangeQuery {
            probe: 1,
            result_len: 0,
        });
        rec.span_exit(Phase::Init);
        let report = ProfileReport::from_recording(&rec, 8);
        assert_eq!(report.phases.len(), Phase::ALL.len());
        assert_eq!(report.counts.range_queries, 2);
        let text = report.to_string();
        for p in Phase::ALL {
            assert!(text.contains(p.name()), "missing {} in:\n{text}", p.name());
        }
        assert!(text.contains("theta = 0.2500"), "bad theta in:\n{text}");
    }

    #[test]
    fn serving_line_appears_only_with_serving_traffic() {
        let mut rec = RecordingObserver::new();
        rec.span_enter(Phase::Init);
        rec.span_exit(Phase::Init);
        let fit_only = ProfileReport::from_recording(&rec, 4).to_string();
        assert!(!fit_only.contains("assigns"), "unexpected:\n{fit_only}");

        rec.span_enter(Phase::Serve);
        rec.event(&Event::Assign { hit: true });
        rec.event(&Event::Ingest {
            core: false,
            duplicate: false,
        });
        rec.span_exit(Phase::Serve);
        let served = ProfileReport::from_recording(&rec, 4).to_string();
        assert!(
            served.contains("assigns 1 (hits 1) | ingests 1"),
            "missing serving line in:\n{served}"
        );
        assert!(!served.contains("quality windows"), "unexpected:\n{served}");

        rec.event(&Event::QualityWindow {
            window: 1,
            samples: 4,
            drift_score_e6: 600_000,
            hist_distance_e6: 600_000,
            occupancy_shift_e6: 0,
            noise_delta_e6: 0,
            baseline: true,
        });
        rec.event(&Event::DriftAlert {
            window: 1,
            drift_score_e6: 600_000,
            threshold_e6: 350_000,
        });
        let monitored = ProfileReport::from_recording(&rec, 4).to_string();
        assert!(
            monitored.contains("quality windows 1 | drift alerts 1"),
            "missing quality line in:\n{monitored}"
        );
    }

    #[test]
    fn sampling_line_appears_only_on_sampled_fits() {
        let mut rec = RecordingObserver::new();
        rec.span_enter(Phase::Init);
        rec.span_exit(Phase::Init);
        let exact = ProfileReport::from_recording(&rec, 4).to_string();
        assert!(
            !exact.contains("sampled candidates"),
            "unexpected:\n{exact}"
        );

        rec.event(&Event::Sample {
            candidates: 2,
            total: 4,
            rate_e6: 500_000,
        });
        rec.event(&Event::Attach {
            point: 3,
            attached: true,
        });
        let sampled = ProfileReport::from_recording(&rec, 4).to_string();
        assert!(
            sampled.contains("sampled candidates 2 | attachment candidates 1 | attached 1"),
            "missing sampling line in:\n{sampled}"
        );
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.000ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0us");
    }
}
