//! Replay: fold a recorded event stream back into the run's cost counters.
//!
//! The invariant this module exists to check: a trace is *complete* iff
//! replaying it reproduces the `DbsvecStats` the run itself accumulated,
//! field for field. [`ReplayCounts`] mirrors that struct's counter layout
//! exactly; `tests/` and the CLI's `--profile` path both diff the two.

use crate::event::Event;
use crate::json::{self, Json};

/// Cost counters reconstructed from an event stream.
///
/// Field-for-field mirror of `dbsvec_core::stats::DbsvecStats` (this crate
/// cannot depend on core — core depends on *it* — so the mirror is kept in
/// sync by the cross-check tests in the workspace root).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayCounts {
    /// Sub-clusters seeded (count of [`Event::Seed`]).
    pub seeds: u64,
    /// SVDD trainings (count of [`Event::SmoSolve`]).
    pub svdd_trainings: u64,
    /// Support vectors produced, summed over rounds.
    pub support_vectors: u64,
    /// Support vectors that passed the core test, summed over rounds.
    pub core_support_vectors: u64,
    /// Cluster unions (count of [`Event::Merge`]).
    pub merges: u64,
    /// Potential-noise points examined (count of [`Event::NoiseVerdict`]).
    pub noise_candidates: u64,
    /// Of those, confirmed noise (`confirmed == true`).
    pub noise_confirmed: u64,
    /// ε-range queries issued (count of [`Event::RangeQuery`]).
    pub range_queries: u64,
    /// Expansion rounds completed (count of [`Event::ExpansionRound`]).
    pub expansion_rounds: u64,
    /// Largest target set ñ any SVDD was trained on.
    pub max_target_size: usize,
    /// SMO iterations, summed over trainings.
    pub smo_iterations: u64,
    /// Warm-started trainings (`warm_started == true` on [`Event::SmoSolve`]).
    pub warm_started_trainings: u64,
    /// Trainings that exhausted their iteration cap (`converged == false`).
    pub iterations_exhausted: u64,
    /// Peak shrunk variables, summed over trainings.
    pub shrunk_variables: u64,
    /// Initial KKT violations in fixed-point microunits, summed over
    /// trainings.
    pub initial_kkt_violation_e6: u64,
    /// Core candidates drawn by a sampled fit (the `candidates` field of
    /// [`Event::Sample`]; 0 on exact fits).
    pub sampled_candidates: u64,
    /// Unsampled points examined by the attachment pass (count of
    /// [`Event::Attach`]).
    pub attachment_candidates: u64,
    /// Of those, points attached to a cluster (`attached == true`).
    pub attached_points: u64,
    /// Serving: assignments answered (count of [`Event::Assign`]).
    pub assigns: u64,
    /// Of those, assignments that landed in a cluster (`hit == true`).
    pub assign_hits: u64,
    /// Serving: observations ingested (count of [`Event::Ingest`]).
    pub ingests: u64,
    /// Of those, exact duplicates of already-tracked points.
    pub ingest_duplicates: u64,
    /// Serving: online core promotions (count of [`Event::Promote`]).
    pub promotions: u64,
    /// Serving: tracked points removed ([`Event::Remove`] with
    /// `found == true`).
    pub removals: u64,
    /// Removal requests for untracked points ([`Event::Remove`] with
    /// `found == false`).
    pub remove_misses: u64,
    /// Cores demoted below MinPts by removals (count of
    /// [`Event::Demote`]).
    pub demotions: u64,
    /// Cluster splits repaired after removals: the sum of `pieces - 1`
    /// over [`Event::Split`] events.
    pub splits: u64,
    /// Model snapshots written (count of [`Event::SnapshotWrite`]).
    pub snapshot_writes: u64,
    /// Model snapshots loaded (count of [`Event::SnapshotLoad`]).
    pub snapshot_loads: u64,
    /// Quality windows completed (count of [`Event::QualityWindow`]).
    pub quality_windows: u64,
    /// Drift alerts raised (count of [`Event::DriftAlert`]).
    pub drift_alerts: u64,
    /// HTTP requests handled (count of [`Event::HttpRequest`]).
    pub http_requests: u64,
    /// Of those, requests answered with a 4xx/5xx status.
    pub http_errors: u64,
    /// End-to-end HTTP wall time, summed over requests, in microseconds.
    pub http_duration_us: u64,
}

impl ReplayCounts {
    /// Folds one event into the counters.
    pub fn record(&mut self, event: &Event) {
        match event {
            Event::Seed { .. } => self.seeds += 1,
            Event::RangeQuery { .. } => self.range_queries += 1,
            Event::SmoSolve {
                target_size,
                iterations,
                warm_started,
                converged,
                shrunk,
                initial_kkt_violation_e6,
                ..
            } => {
                self.svdd_trainings += 1;
                self.smo_iterations += *iterations as u64;
                self.max_target_size = self.max_target_size.max(*target_size);
                self.warm_started_trainings += *warm_started as u64;
                self.iterations_exhausted += !*converged as u64;
                self.shrunk_variables += *shrunk as u64;
                self.initial_kkt_violation_e6 += *initial_kkt_violation_e6;
            }
            Event::ExpansionRound {
                target_size,
                n_sv,
                n_core_sv,
                ..
            } => {
                self.expansion_rounds += 1;
                self.support_vectors += *n_sv as u64;
                self.core_support_vectors += *n_core_sv as u64;
                self.max_target_size = self.max_target_size.max(*target_size);
            }
            Event::Merge { .. } => self.merges += 1,
            Event::NoiseVerdict { confirmed, .. } => {
                self.noise_candidates += 1;
                if *confirmed {
                    self.noise_confirmed += 1;
                }
            }
            Event::Sample { candidates, .. } => self.sampled_candidates += *candidates as u64,
            Event::Attach { attached, .. } => {
                self.attachment_candidates += 1;
                if *attached {
                    self.attached_points += 1;
                }
            }
            Event::Assign { hit } => {
                self.assigns += 1;
                if *hit {
                    self.assign_hits += 1;
                }
            }
            Event::Ingest { duplicate, .. } => {
                self.ingests += 1;
                if *duplicate {
                    self.ingest_duplicates += 1;
                }
            }
            Event::Promote { .. } => self.promotions += 1,
            Event::Remove { found, .. } => {
                if *found {
                    self.removals += 1;
                } else {
                    self.remove_misses += 1;
                }
            }
            Event::Demote { .. } => self.demotions += 1,
            Event::Split { pieces } => self.splits += (*pieces as u64).saturating_sub(1),
            Event::SnapshotWrite { .. } => self.snapshot_writes += 1,
            Event::SnapshotLoad { .. } => self.snapshot_loads += 1,
            Event::QualityWindow { .. } => self.quality_windows += 1,
            Event::DriftAlert { .. } => self.drift_alerts += 1,
            Event::HttpRequest {
                status,
                duration_us,
                ..
            } => {
                self.http_requests += 1;
                if *status >= 400 {
                    self.http_errors += 1;
                }
                self.http_duration_us += *duration_us;
            }
        }
    }

    /// Builds counters from an event stream.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Self {
        let mut counts = Self::default();
        for e in events {
            counts.record(e);
        }
        counts
    }

    /// Builds counters from JSONL trace text (as written by
    /// [`crate::JsonlSink`]). Every line must be valid JSON; `kind:"event"`
    /// lines must decode to a known event. Span lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut counts = Self::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = value
                .get("kind")
                .ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?;
            if kind == &Json::Str("event".to_string()) {
                let event =
                    event_from_json(&value).map_err(|e| format!("line {}: {e}", lineno + 1))?;
                counts.record(&event);
            }
        }
        Ok(counts)
    }

    /// The query-cost ratio θ = range_queries / n.
    pub fn theta(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.range_queries as f64 / n as f64
        }
    }
}

fn field_u64(value: &Json, key: &str) -> Result<u64, String> {
    match value.get(key) {
        Some(Json::UInt(u)) => Ok(*u),
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        Some(other) => Err(format!("field {key:?} is not an unsigned integer: {other}")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn field_usize(value: &Json, key: &str) -> Result<usize, String> {
    Ok(field_u64(value, key)? as usize)
}

fn field_u32(value: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(field_u64(value, key)?).map_err(|e| format!("field {key:?}: {e}"))
}

fn field_bool(value: &Json, key: &str) -> Result<bool, String> {
    match value.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool field {key:?}")),
    }
}

fn field_str(value: &Json, key: &str) -> Result<String, String> {
    match value.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field {key:?}")),
    }
}

/// Decodes one `kind:"event"` trace object back into an [`Event`]
/// (inverse of [`crate::jsonl::event_to_json`]).
pub fn event_from_json(value: &Json) -> Result<Event, String> {
    let name = match value.get("event") {
        Some(Json::Str(s)) => s.as_str(),
        _ => return Err("missing \"event\" name".to_string()),
    };
    match name {
        "seed" => Ok(Event::Seed {
            point: field_u32(value, "point")?,
            neighborhood_len: field_usize(value, "neighborhood_len")?,
        }),
        "range_query" => Ok(Event::RangeQuery {
            probe: field_u32(value, "probe")?,
            result_len: field_usize(value, "result_len")?,
        }),
        "smo_solve" => Ok(Event::SmoSolve {
            target_size: field_usize(value, "target_size")?,
            iterations: field_usize(value, "iterations")?,
            cache_hits: field_u64(value, "cache_hits")?,
            cache_misses: field_u64(value, "cache_misses")?,
            warm_started: field_bool(value, "warm_started")?,
            converged: field_bool(value, "converged")?,
            shrunk: field_usize(value, "shrunk")?,
            initial_kkt_violation_e6: field_u64(value, "initial_kkt_violation_e6")?,
        }),
        "expansion_round" => Ok(Event::ExpansionRound {
            cluster: field_u32(value, "cluster")?,
            round: field_usize(value, "round")?,
            target_size: field_usize(value, "target_size")?,
            n_sv: field_usize(value, "n_sv")?,
            n_core_sv: field_usize(value, "n_core_sv")?,
            smo_iters: field_usize(value, "smo_iters")?,
        }),
        "merge" => Ok(Event::Merge {
            existing: field_u32(value, "existing")?,
            expanding: field_u32(value, "expanding")?,
        }),
        "noise_verdict" => Ok(Event::NoiseVerdict {
            point: field_u32(value, "point")?,
            confirmed: field_bool(value, "confirmed")?,
        }),
        "sample" => Ok(Event::Sample {
            candidates: field_usize(value, "candidates")?,
            total: field_usize(value, "total")?,
            rate_e6: field_u64(value, "rate_e6")?,
        }),
        "attach" => Ok(Event::Attach {
            point: field_u32(value, "point")?,
            attached: field_bool(value, "attached")?,
        }),
        "assign" => Ok(Event::Assign {
            hit: field_bool(value, "hit")?,
        }),
        "ingest" => Ok(Event::Ingest {
            core: field_bool(value, "core")?,
            duplicate: field_bool(value, "duplicate")?,
        }),
        "promote" => Ok(Event::Promote {
            cluster: field_u32(value, "cluster")?,
        }),
        "remove" => Ok(Event::Remove {
            core: field_bool(value, "core")?,
            found: field_bool(value, "found")?,
        }),
        "demote" => Ok(Event::Demote {
            cluster: field_u32(value, "cluster")?,
        }),
        "split" => Ok(Event::Split {
            pieces: field_u32(value, "pieces")?,
        }),
        "snapshot_write" => Ok(Event::SnapshotWrite {
            bytes: field_u64(value, "bytes")?,
        }),
        "snapshot_load" => Ok(Event::SnapshotLoad {
            bytes: field_u64(value, "bytes")?,
        }),
        "quality_window" => Ok(Event::QualityWindow {
            window: field_u64(value, "window")?,
            samples: field_u64(value, "samples")?,
            drift_score_e6: field_u64(value, "drift_score_e6")?,
            hist_distance_e6: field_u64(value, "hist_distance_e6")?,
            occupancy_shift_e6: field_u64(value, "occupancy_shift_e6")?,
            noise_delta_e6: field_u64(value, "noise_delta_e6")?,
            baseline: field_bool(value, "baseline")?,
        }),
        "drift_alert" => Ok(Event::DriftAlert {
            window: field_u64(value, "window")?,
            drift_score_e6: field_u64(value, "drift_score_e6")?,
            threshold_e6: field_u64(value, "threshold_e6")?,
        }),
        "http_request" => Ok(Event::HttpRequest {
            endpoint: field_str(value, "endpoint")?,
            status: u16::try_from(field_u64(value, "status")?)
                .map_err(|e| format!("field \"status\": {e}"))?,
            points: field_u64(value, "points")?,
            request_id: field_u64(value, "request_id")?,
            duration_us: field_u64(value, "duration_us")?,
            stages: crate::event::HttpStages {
                queue_us: field_u64(value, "queue_us")?,
                parse_us: field_u64(value, "parse_us")?,
                route_us: field_u64(value, "route_us")?,
                lock_us: field_u64(value, "lock_us")?,
                engine_us: field_u64(value, "engine_us")?,
                serialize_us: field_u64(value, "serialize_us")?,
                write_us: field_u64(value, "write_us")?,
            },
        }),
        other => Err(format!("unknown event {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_every_variant() {
        let events = [
            Event::Seed {
                point: 0,
                neighborhood_len: 9,
            },
            Event::RangeQuery {
                probe: 1,
                result_len: 4,
            },
            Event::RangeQuery {
                probe: 2,
                result_len: 0,
            },
            Event::SmoSolve {
                target_size: 40,
                iterations: 17,
                cache_hits: 100,
                cache_misses: 8,
                warm_started: false,
                converged: true,
                shrunk: 0,
                initial_kkt_violation_e6: 1_500_000,
            },
            Event::ExpansionRound {
                cluster: 0,
                round: 1,
                target_size: 40,
                n_sv: 6,
                n_core_sv: 5,
                smo_iters: 17,
            },
            Event::SmoSolve {
                target_size: 72,
                iterations: 23,
                cache_hits: 50,
                cache_misses: 2,
                warm_started: true,
                converged: false,
                shrunk: 30,
                initial_kkt_violation_e6: 420,
            },
            Event::ExpansionRound {
                cluster: 0,
                round: 2,
                target_size: 72,
                n_sv: 8,
                n_core_sv: 4,
                smo_iters: 23,
            },
            Event::Merge {
                existing: 0,
                expanding: 1,
            },
            Event::NoiseVerdict {
                point: 9,
                confirmed: true,
            },
            Event::NoiseVerdict {
                point: 10,
                confirmed: false,
            },
            Event::Sample {
                candidates: 120,
                total: 400,
                rate_e6: 300_000,
            },
            Event::Attach {
                point: 11,
                attached: true,
            },
            Event::Attach {
                point: 12,
                attached: false,
            },
            Event::Attach {
                point: 13,
                attached: true,
            },
        ];
        let c = ReplayCounts::from_events(events.iter());
        assert_eq!(c.seeds, 1);
        assert_eq!(c.range_queries, 2);
        assert_eq!(c.svdd_trainings, 2);
        assert_eq!(c.smo_iterations, 40);
        assert_eq!(c.warm_started_trainings, 1);
        assert_eq!(c.iterations_exhausted, 1);
        assert_eq!(c.shrunk_variables, 30);
        assert_eq!(c.initial_kkt_violation_e6, 1_500_420);
        assert_eq!(c.expansion_rounds, 2);
        assert_eq!(c.support_vectors, 14);
        assert_eq!(c.core_support_vectors, 9);
        assert_eq!(c.max_target_size, 72);
        assert_eq!(c.merges, 1);
        assert_eq!(c.noise_candidates, 2);
        assert_eq!(c.noise_confirmed, 1);
        assert_eq!(c.sampled_candidates, 120);
        assert_eq!(c.attachment_candidates, 3);
        assert_eq!(c.attached_points, 2);
        assert!((c.theta(20) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn counts_serving_variants() {
        let events = [
            Event::Assign { hit: true },
            Event::Assign { hit: false },
            Event::Ingest {
                core: true,
                duplicate: false,
            },
            Event::Ingest {
                core: false,
                duplicate: true,
            },
            Event::Promote { cluster: 1 },
            Event::Remove {
                core: true,
                found: true,
            },
            Event::Remove {
                core: false,
                found: true,
            },
            Event::Remove {
                core: false,
                found: false,
            },
            Event::Demote { cluster: 0 },
            Event::Split { pieces: 3 },
            Event::SnapshotWrite { bytes: 128 },
            Event::SnapshotLoad { bytes: 128 },
            Event::QualityWindow {
                window: 1,
                samples: 256,
                drift_score_e6: 480_000,
                hist_distance_e6: 480_000,
                occupancy_shift_e6: 90_000,
                noise_delta_e6: 12_000,
                baseline: true,
            },
            Event::DriftAlert {
                window: 1,
                drift_score_e6: 480_000,
                threshold_e6: 350_000,
            },
            Event::HttpRequest {
                endpoint: "assign".to_string(),
                status: 200,
                points: 1,
                request_id: 1,
                duration_us: 750,
                stages: crate::event::HttpStages {
                    queue_us: 20,
                    parse_us: 100,
                    route_us: 5,
                    lock_us: 10,
                    engine_us: 500,
                    serialize_us: 45,
                    write_us: 70,
                },
            },
            Event::HttpRequest {
                endpoint: "error".to_string(),
                status: 400,
                points: 0,
                request_id: 2,
                duration_us: 90,
                stages: crate::event::HttpStages {
                    parse_us: 60,
                    write_us: 30,
                    ..Default::default()
                },
            },
        ];
        let c = ReplayCounts::from_events(events.iter());
        assert_eq!(c.assigns, 2);
        assert_eq!(c.assign_hits, 1);
        assert_eq!(c.ingests, 2);
        assert_eq!(c.ingest_duplicates, 1);
        assert_eq!(c.promotions, 1);
        assert_eq!(c.removals, 2);
        assert_eq!(c.remove_misses, 1);
        assert_eq!(c.demotions, 1);
        assert_eq!(c.splits, 2, "a 3-piece split counts as two splits");
        assert_eq!(c.snapshot_writes, 1);
        assert_eq!(c.snapshot_loads, 1);
        assert_eq!(c.quality_windows, 1);
        assert_eq!(c.drift_alerts, 1);
        assert_eq!(c.http_requests, 2);
        assert_eq!(c.http_errors, 1);
        assert_eq!(c.http_duration_us, 840);
        // Fit counters untouched by serving traffic.
        assert_eq!(c.seeds, 0);
        assert_eq!(c.range_queries, 0);
    }

    #[test]
    fn jsonl_round_trip_matches_direct_counts() {
        use crate::jsonl::event_to_json;

        let events = [
            Event::RangeQuery {
                probe: 7,
                result_len: 3,
            },
            Event::SmoSolve {
                target_size: 15,
                iterations: 4,
                cache_hits: 9,
                cache_misses: 6,
                warm_started: true,
                converged: true,
                shrunk: 2,
                initial_kkt_violation_e6: 77,
            },
            Event::Merge {
                existing: 2,
                expanding: 5,
            },
            Event::NoiseVerdict {
                point: 11,
                confirmed: false,
            },
            Event::Sample {
                candidates: 64,
                total: 256,
                rate_e6: 250_000,
            },
            Event::Attach {
                point: 19,
                attached: false,
            },
            Event::Remove {
                core: true,
                found: true,
            },
            Event::Demote { cluster: 4 },
            Event::Split { pieces: 2 },
            Event::QualityWindow {
                window: 3,
                samples: 512,
                drift_score_e6: 150_000,
                hist_distance_e6: 150_000,
                occupancy_shift_e6: 20_000,
                noise_delta_e6: 5_000,
                baseline: true,
            },
            Event::DriftAlert {
                window: 3,
                drift_score_e6: 150_000,
                threshold_e6: 100_000,
            },
            Event::HttpRequest {
                endpoint: "ingest".to_string(),
                status: 503,
                points: 4,
                request_id: 9,
                duration_us: 1_100,
                stages: crate::event::HttpStages {
                    queue_us: 300,
                    parse_us: 400,
                    route_us: 2,
                    lock_us: 8,
                    engine_us: 250,
                    serialize_us: 40,
                    write_us: 100,
                },
            },
        ];
        let mut text = String::new();
        // A span line mixed in must be skipped, not rejected.
        text.push_str("{\"t\":0.0,\"kind\":\"enter\",\"phase\":\"init\"}\n");
        for e in &events {
            let mut obj = vec![
                ("t".to_string(), Json::Num(0.5)),
                ("kind".to_string(), Json::str("event")),
            ];
            if let Json::Obj(fields) = event_to_json(e) {
                obj.extend(fields);
            }
            text.push_str(&Json::Obj(obj).to_string());
            text.push('\n');
        }
        let replayed = ReplayCounts::from_jsonl(&text).expect("valid trace");
        assert_eq!(replayed, ReplayCounts::from_events(events.iter()));
    }

    #[test]
    fn jsonl_rejects_bad_lines() {
        assert!(ReplayCounts::from_jsonl("not json\n").is_err());
        assert!(ReplayCounts::from_jsonl("{\"no_kind\":1}\n").is_err());
        assert!(ReplayCounts::from_jsonl("{\"kind\":\"event\",\"event\":\"mystery\"}\n").is_err());
        assert!(ReplayCounts::from_jsonl(
            "{\"kind\":\"event\",\"event\":\"range_query\",\"probe\":1}\n"
        )
        .is_err());
    }
}
