//! The in-memory observer: records everything, queryable afterwards.

use std::time::{Duration, Instant};

use crate::event::{Event, Phase};
use crate::observer::Observer;
use crate::replay::ReplayCounts;

/// One recorded callback, stamped with time since observer creation.
#[derive(Clone, Debug)]
pub enum Record {
    /// `span_enter(phase)` at `at`.
    Enter {
        /// The phase entered.
        phase: Phase,
        /// Time since the observer was created.
        at: Duration,
    },
    /// `span_exit(phase)` at `at`.
    Exit {
        /// The phase exited.
        phase: Phase,
        /// Time since the observer was created.
        at: Duration,
    },
    /// `event(e)` at `at`.
    Event {
        /// The event.
        event: Event,
        /// Time since the observer was created.
        at: Duration,
    },
}

/// Wall-clock totals for one phase, aggregated over all its spans.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Number of spans of this phase.
    pub spans: usize,
    /// Total time with the phase open (includes nested phases).
    pub total: Duration,
    /// Total time with the phase *innermost* (nested phases subtracted).
    pub self_time: Duration,
}

/// Records every callback in memory for later queries — the backing store
/// for tests and for the CLI's `--profile` report.
#[derive(Debug)]
pub struct RecordingObserver {
    start: Instant,
    records: Vec<Record>,
}

impl Default for RecordingObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordingObserver {
    /// Creates an empty recorder; timestamps are measured from this call.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            records: Vec::new(),
        }
    }

    fn now(&self) -> Duration {
        self.start.elapsed()
    }

    /// Every recorded callback, in arrival order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The recorded events only, in arrival order.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.records.iter().filter_map(|r| match r {
            Record::Event { event, .. } => Some(event),
            _ => None,
        })
    }

    /// Number of recorded [`Event::RangeQuery`]s.
    pub fn range_query_count(&self) -> u64 {
        self.events()
            .filter(|e| matches!(e, Event::RangeQuery { .. }))
            .count() as u64
    }

    /// θ recomputed from the recorded range-query events.
    pub fn theta(&self, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            self.range_query_count() as f64 / n as f64
        }
    }

    /// Replays the recorded events into cost counters (see
    /// [`ReplayCounts`]); these must match the run's `DbsvecStats` exactly.
    pub fn replay(&self) -> ReplayCounts {
        ReplayCounts::from_events(self.events())
    }

    /// Aggregated wall-clock totals per phase. Spans are matched LIFO;
    /// `self_time` subtracts the time spent in nested spans, so summing
    /// `self_time` over all phases gives total observed time without
    /// double-counting.
    ///
    /// # Panics
    ///
    /// Panics if the record stream violates span discipline (an exit
    /// without a matching enter) — that is an instrumentation bug.
    pub fn phase_timings(&self) -> Vec<(Phase, PhaseTimings)> {
        let mut totals: Vec<(Phase, PhaseTimings)> = Vec::new();
        let index = |phase: Phase, totals: &mut Vec<(Phase, PhaseTimings)>| -> usize {
            match totals.iter().position(|(p, _)| *p == phase) {
                Some(i) => i,
                None => {
                    totals.push((phase, PhaseTimings::default()));
                    totals.len() - 1
                }
            }
        };
        // Stack of (phase, entered_at, nested_time_accumulated).
        let mut stack: Vec<(Phase, Duration, Duration)> = Vec::new();
        for record in &self.records {
            match record {
                Record::Enter { phase, at } => stack.push((*phase, *at, Duration::ZERO)),
                Record::Exit { phase, at } => {
                    let (entered, start, nested) =
                        stack.pop().expect("span exit without matching enter");
                    assert_eq!(entered, *phase, "span exit out of LIFO order");
                    let total = at.saturating_sub(start);
                    let i = index(*phase, &mut totals);
                    totals[i].1.spans += 1;
                    totals[i].1.total += total;
                    totals[i].1.self_time += total.saturating_sub(nested);
                    if let Some(parent) = stack.last_mut() {
                        parent.2 += total;
                    }
                }
                Record::Event { .. } => {}
            }
        }
        totals
    }

    /// Timings for one phase (zeros if it never ran).
    pub fn phase(&self, phase: Phase) -> PhaseTimings {
        self.phase_timings()
            .into_iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, t)| t)
            .unwrap_or_default()
    }
}

impl Observer for RecordingObserver {
    fn span_enter(&mut self, phase: Phase) {
        let at = self.now();
        self.records.push(Record::Enter { phase, at });
    }

    fn span_exit(&mut self, phase: Phase) {
        let at = self.now();
        self.records.push(Record::Exit { phase, at });
    }

    fn event(&mut self, event: &Event) {
        let at = self.now();
        self.records.push(Record::Event {
            event: event.clone(),
            at,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_replays_counts() {
        let mut obs = RecordingObserver::new();
        obs.span_enter(Phase::Init);
        obs.event(&Event::RangeQuery {
            probe: 0,
            result_len: 5,
        });
        obs.event(&Event::Seed {
            point: 0,
            neighborhood_len: 5,
        });
        obs.event(&Event::RangeQuery {
            probe: 3,
            result_len: 2,
        });
        obs.span_exit(Phase::Init);
        assert_eq!(obs.records().len(), 5);
        assert_eq!(obs.range_query_count(), 2);
        assert!((obs.theta(10) - 0.2).abs() < 1e-12);
        let replay = obs.replay();
        assert_eq!(replay.range_queries, 2);
        assert_eq!(replay.seeds, 1);
    }

    #[test]
    fn nested_spans_split_self_time() {
        let mut obs = RecordingObserver::new();
        obs.span_enter(Phase::Init);
        obs.span_enter(Phase::SvExpand);
        obs.span_enter(Phase::SvddTrain);
        std::thread::sleep(Duration::from_millis(2));
        obs.span_exit(Phase::SvddTrain);
        obs.span_exit(Phase::SvExpand);
        obs.span_exit(Phase::Init);

        let init = obs.phase(Phase::Init);
        let train = obs.phase(Phase::SvddTrain);
        assert_eq!(init.spans, 1);
        assert_eq!(train.spans, 1);
        // Outer total includes the inner sleep; outer self-time excludes it.
        assert!(init.total >= train.total);
        assert!(init.self_time <= init.total - train.total + Duration::from_millis(1));
        // The never-entered phase reports zeros.
        assert_eq!(obs.phase(Phase::Merge), PhaseTimings::default());
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn out_of_order_exit_panics() {
        let mut obs = RecordingObserver::new();
        obs.span_enter(Phase::Init);
        obs.span_enter(Phase::SvExpand);
        obs.records.swap_remove(1); // corrupt the stream: drop the enter
        obs.span_enter(Phase::SvddTrain);
        obs.span_exit(Phase::SvExpand);
        let _ = obs.phase_timings();
    }
}
