//! The observer seam: the trait, the no-op default, and the tee combiner.

use crate::event::{Event, Phase};

/// Receives phase spans and typed events from an instrumented run.
///
/// All methods default to empty bodies, so an observer implements only
/// what it cares about. Instrumented code holds `&mut dyn Observer`;
/// timing is the *observer's* job (each sink stamps callbacks against its
/// own clock), so the no-op path never touches `Instant::now`.
///
/// Span discipline: `span_enter(p)` … `span_exit(p)` pairs nest like
/// parentheses and always close in LIFO order.
pub trait Observer {
    /// A phase span opened.
    fn span_enter(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// The innermost open span (which must be `phase`) closed.
    fn span_exit(&mut self, phase: Phase) {
        let _ = phase;
    }

    /// A typed event fired inside whatever spans are open.
    fn event(&mut self, event: &Event) {
        let _ = event;
    }
}

impl<T: Observer + ?Sized> Observer for &mut T {
    fn span_enter(&mut self, phase: Phase) {
        (**self).span_enter(phase);
    }

    fn span_exit(&mut self, phase: Phase) {
        (**self).span_exit(phase);
    }

    fn event(&mut self, event: &Event) {
        (**self).event(event);
    }
}

/// `None` behaves like [`NoopObserver`] — lets optional sinks (e.g. a
/// `--trace` file that may not be requested) slot into a [`Tee`].
impl<T: Observer> Observer for Option<T> {
    fn span_enter(&mut self, phase: Phase) {
        if let Some(obs) = self {
            obs.span_enter(phase);
        }
    }

    fn span_exit(&mut self, phase: Phase) {
        if let Some(obs) = self {
            obs.span_exit(phase);
        }
    }

    fn event(&mut self, event: &Event) {
        if let Some(obs) = self {
            obs.event(event);
        }
    }
}

/// The zero-cost default observer: every callback is an empty body the
/// inliner erases at the call site.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Fans one instrumented run out to two observers (record *and* trace).
/// Compose nested `Tee`s for more.
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for Tee<A, B> {
    fn span_enter(&mut self, phase: Phase) {
        self.0.span_enter(phase);
        self.1.span_enter(phase);
    }

    fn span_exit(&mut self, phase: Phase) {
        self.0.span_exit(phase);
        self.1.span_exit(phase);
    }

    fn event(&mut self, event: &Event) {
        self.0.event(event);
        self.1.event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counter {
        enters: usize,
        exits: usize,
        events: usize,
    }

    impl Observer for Counter {
        fn span_enter(&mut self, _: Phase) {
            self.enters += 1;
        }
        fn span_exit(&mut self, _: Phase) {
            self.exits += 1;
        }
        fn event(&mut self, _: &Event) {
            self.events += 1;
        }
    }

    #[test]
    fn noop_observer_accepts_everything() {
        let mut obs = NoopObserver;
        obs.span_enter(Phase::Init);
        obs.event(&Event::RangeQuery {
            probe: 0,
            result_len: 3,
        });
        obs.span_exit(Phase::Init);
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = Tee(Counter::default(), Counter::default());
        let obs: &mut dyn Observer = &mut tee;
        obs.span_enter(Phase::Init);
        obs.event(&Event::Merge {
            existing: 0,
            expanding: 1,
        });
        obs.span_exit(Phase::Init);
        for side in [&tee.0, &tee.1] {
            assert_eq!(side.enters, 1);
            assert_eq!(side.exits, 1);
            assert_eq!(side.events, 1);
        }
    }
}
