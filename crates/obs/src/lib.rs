//! Run-trace and phase-profiling observability for the DBSVEC workspace.
//!
//! The paper's central claim (§III-D, Table II) is a *cost* claim — DBSVEC
//! issues `s + 1 + k + m + MinPts·l ≪ n` range queries. This crate makes
//! that cost observable while a run is happening, for DBSVEC and for every
//! baseline, under one schema:
//!
//! * [`Observer`] — the trait instrumented algorithms report into:
//!   span-style phase timing ([`Phase`]) plus typed [`Event`]s for range
//!   queries, expansion rounds, SMO solves, merges, and noise verdicts.
//! * [`NoopObserver`] — the default; every callback is an empty inlineable
//!   body, so un-observed runs pay nothing.
//! * [`RecordingObserver`] — in-memory, queryable: phase timings, event
//!   slices, and [`ReplayCounts`] reconstruction for tests and `--profile`.
//! * [`JsonlSink`] — streams every callback as one JSON object per line to
//!   any `io::Write` (the CLI's `--trace out.jsonl`).
//! * [`Tee`] — fan out one instrumented run to two observers (e.g. record
//!   *and* trace).
//! * [`ProfileReport`] — renders the phase-time + θ breakdown table.
//! * [`telemetry`] — serving metrics: a [`Registry`] of named counters,
//!   gauges, and log-linear latency [`Histogram`]s; Prometheus/JSON
//!   exposition; and a [`MetricsObserver`] bridging this trait seam into
//!   the registry.
//! * [`json`] — the hand-rolled JSON value writer everything above (and
//!   the bench harness's `BENCH_*.json` output) shares. No external
//!   dependencies anywhere in this crate.
//!
//! Why a trait-object seam instead of `tracing` is discussed in
//! `DESIGN.md`; the short version: the observer vocabulary *is* the
//! paper's cost model, the zero dependency rule keeps the workspace
//! offline-buildable, and `&mut dyn Observer` monomorphizes nothing.

pub mod event;
pub mod json;
pub mod jsonl;
pub mod observer;
pub mod recording;
pub mod replay;
pub mod report;
pub mod telemetry;

pub use event::{Event, HttpStages, Phase};
pub use json::Json;
pub use jsonl::JsonlSink;
pub use observer::{NoopObserver, Observer, Tee};
pub use recording::{PhaseTimings, Record, RecordingObserver};
pub use replay::ReplayCounts;
pub use report::ProfileReport;
pub use telemetry::{Histogram, HistogramSummary, MetricsObserver, Registry};
