//! Online-serving semantics: assignment must agree with the brute-force
//! nearest-core-within-ε rule, and ingesting points the model was trained
//! on must never change anything.

use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::gaussian_mixture;
use dbsvec_engine::{Assignment, Engine, IngestOutcome, ModelArtifact};
use dbsvec_geometry::{squared_euclidean, PointSet};

fn fitted(seed: u64) -> (PointSet, dbsvec_core::DbsvecResult, f64, u32) {
    let data = gaussian_mixture(800, 2, 3, 400.0, 1e5, seed);
    let min_pts = 6;
    let eps = dbsvec_datasets::standins::suggest_eps(&data.points, min_pts, seed);
    let fit = Dbsvec::new(DbsvecConfig::new(eps, min_pts)).fit(&data.points);
    (data.points, fit, eps, min_pts as u32)
}

/// Brute force: cluster of the nearest core within ε, else noise.
fn brute_force(artifact: &ModelArtifact, x: &[f64]) -> Assignment {
    let mut best: Option<(f64, u32)> = None;
    let eps_sq = artifact.eps * artifact.eps;
    for (i, core) in artifact.cores.iter() {
        let d = squared_euclidean(core, x);
        if d <= eps_sq && best.map_or(true, |(bd, _)| d < bd) {
            best = Some((d, artifact.core_labels[i as usize]));
        }
    }
    match best {
        Some((_, label)) => Assignment::Cluster(label),
        None => Assignment::Noise,
    }
}

#[test]
fn assign_agrees_with_brute_force_on_random_queries() {
    for seed in [3, 17, 91] {
        let (points, fit, eps, min_pts) = fitted(seed);
        let artifact =
            ModelArtifact::from_fit(&points, fit.labels(), fit.core_points(), eps, min_pts)
                .unwrap();
        let engine = Engine::new(&artifact);

        // Query on training points, perturbed copies, and far-out noise.
        let mut rng = dbsvec_geometry::rng::SplitMix64::new(seed * 1000 + 1);
        let mut queries = PointSet::new(2);
        for (_, p) in points.iter() {
            queries.push(p);
        }
        for _ in 0..500 {
            let q = [(rng.next_f64() - 0.5) * 3e5, (rng.next_f64() - 0.5) * 3e5];
            queries.push(&q);
        }
        for i in 0..queries.len() {
            let q = queries.point(i as u32);
            assert_eq!(
                engine.classify(q),
                brute_force(&artifact, q),
                "seed {seed}, query {i}"
            );
        }
    }
}

#[test]
fn batch_fan_out_agrees_with_brute_force() {
    let (points, fit, eps, min_pts) = fitted(5);
    let artifact =
        ModelArtifact::from_fit(&points, fit.labels(), fit.core_points(), eps, min_pts).unwrap();
    let mut engine = Engine::new(&artifact);
    let expected: Vec<Assignment> = (0..points.len())
        .map(|i| brute_force(&artifact, points.point(i as u32)))
        .collect();
    for threads in [1, 2, 4] {
        assert_eq!(
            engine.assign_batch(&points, threads),
            expected,
            "{threads} threads"
        );
    }
}

#[test]
fn ingesting_the_training_set_changes_no_labels() {
    let (points, fit, eps, min_pts) = fitted(29);
    let artifact =
        ModelArtifact::from_fit(&points, fit.labels(), fit.core_points(), eps, min_pts).unwrap();
    let mut engine = Engine::new(&artifact);

    // Labels of every training point before any ingest.
    let before: Vec<Assignment> = (0..points.len())
        .map(|i| engine.classify(points.point(i as u32)))
        .collect();
    let clusters_before = engine.num_clusters();
    let cores_before = engine.core_count();

    // Stream the whole training set through ingest. The engine tracks a
    // subset of the training points, so its density counts are
    // *underestimates* of the true |N_ε|. A promotion on an underestimate
    // means the point is genuinely dense — DBSVEC just never verified it
    // during the fit (it was absorbed from a core SV's neighborhood
    // without its own range query). Such promotions are allowed; what must
    // NOT happen is any topology change: a genuinely-dense training point
    // always lies within ε of a verified core of its own cluster, so no
    // promotion may spawn a cluster or merge two.
    for (_, p) in points.iter() {
        let outcome = engine.ingest(p);
        if matches!(outcome, IngestOutcome::Core { .. }) {
            // Promoted at ingest ⇒ it had a core within ε, same cluster.
            assert!(engine.num_clusters() == clusters_before);
        }
    }

    assert_eq!(engine.num_clusters(), clusters_before);
    assert_eq!(engine.stats().merges, 0, "no merges from training data");
    assert_eq!(engine.stats().new_clusters, 0, "no spawned clusters");
    assert_eq!(
        engine.core_count() as u64,
        cores_before as u64 + engine.stats().promotions
    );
    // Every fitted core point re-arrived as an exact duplicate.
    assert_eq!(engine.stats().duplicates as usize, cores_before);

    // Labels must be unchanged. The only tolerated difference is a border
    // tie-break: a point that was within ε of cores of its cluster may now
    // be *nearer* to a promoted core — but promoted cores carry the label
    // of their own cluster, so even that cannot flip a label here, and
    // noise can never become clustered (noise has no dense point within ε,
    // by the paper's Theorems 2–3).
    let after: Vec<Assignment> = (0..points.len())
        .map(|i| engine.classify(points.point(i as u32)))
        .collect();
    for i in 0..before.len() {
        match (before[i], after[i]) {
            (a, b) if a == b => {}
            (Assignment::Cluster(a), Assignment::Cluster(b)) => {
                panic!("point {i} flipped cluster {a} -> {b}")
            }
            (a, b) => panic!("point {i} changed noise status: {a:?} -> {b:?}"),
        }
    }
}

#[test]
fn training_labels_are_reproduced_modulo_border_ties() {
    let (points, fit, eps, min_pts) = fitted(41);
    let artifact =
        ModelArtifact::from_fit(&points, fit.labels(), fit.core_points(), eps, min_pts).unwrap();
    let engine = Engine::new(&artifact);
    let eps_sq = eps * eps;

    let core_set: std::collections::HashSet<u32> = fit.core_points().iter().copied().collect();
    for (i, p) in points.iter() {
        let fitted_label = fit.labels().get(i as usize);
        match engine.classify(p) {
            Assignment::Noise => {
                // Noise must match exactly: both rules are "no core within ε".
                assert_eq!(fitted_label, None, "point {i} was clustered by the fit");
            }
            Assignment::Cluster(c) => {
                if core_set.contains(&i) {
                    // Core points must keep their exact label.
                    assert_eq!(fitted_label, Some(c), "core point {i}");
                } else {
                    // Border points may tie-break between clusters, but the
                    // label must come from *some* core within ε.
                    let reachable: Vec<u32> = artifact
                        .cores
                        .iter()
                        .filter(|(_, core)| squared_euclidean(core, p) <= eps_sq)
                        .map(|(j, _)| artifact.core_labels[j as usize])
                        .collect();
                    assert!(
                        reachable.contains(&c),
                        "border point {i}: label {c} not among reachable {reachable:?}"
                    );
                    assert!(fitted_label.is_some(), "fit called point {i} noise");
                }
            }
        }
    }
}

/// Regression: [`Engine::staleness`] counts the *decremental* drift too.
/// Removals, demotions, and splits each move the model away from its
/// fitted topology exactly like promotions and merges do — a removal-only
/// workload must push staleness toward the refit threshold, and a missed
/// removal must not.
#[test]
fn staleness_counts_removals_demotions_and_splits() {
    // Two 3×3 unit grids (ε 1.2, MinPts 3): 18 fitted cores, 2 clusters.
    let mut cores = PointSet::new(2);
    let mut labels = Vec::new();
    for (x0, label) in [(0.0, 0), (6.0, 1)] {
        for x in 0..3 {
            for y in 0..3 {
                cores.push(&[x0 + x as f64, y as f64]);
                labels.push(label);
            }
        }
    }
    let artifact = ModelArtifact {
        eps: 1.2,
        min_pts: 3,
        num_clusters: 2,
        cores,
        core_labels: labels,
        boundaries: None,
        quality: None,
        sampling: None,
    };
    let mut engine = Engine::new(&artifact);
    assert_eq!(engine.staleness(), 0.0);

    // A plain core removal is one unit of drift over 18 fitted cores.
    assert!(matches!(
        engine.remove(&[0.0, 0.0]),
        dbsvec_engine::RemoveOutcome::Removed { .. }
    ));
    assert_eq!(engine.staleness(), 1.0 / 18.0);
    // A miss is not drift.
    assert_eq!(
        engine.remove(&[50.0, 50.0]),
        dbsvec_engine::RemoveOutcome::NotFound
    );
    assert_eq!(engine.staleness(), 1.0 / 18.0);

    // Bridge the grids (3 promotions + 2 merges), then tear the keystone
    // out (1 removal + 2 demotions + 1 split, leaving 2 buffered): every
    // term of the drift sum is now exercised.
    for p in [[3.0, 1.0], [5.0, 1.0], [4.0, 1.0]] {
        engine.ingest(&p);
    }
    assert_eq!(engine.staleness(), (1 + 3 + 2) as f64 / 18.0);
    assert_eq!(
        engine.remove(&[4.0, 1.0]),
        dbsvec_engine::RemoveOutcome::Removed {
            was_core: true,
            demoted: 2,
            splits: 1,
        }
    );
    let stats = engine.stats();
    assert_eq!(
        (stats.removals, stats.demotions, stats.splits),
        (2, 2, 1),
        "decremental counters feed the drift sum"
    );
    assert_eq!(engine.staleness(), (2 + 2 + 1 + 3 + 2 + 2) as f64 / 18.0);
}
