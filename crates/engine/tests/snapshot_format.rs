//! Snapshot-format guarantees: a byte-level golden file, bit-stable
//! round-trips (including through a real fit with boundaries), and typed
//! rejection of every corruption mode.

use dbsvec_core::{Dbsvec, DbsvecConfig};
use dbsvec_datasets::gaussian_mixture;
use dbsvec_engine::{
    snapshot, Engine, ModelArtifact, QualityBaseline, SampledMode, SamplingInfo, SnapshotError,
    FORMAT_VERSION, MAGIC,
};
use dbsvec_geometry::PointSet;
use dbsvec_obs::Histogram;

/// Encoding of `tiny_artifact()` as produced by format version 3 (no
/// baseline, no sampling: byte-identical to the version-1 and version-2
/// encodings except the version field). If this test breaks, either the
/// format changed silently (bump `FORMAT_VERSION`!) or the encoder
/// regressed.
const GOLDEN_HEX: &str = "894442534d0d0a1a03000000a731e52b2f93af2b\
                          01000000020000000200000002000000000000000000f03f00000000\
                          0000000000000000000000000000f03f\
                          0000000001000000";

/// The same artifact as written by format version 1 (two releases back):
/// identical payload and checksum, version field 1. Pins backward
/// compatibility — this build must keep decoding it.
const GOLDEN_V1_HEX: &str = "894442534d0d0a1a01000000a731e52b2f93af2b\
                             01000000020000000200000002000000000000000000f03f00000000\
                             0000000000000000000000000000f03f\
                             0000000001000000";

/// The same artifact as written by format version 2 (the previous
/// release): identical payload and checksum, version field 2.
const GOLDEN_V2_HEX: &str = "894442534d0d0a1a02000000a731e52b2f93af2b\
                             01000000020000000200000002000000000000000000f03f00000000\
                             0000000000000000000000000000f03f\
                             0000000001000000";

/// Encoding of `tiny_artifact()` + `tiny_quality()`: pins the baseline
/// section's byte layout (flags bit 1, counts, occupancy, sparse
/// histogram, margin-present flag).
const GOLDEN_QUALITY_HEX: &str = "894442534d0d0a1a03000000aa554d7ab6ee0588\
                                  01000000020000000200000002000000000000000000f03f02000000\
                                  0000000000000000000000000000f03f\
                                  0000000001000000\
                                  00000000000000000200000000000000\
                                  0200000001000000000000000100000000000000\
                                  0200000003000000010000000000000052000000010000000000\
                                  00002f0100000000000003000000000000002c01000000000000\
                                  00000000";

fn tiny_artifact() -> ModelArtifact {
    ModelArtifact {
        eps: 1.0,
        min_pts: 2,
        num_clusters: 2,
        cores: PointSet::from_rows(&[vec![0.0], vec![1.0]]),
        core_labels: vec![0, 1],
        boundaries: None,
        quality: None,
        sampling: None,
    }
}

/// A minimal deterministic baseline: one sample per cluster, distances 3
/// and 300 ticks, no noise, no margins.
fn tiny_quality() -> QualityBaseline {
    let mut assign_dist = Histogram::new();
    assign_dist.record(3);
    assign_dist.record(300);
    QualityBaseline {
        occupancy: vec![1, 1],
        noise_points: 0,
        total_points: 2,
        assign_dist,
        margin: None,
    }
}

fn from_hex(hex: &str) -> Vec<u8> {
    let hex: String = hex.chars().filter(|c| !c.is_whitespace()).collect();
    hex.as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

fn golden_bytes() -> Vec<u8> {
    from_hex(GOLDEN_HEX)
}

#[test]
fn golden_bytes_are_stable() {
    assert_eq!(snapshot::encode(&tiny_artifact()), golden_bytes());
}

#[test]
fn golden_bytes_decode() {
    let artifact = snapshot::decode(&golden_bytes()).expect("golden snapshot decodes");
    assert_eq!(artifact, tiny_artifact());
}

#[test]
fn v1_snapshots_still_load_and_upgrade_on_save() {
    let v1 = from_hex(GOLDEN_V1_HEX);
    let artifact = snapshot::decode(&v1).expect("version-1 snapshot decodes");
    assert_eq!(artifact, tiny_artifact());
    assert_eq!(artifact.quality, None, "v1 has no baseline to load");
    // Re-encoding writes the current version; with no baseline the payload
    // (and thus the checksum) is unchanged.
    assert_eq!(snapshot::encode(&artifact), golden_bytes());
}

#[test]
fn v2_snapshots_still_load_and_upgrade_on_save() {
    let v2 = from_hex(GOLDEN_V2_HEX);
    let artifact = snapshot::decode(&v2).expect("version-2 snapshot decodes");
    assert_eq!(artifact, tiny_artifact());
    assert_eq!(artifact.sampling, None, "v2 has no sampling to load");
    assert_eq!(snapshot::encode(&artifact), golden_bytes());
}

#[test]
fn sampled_fit_metadata_round_trips_through_the_format() {
    let artifact = tiny_artifact().with_sampling(SamplingInfo {
        mode: SampledMode::Uniform { rate: 0.5 },
        seed: 20190401,
        candidates: 1,
        total: 2,
    });
    let bytes = snapshot::encode(&artifact);
    let restored = snapshot::decode(&bytes).expect("sampled snapshot decodes");
    assert_eq!(restored, artifact);
    assert_eq!(snapshot::encode(&restored), bytes);
    // The sampling section rides behind flag bit 2, which pre-v3 readers
    // reject rather than misparse.
    let mut as_v2 = bytes.clone();
    as_v2[8..12].copy_from_slice(&2u32.to_le_bytes());
    assert!(matches!(
        snapshot::decode(&as_v2),
        Err(SnapshotError::Invalid(_))
    ));
}

#[test]
fn quality_golden_bytes_are_stable_and_decode() {
    let mut artifact = tiny_artifact();
    artifact.quality = Some(tiny_quality());
    let bytes = snapshot::encode(&artifact);
    assert_eq!(
        bytes,
        from_hex(GOLDEN_QUALITY_HEX),
        "baseline section layout changed; got:\n{}",
        bytes.iter().map(|b| format!("{b:02x}")).collect::<String>()
    );
    let restored = snapshot::decode(&bytes).expect("quality snapshot decodes");
    assert_eq!(restored, artifact);
}

#[test]
fn v1_rejects_the_quality_flag() {
    // A version-1 header cannot promise a baseline section: flag bit 1
    // must read as an unknown flag, not as silently-skipped data.
    let mut artifact = tiny_artifact();
    artifact.quality = Some(tiny_quality());
    let mut bytes = snapshot::encode(&artifact);
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(matches!(
        snapshot::decode(&bytes),
        Err(SnapshotError::Invalid(_))
    ));
}

fn fitted_artifact(with_boundaries: bool, with_quality: bool) -> ModelArtifact {
    let data = gaussian_mixture(600, 3, 3, 500.0, 1e5, 7);
    let eps = dbsvec_datasets::standins::suggest_eps(&data.points, 6, 3);
    let fit = Dbsvec::new(DbsvecConfig::new(eps, 6)).fit(&data.points);
    let mut artifact =
        ModelArtifact::from_fit(&data.points, fit.labels(), fit.core_points(), eps, 6).unwrap();
    if with_boundaries {
        artifact = artifact.with_boundaries(&data.points, fit.labels());
    }
    if with_quality {
        artifact = artifact.with_quality(&data.points, fit.labels());
    }
    artifact
}

#[test]
fn round_trip_of_a_real_fit_is_bit_stable() {
    for with_boundaries in [false, true] {
        for with_quality in [false, true] {
            let artifact = fitted_artifact(with_boundaries, with_quality);
            let bytes = snapshot::encode(&artifact);
            let restored = snapshot::decode(&bytes).expect("own encoding decodes");
            assert_eq!(restored, artifact, "model == load(save(model))");
            assert_eq!(
                snapshot::encode(&restored),
                bytes,
                "save→load→save must yield identical bytes \
                 (boundaries={with_boundaries}, quality={with_quality})"
            );
        }
    }
}

/// Decremental maintenance feeds the same format: a snapshot taken after
/// removals, demotions, and splits round-trips bit-stably, and reloading
/// it yields an engine whose own snapshot re-encodes to the same bytes
/// (no golden bump — `Engine::snapshot` emits a plain artifact).
#[test]
fn snapshot_after_deletions_round_trips_bit_stably() {
    let artifact = fitted_artifact(false, false);
    let mut engine = Engine::new(&artifact);
    // Remove a spread of fitted cores (by coordinates) — enough to force
    // demotions and structural repair — then buffer a few strays.
    let victims: Vec<Vec<f64>> = artifact
        .cores
        .iter()
        .step_by(7)
        .take(24)
        .map(|(_, p)| p.to_vec())
        .collect();
    for p in &victims {
        engine.remove(p);
    }
    for i in 0..4 {
        engine.ingest(&[1e6 + i as f64, 1e6, 1e6]);
    }
    let dumped = engine.snapshot();
    assert!(
        dumped.cores.len() < artifact.cores.len(),
        "removals must have thinned the core set"
    );
    let bytes = snapshot::encode(&dumped);
    let restored = snapshot::decode(&bytes).expect("post-deletion snapshot decodes");
    assert_eq!(restored, dumped, "model == load(save(model))");
    assert_eq!(snapshot::encode(&restored), bytes, "save→load→save bytes");
    // Load-dump fixpoint: a fresh engine over the restored artifact
    // reproduces the same snapshot bytes.
    assert_eq!(snapshot::encode(&Engine::new(&restored).snapshot()), bytes);
}

#[test]
fn file_round_trip() {
    let artifact = fitted_artifact(true, true);
    let dir = std::env::temp_dir().join(format!("dbsvec-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.dbm");
    let written = snapshot::write_file(&artifact, &path).expect("writes");
    let (restored, read) = snapshot::read_file(&path).expect("reads");
    assert_eq!(written, read);
    assert_eq!(restored, artifact);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejects_non_snapshot_files() {
    assert!(matches!(
        snapshot::decode(b"x,y\n1.0,2.0\n"),
        Err(SnapshotError::BadMagic)
    ));
    assert!(matches!(
        snapshot::decode(b""),
        Err(SnapshotError::BadMagic)
    ));
    // Right length, wrong bytes.
    let junk = vec![0u8; 64];
    assert!(matches!(
        snapshot::decode(&junk),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn rejects_wrong_version() {
    let mut bytes = snapshot::encode(&tiny_artifact());
    let future = FORMAT_VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    match snapshot::decode(&bytes) {
        Err(SnapshotError::UnsupportedVersion(v)) => assert_eq!(v, future),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn rejects_corrupted_header_and_payload() {
    let good = snapshot::encode(&tiny_artifact());

    // Flip one bit in the magic.
    let mut bad = good.clone();
    bad[0] ^= 1;
    assert!(matches!(
        snapshot::decode(&bad),
        Err(SnapshotError::BadMagic)
    ));

    // Flip one bit in every payload byte position, one at a time.
    for i in MAGIC.len() + 12..good.len() {
        let mut bad = good.clone();
        bad[i] ^= 0x10;
        assert!(
            matches!(
                snapshot::decode(&bad),
                Err(SnapshotError::ChecksumMismatch { .. })
            ),
            "flip at byte {i} must be caught by the checksum"
        );
    }

    // A corrupted checksum itself also fails the comparison.
    let mut bad = good.clone();
    bad[13] ^= 0xff;
    assert!(matches!(
        snapshot::decode(&bad),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
}

#[test]
fn rejects_truncation_at_every_length() {
    let good = snapshot::encode(&fitted_artifact(true, true));
    // Every proper prefix must fail with a typed error — never panic,
    // never succeed.
    for len in 0..good.len() {
        let err = snapshot::decode(&good[..len]).expect_err("prefix must not decode");
        assert!(
            matches!(
                err,
                SnapshotError::BadMagic
                    | SnapshotError::Truncated { .. }
                    | SnapshotError::ChecksumMismatch { .. }
            ),
            "len {len}: unexpected error {err:?}"
        );
    }
}

#[test]
fn rejects_semantic_corruption_with_a_valid_checksum() {
    // Re-encode an artifact whose label is out of range: the decoder's
    // structural pass accepts it, the semantic pass must not.
    let mut artifact = tiny_artifact();
    artifact.core_labels[1] = 9;
    let bytes = snapshot::encode(&artifact);
    assert!(matches!(
        snapshot::decode(&bytes),
        Err(SnapshotError::Invalid(_))
    ));

    // Same for the baseline section: a bookkeeping mismatch the structural
    // pass accepts must fall to the semantic validator.
    let mut artifact = tiny_artifact();
    let mut q = tiny_quality();
    q.total_points += 1;
    artifact.quality = Some(q);
    let bytes = snapshot::encode(&artifact);
    assert!(matches!(
        snapshot::decode(&bytes),
        Err(SnapshotError::Invalid(_))
    ));
}

#[test]
fn errors_display_usefully() {
    let io_free = [
        snapshot::decode(b"nope").unwrap_err().to_string(),
        SnapshotError::UnsupportedVersion(9).to_string(),
        SnapshotError::ChecksumMismatch {
            expected: 1,
            found: 2,
        }
        .to_string(),
        SnapshotError::Truncated {
            needed: 8,
            available: 3,
        }
        .to_string(),
        SnapshotError::Invalid("bad".into()).to_string(),
    ];
    for msg in io_free {
        assert!(!msg.is_empty());
    }
}
