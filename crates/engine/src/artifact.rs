//! The persistable summary of a fitted clustering.
//!
//! [`ModelArtifact`] is the serialization-friendly mirror of
//! [`dbsvec_core::ClusterModel`]: the same core points, labels, and ε, plus
//! the fit's MinPts (the online engine needs it for promotion) and,
//! optionally, one trained SVDD boundary per cluster so a consumer can
//! evaluate the paper's decision function F(x) against a persisted model
//! without re-solving anything.

use dbsvec_core::labels::Clustering;
use dbsvec_core::{ClusterModel, ModelError};
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_svdd::{kernel_width_center_radius, optimal_nu, GaussianKernel, SvddProblem};

/// Multipliers below this are not support vectors (mirrors the solver's
/// internal tolerance, so a persisted boundary evaluates the decision
/// function over exactly the support set the live model uses).
const ALPHA_TOL: f64 = 1e-9;

/// One cluster's SVDD description, reduced to what the decision function
/// needs: support vectors, their multipliers, the kernel width, and the
/// constants `R²` and `αᵀKα`.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterBoundary {
    /// The (compact) cluster this boundary describes.
    pub cluster: u32,
    /// Gaussian kernel width σ the SVDD was trained with.
    pub sigma: f64,
    /// Squared kernel-space radius `R²` of the description sphere.
    pub r_sq: f64,
    /// The constant `αᵀKα` of the decision function.
    pub alpha_k_alpha: f64,
    /// Support vector coordinates (owned — outlives the training set).
    pub sv: PointSet,
    /// Multipliers, aligned with `sv`.
    pub alpha: Vec<f64>,
}

impl ClusterBoundary {
    /// The discrimination function `F(x) = 1 − 2 Σ_i α_i K(x_i, x) + αᵀKα`
    /// (paper Eq. 12), evaluated from the persisted support set.
    pub fn decision(&self, x: &[f64]) -> f64 {
        let kernel = GaussianKernel::from_width(self.sigma);
        let mut cross = 0.0;
        for (i, sv) in self.sv.iter() {
            cross += self.alpha[i as usize] * kernel.eval(sv, x);
        }
        1.0 - 2.0 * cross + self.alpha_k_alpha
    }

    /// Whether `x` lies inside (or on) the description sphere, with the
    /// same tolerance as `SvddModel::contains`.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.decision(x) <= self.r_sq + 1e-9
    }
}

/// A fitted DBSVEC model in persistable form.
///
/// Produced by [`ModelArtifact::from_fit`], written and read by
/// [`crate::snapshot`], and served by [`crate::Engine`].
#[derive(Clone, Debug, PartialEq)]
pub struct ModelArtifact {
    /// The ε the clustering was fitted with (also the assignment radius).
    pub eps: f64,
    /// The MinPts density threshold of the fit.
    pub min_pts: u32,
    /// Number of clusters.
    pub num_clusters: u32,
    /// Coordinates of the verified core points.
    pub cores: PointSet,
    /// Compact cluster id of each core point, aligned with `cores`.
    pub core_labels: Vec<u32>,
    /// Optional per-cluster SVDD boundaries (at most one per cluster;
    /// clusters too small to train on are simply absent).
    pub boundaries: Option<Vec<ClusterBoundary>>,
}

impl ModelArtifact {
    /// Builds an artifact from a finished clustering — the same inputs
    /// [`ClusterModel::new`] takes, plus the fit's MinPts.
    pub fn from_fit(
        points: &PointSet,
        clustering: &Clustering,
        core_ids: &[PointId],
        eps: f64,
        min_pts: u32,
    ) -> Result<Self, ModelError> {
        let model = ClusterModel::new(points, clustering, core_ids, eps)?;
        Ok(Self {
            eps,
            min_pts,
            num_clusters: model.num_clusters() as u32,
            cores: model.cores().clone(),
            core_labels: model.core_labels().to_vec(),
            boundaries: None,
        })
    }

    /// Trains one SVDD per cluster over the full training set and attaches
    /// the resulting boundaries. Clusters with fewer than two members are
    /// skipped (a one-point description sphere carries no information).
    pub fn with_boundaries(mut self, points: &PointSet, clustering: &Clustering) -> Self {
        let dims = points.dims();
        let mut boundaries = Vec::new();
        for (cluster, members) in clustering.cluster_members().iter().enumerate() {
            if members.len() < 2 {
                continue;
            }
            let sigma = kernel_width_center_radius(points, members);
            let nu = optimal_nu(dims, members.len(), self.min_pts as usize);
            let model = SvddProblem::new(points, members, GaussianKernel::from_width(sigma))
                .with_nu(nu)
                .solve();
            let mut sv = PointSet::new(dims);
            let mut alpha = Vec::new();
            for (i, &id) in model.target_ids().iter().enumerate() {
                if model.alphas()[i] > ALPHA_TOL {
                    sv.push(points.point(id));
                    alpha.push(model.alphas()[i]);
                }
            }
            boundaries.push(ClusterBoundary {
                cluster: cluster as u32,
                sigma: model.kernel().sigma(),
                r_sq: model.radius_sq(),
                alpha_k_alpha: model.alpha_k_alpha(),
                sv,
                alpha,
            });
        }
        self.boundaries = Some(boundaries);
        self
    }

    /// Reconstructs the in-memory classification model, re-validating the
    /// stored parts (the snapshot-load path runs through this).
    pub fn model(&self) -> Result<ClusterModel, ModelError> {
        ClusterModel::from_parts(
            self.cores.clone(),
            self.core_labels.clone(),
            self.eps,
            self.num_clusters as usize,
        )
    }

    /// Dimensionality of the model's space.
    pub fn dims(&self) -> usize {
        self.cores.dims()
    }

    /// Semantic validity beyond what the binary decoder can check
    /// structurally: aligned lengths, in-range labels, positive finite
    /// parameters. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.eps.is_finite() && self.eps > 0.0) {
            return Err(format!("eps must be positive and finite, got {}", self.eps));
        }
        if self.min_pts == 0 {
            return Err("min_pts must be at least 1".to_string());
        }
        if self.cores.len() != self.core_labels.len() {
            return Err(format!(
                "{} core points but {} labels",
                self.cores.len(),
                self.core_labels.len()
            ));
        }
        if let Some(&label) = self.core_labels.iter().find(|&&l| l >= self.num_clusters) {
            return Err(format!(
                "core label {label} out of range for {} clusters",
                self.num_clusters
            ));
        }
        if let Some(bounds) = &self.boundaries {
            for b in bounds {
                if b.cluster >= self.num_clusters {
                    return Err(format!(
                        "boundary for cluster {} out of range for {} clusters",
                        b.cluster, self.num_clusters
                    ));
                }
                if b.sv.dims() != self.cores.dims() {
                    return Err(format!(
                        "boundary for cluster {} has dims {}, model has {}",
                        b.cluster,
                        b.sv.dims(),
                        self.cores.dims()
                    ));
                }
                if b.sv.len() != b.alpha.len() {
                    return Err(format!(
                        "boundary for cluster {}: {} support vectors but {} multipliers",
                        b.cluster,
                        b.sv.len(),
                        b.alpha.len()
                    ));
                }
                if !(b.sigma.is_finite() && b.sigma > 0.0) {
                    return Err(format!(
                        "boundary for cluster {} has bad kernel width {}",
                        b.cluster, b.sigma
                    ));
                }
                if !b.r_sq.is_finite() || !b.alpha_k_alpha.is_finite() {
                    return Err(format!(
                        "boundary for cluster {} has non-finite constants",
                        b.cluster
                    ));
                }
                if b.alpha.iter().any(|a| !a.is_finite() || *a < 0.0) {
                    return Err(format!(
                        "boundary for cluster {} has invalid multipliers",
                        b.cluster
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_core::{Dbsvec, DbsvecConfig};

    fn two_blob_fit() -> (PointSet, dbsvec_core::DbsvecResult, f64, u32) {
        let mut ps = PointSet::new(2);
        for i in 0..40 {
            ps.push(&[i as f64 * 0.1, 0.0]);
            ps.push(&[i as f64 * 0.1, 50.0]);
        }
        let eps = 0.5;
        let min_pts: u32 = 4;
        let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts as usize)).fit(&ps);
        assert_eq!(result.num_clusters(), 2);
        (ps, result, eps, min_pts)
    }

    #[test]
    fn from_fit_captures_the_model() {
        let (ps, result, eps, min_pts) = two_blob_fit();
        let artifact =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .expect("valid fit");
        assert_eq!(artifact.num_clusters, 2);
        assert_eq!(artifact.cores.len(), result.core_points().len());
        assert_eq!(artifact.min_pts, min_pts);
        artifact.validate().expect("fresh artifact validates");
        let model = artifact.model().expect("reconstructs");
        assert_eq!(model.core_count(), artifact.cores.len());
    }

    #[test]
    fn boundaries_reproduce_the_live_decision_function() {
        let (ps, result, eps, min_pts) = two_blob_fit();
        let artifact =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .unwrap()
                .with_boundaries(&ps, result.labels());
        let bounds = artifact.boundaries.as_ref().unwrap();
        assert_eq!(bounds.len(), 2);
        for b in bounds {
            // Retrain the same problem and compare decision values.
            let members = result.labels().cluster_members()[b.cluster as usize].clone();
            let sigma = kernel_width_center_radius(&ps, &members);
            let nu = optimal_nu(2, members.len(), min_pts as usize);
            let live = SvddProblem::new(&ps, &members, GaussianKernel::from_width(sigma))
                .with_nu(nu)
                .solve();
            for x in [[1.5, 0.3], [2.0, 49.0], [30.0, 25.0]] {
                let got = b.decision(&x);
                let want = live.decision(&ps, &x);
                assert!(
                    (got - want).abs() < 1e-12,
                    "cluster {}: {got} vs {want}",
                    b.cluster
                );
                assert_eq!(b.contains(&x), live.contains(&ps, &x));
            }
        }
        artifact.validate().expect("boundaries validate");
    }

    #[test]
    fn validate_catches_corruption() {
        let (ps, result, eps, min_pts) = two_blob_fit();
        let good =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .unwrap();

        let mut bad = good.clone();
        bad.eps = f64::NAN;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.min_pts = 0;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.core_labels[0] = 99;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.core_labels.pop();
        assert!(bad.validate().is_err());
    }
}
