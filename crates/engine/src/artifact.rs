//! The persistable summary of a fitted clustering.
//!
//! [`ModelArtifact`] is the serialization-friendly mirror of
//! [`dbsvec_core::ClusterModel`]: the same core points, labels, and ε, plus
//! the fit's MinPts (the online engine needs it for promotion) and,
//! optionally, one trained SVDD boundary per cluster so a consumer can
//! evaluate the paper's decision function F(x) against a persisted model
//! without re-solving anything.

use dbsvec_core::labels::Clustering;
use dbsvec_core::{ClusterModel, ModelError};
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::{KdTree, RangeIndex};
use dbsvec_obs::Histogram;
use dbsvec_svdd::{kernel_width_center_radius, optimal_nu, GaussianKernel, SvddProblem};

/// Multipliers below this are not support vectors (mirrors the solver's
/// internal tolerance, so a persisted boundary evaluates the decision
/// function over exactly the support set the live model uses).
const ALPHA_TOL: f64 = 1e-9;

/// Histogram ticks per ε when recording assign distances. The log-linear
/// histogram counts integers, so continuous distances are fixed-pointed in
/// units of ε/1024 — fine enough that quantization never dominates the
/// octave-level drift comparison, coarse enough that a full ε is only ten
/// octaves.
pub const DIST_TICKS_PER_EPS: f64 = 1024.0;

/// Fixed-point mapping of a distance into histogram ticks, in units of the
/// model's ε (see [`DIST_TICKS_PER_EPS`]).
pub fn distance_ticks(distance: f64, eps: f64) -> u64 {
    let t = (distance / eps) * DIST_TICKS_PER_EPS;
    if t.is_finite() && t > 0.0 {
        t.round() as u64
    } else {
        0
    }
}

/// SVDD margins (`F(x) − R²`) are signed and small; they are clamped to
/// `±MARGIN_CLAMP`, shifted positive, and scaled by
/// [`DIST_TICKS_PER_EPS`] before recording.
pub const MARGIN_CLAMP: f64 = 8.0;

/// Fixed-point mapping of a signed SVDD margin into histogram ticks.
pub fn margin_ticks(margin: f64) -> u64 {
    let m = if margin.is_finite() {
        margin.clamp(-MARGIN_CLAMP, MARGIN_CLAMP)
    } else {
        MARGIN_CLAMP
    };
    ((m + MARGIN_CLAMP) * DIST_TICKS_PER_EPS).round() as u64
}

/// One cluster's SVDD description, reduced to what the decision function
/// needs: support vectors, their multipliers, the kernel width, and the
/// constants `R²` and `αᵀKα`.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterBoundary {
    /// The (compact) cluster this boundary describes.
    pub cluster: u32,
    /// Gaussian kernel width σ the SVDD was trained with.
    pub sigma: f64,
    /// Squared kernel-space radius `R²` of the description sphere.
    pub r_sq: f64,
    /// The constant `αᵀKα` of the decision function.
    pub alpha_k_alpha: f64,
    /// Support vector coordinates (owned — outlives the training set).
    pub sv: PointSet,
    /// Multipliers, aligned with `sv`.
    pub alpha: Vec<f64>,
}

impl ClusterBoundary {
    /// The discrimination function `F(x) = 1 − 2 Σ_i α_i K(x_i, x) + αᵀKα`
    /// (paper Eq. 12), evaluated from the persisted support set.
    pub fn decision(&self, x: &[f64]) -> f64 {
        let kernel = GaussianKernel::from_width(self.sigma);
        let mut cross = 0.0;
        for (i, sv) in self.sv.iter() {
            cross += self.alpha[i as usize] * kernel.eval(sv, x);
        }
        1.0 - 2.0 * cross + self.alpha_k_alpha
    }

    /// Whether `x` lies inside (or on) the description sphere, with the
    /// same tolerance as `SvddModel::contains`.
    pub fn contains(&self, x: &[f64]) -> bool {
        self.decision(x) <= self.r_sq + 1e-9
    }
}

/// Fit-time distribution summary the quality monitor compares live
/// traffic against.
///
/// Captured by [`ModelArtifact::with_quality`] and persisted in snapshot
/// format v2; models without one (old snapshots, fits that skipped the
/// step) serve fine but the monitor degrades to staleness-only mode.
#[derive(Clone, Debug, PartialEq)]
pub struct QualityBaseline {
    /// Points per cluster at fit time, indexed by compact cluster id
    /// (length equals the artifact's `num_clusters`).
    pub occupancy: Vec<u64>,
    /// Points the fit left as noise.
    pub noise_points: u64,
    /// Total points the fit saw (`Σ occupancy + noise_points`).
    pub total_points: u64,
    /// Distance from each clustered training point to its nearest core
    /// *other than itself*, in [`DIST_TICKS_PER_EPS`] ticks — the
    /// leave-one-out version of the quantity serving assignment measures.
    pub assign_dist: Histogram,
    /// SVDD margins `F(x) − R²` of clustered training points against
    /// their own cluster's boundary, in [`margin_ticks`] ticks. Present
    /// only when the artifact carried boundaries at capture time.
    pub margin: Option<Histogram>,
}

impl QualityBaseline {
    /// Per-cluster occupancy shares (fractions of `total_points`).
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total_points.max(1) as f64;
        self.occupancy.iter().map(|&c| c as f64 / total).collect()
    }

    /// Fraction of fit points left as noise.
    pub fn noise_rate(&self) -> f64 {
        self.noise_points as f64 / self.total_points.max(1) as f64
    }

    /// Consistency against the owning artifact (the snapshot decoder
    /// surfaces failures as semantic corruption).
    pub fn validate(&self, num_clusters: u32) -> Result<(), String> {
        if self.occupancy.len() != num_clusters as usize {
            return Err(format!(
                "baseline tracks {} clusters, model has {num_clusters}",
                self.occupancy.len()
            ));
        }
        let clustered = self
            .occupancy
            .iter()
            .try_fold(0u64, |acc, &c| acc.checked_add(c))
            .and_then(|sum| sum.checked_add(self.noise_points));
        if clustered != Some(self.total_points) {
            return Err(format!(
                "baseline occupancy + noise {} != total {}",
                self.noise_points, self.total_points
            ));
        }
        if self.assign_dist.count() > self.total_points {
            return Err(format!(
                "baseline distance histogram holds {} samples for {} points",
                self.assign_dist.count(),
                self.total_points
            ));
        }
        Ok(())
    }
}

/// The subsampling discipline of a sampled fit, as persisted metadata.
///
/// Mirrors `dbsvec_core::SamplingMode` minus the `Exact` arm: an exact
/// fit simply carries no [`SamplingInfo`] at all.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SampledMode {
    /// Independent Bernoulli draw: each point was a core candidate with
    /// probability `rate`.
    Uniform {
        /// Per-point inclusion probability in (0, 1].
        rate: f64,
    },
    /// Greedy farthest-first (k-center) draw of `m` candidates.
    KCenter {
        /// The candidate budget.
        m: u64,
    },
}

/// How the fit that produced this artifact drew its core-candidate
/// subsample.
///
/// Attached by sampled fits so a served model can report its provenance
/// (quality expectations differ between an exact model and one fitted on
/// a 5% subsample); exact fits and pre-v3 snapshots carry `None`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingInfo {
    /// The draw discipline and its parameter.
    pub mode: SampledMode,
    /// Seed of the SplitMix64 stream that made the draw.
    pub seed: u64,
    /// Candidates the draw produced. `0` means the draw collapsed to
    /// full coverage (e.g. uniform at rate 1.0) and the fit took the
    /// exact path.
    pub candidates: u64,
    /// Points in the training set the fit saw.
    pub total: u64,
}

impl SamplingInfo {
    /// Consistency of the persisted metadata (the snapshot decoder
    /// surfaces failures as semantic corruption).
    pub fn validate(&self) -> Result<(), String> {
        match self.mode {
            SampledMode::Uniform { rate } => {
                if !(rate.is_finite() && rate > 0.0 && rate <= 1.0) {
                    return Err(format!("sampling rate must be in (0, 1], got {rate}"));
                }
            }
            SampledMode::KCenter { m } => {
                if m == 0 {
                    return Err("k-center sampling budget must be at least 1".to_string());
                }
            }
        }
        if self.candidates > self.total {
            return Err(format!(
                "sampling drew {} candidates from {} points",
                self.candidates, self.total
            ));
        }
        Ok(())
    }

    /// One-line human description, e.g. `uniform rate 0.05 (seed 7), 4983
    /// of 100000 candidates` — the health and serve summaries print this.
    pub fn describe(&self) -> String {
        let mode = match self.mode {
            SampledMode::Uniform { rate } => format!("uniform rate {rate}"),
            SampledMode::KCenter { m } => format!("k-center m {m}"),
        };
        if self.candidates == 0 {
            format!("{mode} (seed {}), full coverage", self.seed)
        } else {
            format!(
                "{mode} (seed {}), {} of {} candidates",
                self.seed, self.candidates, self.total
            )
        }
    }
}

/// A fitted DBSVEC model in persistable form.
///
/// Produced by [`ModelArtifact::from_fit`], written and read by
/// [`crate::snapshot`], and served by [`crate::Engine`].
#[derive(Clone, Debug, PartialEq)]
pub struct ModelArtifact {
    /// The ε the clustering was fitted with (also the assignment radius).
    pub eps: f64,
    /// The MinPts density threshold of the fit.
    pub min_pts: u32,
    /// Number of clusters.
    pub num_clusters: u32,
    /// Coordinates of the verified core points.
    pub cores: PointSet,
    /// Compact cluster id of each core point, aligned with `cores`.
    pub core_labels: Vec<u32>,
    /// Optional per-cluster SVDD boundaries (at most one per cluster;
    /// clusters too small to train on are simply absent).
    pub boundaries: Option<Vec<ClusterBoundary>>,
    /// Optional fit-time quality baseline for serve-time drift detection.
    pub quality: Option<QualityBaseline>,
    /// How the fit drew its core-candidate subsample (`None` on exact
    /// fits).
    pub sampling: Option<SamplingInfo>,
}

impl ModelArtifact {
    /// Builds an artifact from a finished clustering — the same inputs
    /// [`ClusterModel::new`] takes, plus the fit's MinPts.
    pub fn from_fit(
        points: &PointSet,
        clustering: &Clustering,
        core_ids: &[PointId],
        eps: f64,
        min_pts: u32,
    ) -> Result<Self, ModelError> {
        let model = ClusterModel::new(points, clustering, core_ids, eps)?;
        Ok(Self {
            eps,
            min_pts,
            num_clusters: model.num_clusters() as u32,
            cores: model.cores().clone(),
            core_labels: model.core_labels().to_vec(),
            boundaries: None,
            quality: None,
            sampling: None,
        })
    }

    /// Attaches sampled-fit provenance metadata.
    pub fn with_sampling(mut self, info: SamplingInfo) -> Self {
        self.sampling = Some(info);
        self
    }

    /// Trains one SVDD per cluster over the full training set and attaches
    /// the resulting boundaries. Clusters with fewer than two members are
    /// skipped (a one-point description sphere carries no information).
    pub fn with_boundaries(mut self, points: &PointSet, clustering: &Clustering) -> Self {
        let dims = points.dims();
        let mut boundaries = Vec::new();
        for (cluster, members) in clustering.cluster_members().iter().enumerate() {
            if members.len() < 2 {
                continue;
            }
            let sigma = kernel_width_center_radius(points, members);
            let nu = optimal_nu(dims, members.len(), self.min_pts as usize);
            let model = SvddProblem::new(points, members, GaussianKernel::from_width(sigma))
                .with_nu(nu)
                .solve();
            let mut sv = PointSet::new(dims);
            let mut alpha = Vec::new();
            for (i, &id) in model.target_ids().iter().enumerate() {
                if model.alphas()[i] > ALPHA_TOL {
                    sv.push(points.point(id));
                    alpha.push(model.alphas()[i]);
                }
            }
            boundaries.push(ClusterBoundary {
                cluster: cluster as u32,
                sigma: model.kernel().sigma(),
                r_sq: model.radius_sq(),
                alpha_k_alpha: model.alpha_k_alpha(),
                sv,
                alpha,
            });
        }
        self.boundaries = Some(boundaries);
        self
    }

    /// Captures the fit-time quality baseline: per-cluster occupancy,
    /// noise rate, the leave-one-out distance-to-nearest-core histogram,
    /// and (when boundaries are attached) the SVDD margin histogram.
    ///
    /// Call after [`ModelArtifact::with_boundaries`] if margins should be
    /// part of the baseline.
    pub fn with_quality(mut self, points: &PointSet, clustering: &Clustering) -> Self {
        let tree = KdTree::build(&self.cores);
        let mut assign_dist = Histogram::new();
        let mut hits: Vec<PointId> = Vec::new();
        for (_, x) in points.iter() {
            hits.clear(); // range() appends
            tree.range(x, self.eps, &mut hits);
            // Nearest core other than the point itself: a core point's
            // distance to its own entry is a degenerate 0 that serving
            // traffic (fresh draws) never reproduces.
            let mut best = f64::INFINITY;
            let mut self_skipped = false;
            for &id in &hits {
                let d_sq = self.cores.squared_distance_to(id, x);
                if !self_skipped && d_sq == 0.0 && self.cores.point(id) == x {
                    self_skipped = true;
                    continue;
                }
                best = best.min(d_sq);
            }
            if best.is_finite() {
                assign_dist.record(distance_ticks(best.sqrt(), self.eps));
            }
        }

        let margin = self.boundaries.as_ref().map(|bounds| {
            let mut h = Histogram::new();
            let members = clustering.cluster_members();
            for b in bounds {
                for &id in &members[b.cluster as usize] {
                    let m = b.decision(points.point(id)) - b.r_sq;
                    h.record(margin_ticks(m));
                }
            }
            h
        });

        self.quality = Some(QualityBaseline {
            occupancy: clustering
                .cluster_sizes()
                .iter()
                .map(|&s| s as u64)
                .collect(),
            noise_points: clustering.noise_count() as u64,
            total_points: clustering.len() as u64,
            assign_dist,
            margin,
        });
        self
    }

    /// Reconstructs the in-memory classification model, re-validating the
    /// stored parts (the snapshot-load path runs through this).
    pub fn model(&self) -> Result<ClusterModel, ModelError> {
        ClusterModel::from_parts(
            self.cores.clone(),
            self.core_labels.clone(),
            self.eps,
            self.num_clusters as usize,
        )
    }

    /// Dimensionality of the model's space.
    pub fn dims(&self) -> usize {
        self.cores.dims()
    }

    /// Semantic validity beyond what the binary decoder can check
    /// structurally: aligned lengths, in-range labels, positive finite
    /// parameters. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.eps.is_finite() && self.eps > 0.0) {
            return Err(format!("eps must be positive and finite, got {}", self.eps));
        }
        if self.min_pts == 0 {
            return Err("min_pts must be at least 1".to_string());
        }
        if self.cores.len() != self.core_labels.len() {
            return Err(format!(
                "{} core points but {} labels",
                self.cores.len(),
                self.core_labels.len()
            ));
        }
        if let Some(&label) = self.core_labels.iter().find(|&&l| l >= self.num_clusters) {
            return Err(format!(
                "core label {label} out of range for {} clusters",
                self.num_clusters
            ));
        }
        if let Some(bounds) = &self.boundaries {
            for b in bounds {
                if b.cluster >= self.num_clusters {
                    return Err(format!(
                        "boundary for cluster {} out of range for {} clusters",
                        b.cluster, self.num_clusters
                    ));
                }
                if b.sv.dims() != self.cores.dims() {
                    return Err(format!(
                        "boundary for cluster {} has dims {}, model has {}",
                        b.cluster,
                        b.sv.dims(),
                        self.cores.dims()
                    ));
                }
                if b.sv.len() != b.alpha.len() {
                    return Err(format!(
                        "boundary for cluster {}: {} support vectors but {} multipliers",
                        b.cluster,
                        b.sv.len(),
                        b.alpha.len()
                    ));
                }
                if !(b.sigma.is_finite() && b.sigma > 0.0) {
                    return Err(format!(
                        "boundary for cluster {} has bad kernel width {}",
                        b.cluster, b.sigma
                    ));
                }
                if !b.r_sq.is_finite() || !b.alpha_k_alpha.is_finite() {
                    return Err(format!(
                        "boundary for cluster {} has non-finite constants",
                        b.cluster
                    ));
                }
                if b.alpha.iter().any(|a| !a.is_finite() || *a < 0.0) {
                    return Err(format!(
                        "boundary for cluster {} has invalid multipliers",
                        b.cluster
                    ));
                }
            }
        }
        if let Some(q) = &self.quality {
            q.validate(self.num_clusters)?;
        }
        if let Some(s) = &self.sampling {
            s.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_core::{Dbsvec, DbsvecConfig};

    fn two_blob_fit() -> (PointSet, dbsvec_core::DbsvecResult, f64, u32) {
        let mut ps = PointSet::new(2);
        for i in 0..40 {
            ps.push(&[i as f64 * 0.1, 0.0]);
            ps.push(&[i as f64 * 0.1, 50.0]);
        }
        let eps = 0.5;
        let min_pts: u32 = 4;
        let result = Dbsvec::new(DbsvecConfig::new(eps, min_pts as usize)).fit(&ps);
        assert_eq!(result.num_clusters(), 2);
        (ps, result, eps, min_pts)
    }

    #[test]
    fn from_fit_captures_the_model() {
        let (ps, result, eps, min_pts) = two_blob_fit();
        let artifact =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .expect("valid fit");
        assert_eq!(artifact.num_clusters, 2);
        assert_eq!(artifact.cores.len(), result.core_points().len());
        assert_eq!(artifact.min_pts, min_pts);
        artifact.validate().expect("fresh artifact validates");
        let model = artifact.model().expect("reconstructs");
        assert_eq!(model.core_count(), artifact.cores.len());
    }

    #[test]
    fn boundaries_reproduce_the_live_decision_function() {
        let (ps, result, eps, min_pts) = two_blob_fit();
        let artifact =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .unwrap()
                .with_boundaries(&ps, result.labels());
        let bounds = artifact.boundaries.as_ref().unwrap();
        assert_eq!(bounds.len(), 2);
        for b in bounds {
            // Retrain the same problem and compare decision values.
            let members = result.labels().cluster_members()[b.cluster as usize].clone();
            let sigma = kernel_width_center_radius(&ps, &members);
            let nu = optimal_nu(2, members.len(), min_pts as usize);
            let live = SvddProblem::new(&ps, &members, GaussianKernel::from_width(sigma))
                .with_nu(nu)
                .solve();
            for x in [[1.5, 0.3], [2.0, 49.0], [30.0, 25.0]] {
                let got = b.decision(&x);
                let want = live.decision(&ps, &x);
                assert!(
                    (got - want).abs() < 1e-12,
                    "cluster {}: {got} vs {want}",
                    b.cluster
                );
                assert_eq!(b.contains(&x), live.contains(&ps, &x));
            }
        }
        artifact.validate().expect("boundaries validate");
    }

    #[test]
    fn with_quality_captures_the_fit_distributions() {
        let (ps, result, eps, min_pts) = two_blob_fit();
        let artifact =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .unwrap()
                .with_boundaries(&ps, result.labels())
                .with_quality(&ps, result.labels());
        let q = artifact.quality.as_ref().expect("baseline captured");
        assert_eq!(q.occupancy.len(), 2);
        assert_eq!(q.total_points, ps.len() as u64);
        assert_eq!(
            q.occupancy.iter().sum::<u64>() + q.noise_points,
            q.total_points
        );
        let shares = q.shares();
        assert!((shares.iter().sum::<f64>() + q.noise_rate() - 1.0).abs() < 1e-12);
        // The blobs are dense lines: every point has a nearby core, and
        // the leave-one-out distances sit well inside ε.
        assert!(q.assign_dist.count() > 0);
        assert!(q.assign_dist.max().unwrap() <= DIST_TICKS_PER_EPS as u64);
        // Boundaries were attached first, so margins are present and the
        // bulk of training points lie inside their sphere (margin <= 0,
        // i.e. ticks at or below the zero offset).
        let margin = q.margin.as_ref().expect("margin histogram");
        assert!(margin.count() > 0);
        let zero = margin_ticks(0.0);
        assert!(margin.quantile(0.5).unwrap() <= zero as f64);
        artifact.validate().expect("baseline validates");
    }

    #[test]
    fn quality_distances_are_leave_one_out() {
        // Regression: `KdTree::range` appends into its output vector, so a
        // hits buffer reused across points used to retain stale copies of a
        // core's own id — the self-skip fired once, the stale duplicate
        // recorded a degenerate zero distance, and the baseline histogram
        // skewed low enough to flag stationary traffic as drifted.
        let (ps, result, eps, min_pts) = two_blob_fit();
        let artifact =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .unwrap()
                .with_quality(&ps, result.labels());
        let q = artifact.quality.as_ref().unwrap();
        // Every point on the 0.1-spaced lines has its nearest *other* core
        // a full grid step away, so the smallest recorded tick sits near
        // distance_ticks(0.1, eps) — and in particular is never zero.
        assert_eq!(q.assign_dist.count(), ps.len() as u64);
        let min = q.assign_dist.min().unwrap();
        assert!(
            min >= distance_ticks(0.1, eps) / 2,
            "degenerate self-distance leaked into the baseline: min tick {min}"
        );
    }

    #[test]
    fn quality_without_boundaries_skips_margins() {
        let (ps, result, eps, min_pts) = two_blob_fit();
        let artifact =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .unwrap()
                .with_quality(&ps, result.labels());
        let q = artifact.quality.as_ref().unwrap();
        assert!(q.margin.is_none());
    }

    #[test]
    fn fixed_point_tick_mappings_are_sane() {
        assert_eq!(distance_ticks(0.0, 0.5), 0);
        assert_eq!(distance_ticks(0.5, 0.5), DIST_TICKS_PER_EPS as u64);
        assert_eq!(distance_ticks(0.25, 0.5), (DIST_TICKS_PER_EPS / 2.0) as u64);
        assert_eq!(distance_ticks(f64::NAN, 0.5), 0);
        assert_eq!(
            margin_ticks(0.0),
            (MARGIN_CLAMP * DIST_TICKS_PER_EPS) as u64
        );
        assert_eq!(margin_ticks(-1e9), 0);
        assert_eq!(
            margin_ticks(1e9),
            (2.0 * MARGIN_CLAMP * DIST_TICKS_PER_EPS) as u64
        );
        assert!(margin_ticks(-0.5) < margin_ticks(0.0));
        assert!(margin_ticks(0.5) > margin_ticks(0.0));
    }

    #[test]
    fn sampling_metadata_validates_and_describes() {
        let (ps, result, eps, min_pts) = two_blob_fit();
        let artifact =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .unwrap();
        assert!(artifact.sampling.is_none(), "exact fits carry no metadata");

        let info = SamplingInfo {
            mode: SampledMode::Uniform { rate: 0.25 },
            seed: 7,
            candidates: 20,
            total: 80,
        };
        let sampled = artifact.clone().with_sampling(info);
        sampled.validate().expect("sampled metadata validates");
        assert_eq!(
            info.describe(),
            "uniform rate 0.25 (seed 7), 20 of 80 candidates"
        );
        let full = SamplingInfo {
            mode: SampledMode::KCenter { m: 99 },
            seed: 1,
            candidates: 0,
            total: 80,
        };
        assert_eq!(full.describe(), "k-center m 99 (seed 1), full coverage");

        let mut bad = sampled.clone();
        bad.sampling.as_mut().unwrap().mode = SampledMode::Uniform { rate: 1.5 };
        assert!(bad.validate().is_err());
        let mut bad = sampled.clone();
        bad.sampling.as_mut().unwrap().mode = SampledMode::KCenter { m: 0 };
        assert!(bad.validate().is_err());
        let mut bad = sampled;
        bad.sampling.as_mut().unwrap().candidates = 81;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_catches_corruption() {
        let (ps, result, eps, min_pts) = two_blob_fit();
        let good =
            ModelArtifact::from_fit(&ps, result.labels(), result.core_points(), eps, min_pts)
                .unwrap();

        let mut bad = good.clone();
        bad.eps = f64::NAN;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.min_pts = 0;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.core_labels[0] = 99;
        assert!(bad.validate().is_err());

        let mut bad = good.clone();
        bad.core_labels.pop();
        assert!(bad.validate().is_err());

        // Baseline corruption is caught too.
        let with_q = good.clone().with_quality(&ps, result.labels());
        let mut bad = with_q.clone();
        bad.quality.as_mut().unwrap().occupancy.pop();
        assert!(bad.validate().is_err());
        let mut bad = with_q.clone();
        bad.quality.as_mut().unwrap().total_points += 1;
        assert!(bad.validate().is_err());
        let mut bad = with_q;
        let q = bad.quality.as_mut().unwrap();
        for _ in 0..=q.total_points {
            q.assign_dist.record(1);
        }
        assert!(bad.validate().is_err());
    }
}
