//! Persistent model artifacts and an online serving engine for DBSVEC.
//!
//! The paper's fitted state — core points, their cluster labels, ε/MinPts,
//! and per-cluster SVDD boundaries — is everything needed to classify new
//! observations without re-clustering. This crate makes that state
//! *operational*:
//!
//! * [`ModelArtifact`] ([`artifact`]) — the persistable summary of a fit,
//!   built with [`ModelArtifact::from_fit`] and optionally enriched with
//!   trained boundaries via [`ModelArtifact::with_boundaries`];
//! * [`snapshot`] — a versioned, checksummed, dependency-free binary
//!   format (`.dbm`) that round-trips an artifact bit-for-bit;
//! * [`Engine`] ([`engine`]) — an online ingest/assign server: nearest
//!   core-within-ε assignment off a kd-tree, streaming ingest with
//!   MinPts-gated core promotion and union–find merging, scoped-thread
//!   batch fan-out, and a staleness heuristic that recommends re-fitting;
//! * [`EngineMetrics`] ([`metrics`]) — a pre-wired telemetry registry:
//!   counters mirroring [`EngineStats`], health gauges mirroring
//!   [`HealthSnapshot`], and per-call latency histograms filled by the
//!   engine's `*_metered` methods. Exposed as Prometheus text or JSON via
//!   `dbsvec_obs::telemetry::expo`;
//! * [`QualityMonitor`] ([`monitor`]) — online drift detection: the fit
//!   records a [`QualityBaseline`] into the artifact, the monitor windows
//!   live traffic into the same distributions and scores histogram,
//!   occupancy, and noise-rate drift, feeding
//!   [`Engine::health_with`](engine::Engine::health_with) refit evidence
//!   beyond staleness.
//!
//! Everything observes through the `dbsvec-obs` seam (`Assign`, `Ingest`,
//! `Promote`, `SnapshotWrite`/`SnapshotLoad` events under the `serve`
//! phase), so traces and profiles cover serving exactly like fitting.
//!
//! ```
//! use dbsvec_core::{Dbsvec, DbsvecConfig};
//! use dbsvec_engine::{snapshot, Assignment, Engine, ModelArtifact};
//! use dbsvec_geometry::PointSet;
//!
//! let mut ps = PointSet::new(2);
//! for i in 0..40 {
//!     ps.push(&[i as f64 * 0.1, 0.0]);
//!     ps.push(&[i as f64 * 0.1, 50.0]);
//! }
//! let fit = Dbsvec::new(DbsvecConfig::new(0.5, 4)).fit(&ps);
//! let artifact =
//!     ModelArtifact::from_fit(&ps, fit.labels(), fit.core_points(), 0.5, 4).unwrap();
//!
//! // Round-trip through the binary snapshot format...
//! let bytes = snapshot::encode(&artifact);
//! let restored = snapshot::decode(&bytes).unwrap();
//!
//! // ...and serve assignments from it.
//! let mut engine = Engine::new(&restored);
//! assert!(matches!(engine.assign(&[2.0, 0.2]), Assignment::Cluster(_)));
//! assert_eq!(engine.assign(&[2.0, 25.0]), Assignment::Noise);
//! ```

pub mod artifact;
pub mod engine;
pub mod metrics;
pub mod monitor;
pub mod snapshot;

pub use artifact::{ClusterBoundary, ModelArtifact, QualityBaseline, SampledMode, SamplingInfo};
pub use engine::{
    Assignment, Engine, EngineConfig, EngineStats, HealthSnapshot, IngestOutcome, RemoveOutcome,
    REFIT_THRESHOLD,
};
pub use metrics::EngineMetrics;
pub use monitor::{DriftSignals, MonitorConfig, QualityMonitor, WindowReport};
pub use snapshot::{SnapshotError, FORMAT_VERSION, MAGIC, MIN_READ_VERSION};
