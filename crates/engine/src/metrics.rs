//! Engine telemetry: a pre-wired [`Registry`] for the serving paths.
//!
//! [`EngineMetrics`] owns a `dbsvec-obs` telemetry registry with every
//! serving metric pre-registered: lifetime counters mirroring
//! [`EngineStats`](crate::EngineStats), health gauges mirroring
//! [`HealthSnapshot`](crate::HealthSnapshot), and per-call latency
//! histograms for assignment and ingest.
//!
//! The split of responsibilities avoids double counting:
//!
//! * **Counters** are never incremented per call. [`EngineMetrics::refresh`]
//!   overwrites them from the engine's own cumulative
//!   [`EngineStats`](crate::EngineStats)
//!   (which is monotone), so the registry always agrees with the engine no
//!   matter how many calls happened between refreshes.
//! * **Gauges** are point-in-time reads of [`Engine::health`], also set by
//!   `refresh`.
//! * **Latency histograms** are the only per-call state, filled by the
//!   engine's `*_metered` methods ([`Engine::assign_metered`],
//!   [`Engine::assign_batch_metered`], [`Engine::ingest_metered`]).
//!   The plain `assign`/`ingest` paths never touch telemetry, so the
//!   disabled-telemetry cost is exactly zero — the bench overhead guard
//!   pins this.
//! * **Snapshot I/O** is counted by explicit
//!   [`EngineMetrics::inc_snapshot_write`] /
//!   [`EngineMetrics::inc_snapshot_load`] calls at the persistence call
//!   sites, because `EngineStats` does not track it.

use std::time::Duration;

use dbsvec_obs::telemetry::{CounterId, GaugeId, Histogram, HistogramId, HistogramMetric};
use dbsvec_obs::Registry;

use crate::engine::Engine;
use crate::monitor::QualityMonitor;

/// A telemetry registry pre-wired with the engine's serving metrics.
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    reg: Registry,
    assigns: CounterId,
    assign_hits: CounterId,
    ingests: CounterId,
    duplicates: CounterId,
    promotions: CounterId,
    new_clusters: CounterId,
    merges: CounterId,
    removals: CounterId,
    remove_misses: CounterId,
    demotions: CounterId,
    splits: CounterId,
    tree_rebuilds: CounterId,
    snapshot_writes: CounterId,
    snapshot_loads: CounterId,
    staleness: GaugeId,
    refit_recommended: GaugeId,
    core_points: GaugeId,
    tail_length: GaugeId,
    clusters: GaugeId,
    buffered_points: GaugeId,
    assign_latency: HistogramId,
    ingest_latency: HistogramId,
    remove_latency: HistogramId,
    split_latency: HistogramId,
    // Quality-monitor metrics, set by `refresh_with_monitor`.
    quality_windows: CounterId,
    drift_alerts: CounterId,
    quality_baseline_present: GaugeId,
    drift_score: GaugeId,
    drift_score_smoothed: GaugeId,
    drift_hist_distance: GaugeId,
    drift_occupancy_shift: GaugeId,
    drift_noise_delta: GaugeId,
    noise_rate_window: GaugeId,
    /// Per-cluster occupancy gauges (`dbsvec_cluster_occupancy_c<N>`),
    /// registered lazily as clusters appear in completed windows.
    cluster_occupancy: Vec<GaugeId>,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineMetrics {
    /// Creates the metrics set with every metric registered under
    /// `dbsvec_*` names.
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let assigns = reg.counter("dbsvec_assigns_total", "Assignments answered.");
        let assign_hits = reg.counter(
            "dbsvec_assign_hits_total",
            "Assignments that landed in a cluster.",
        );
        let ingests = reg.counter(
            "dbsvec_ingests_total",
            "Observations ingested (including duplicates).",
        );
        let duplicates = reg.counter(
            "dbsvec_ingest_duplicates_total",
            "Ingests dropped as exact duplicates.",
        );
        let promotions = reg.counter(
            "dbsvec_promotions_total",
            "Points promoted to core (at ingest or from the buffer).",
        );
        let new_clusters = reg.counter(
            "dbsvec_new_clusters_total",
            "Promotions that spawned a brand-new cluster.",
        );
        let merges = reg.counter(
            "dbsvec_merges_total",
            "Cluster merges caused by promotions.",
        );
        let removals = reg.counter(
            "dbsvec_removals_total",
            "Tracked observations removed (found).",
        );
        let remove_misses = reg.counter(
            "dbsvec_remove_misses_total",
            "Removal requests for untracked points.",
        );
        let demotions = reg.counter(
            "dbsvec_demotions_total",
            "Cores demoted below MinPts by removals.",
        );
        let splits = reg.counter(
            "dbsvec_splits_total",
            "Extra cluster pieces created by removal repairs.",
        );
        let tree_rebuilds = reg.counter(
            "dbsvec_tree_rebuilds_total",
            "Core kd-tree rebuilds folding in the promotion tail.",
        );
        let snapshot_writes = reg.counter(
            "dbsvec_snapshot_writes_total",
            "Model snapshots serialized.",
        );
        let snapshot_loads = reg.counter(
            "dbsvec_snapshot_loads_total",
            "Model snapshots deserialized.",
        );
        let staleness = reg.gauge(
            "dbsvec_staleness_ratio",
            "Accumulated topology drift per fitted core point.",
        );
        let refit_recommended = reg.gauge(
            "dbsvec_refit_recommended",
            "1 when drift passed the re-fit threshold, else 0.",
        );
        let core_points = reg.gauge(
            "dbsvec_core_points",
            "Current core points (fitted + promoted).",
        );
        let tail_length = reg.gauge(
            "dbsvec_tail_length",
            "Promoted cores awaiting the next kd-tree rebuild.",
        );
        let clusters = reg.gauge("dbsvec_clusters", "Current number of clusters.");
        let buffered_points = reg.gauge(
            "dbsvec_buffered_points",
            "Observations buffered below the density threshold.",
        );
        let assign_latency = reg.histogram(
            "dbsvec_assign_latency_seconds",
            "Per-call assignment latency.",
            1e9,
        );
        let ingest_latency = reg.histogram(
            "dbsvec_ingest_latency_seconds",
            "Per-call ingest latency.",
            1e9,
        );
        let remove_latency = reg.histogram(
            "dbsvec_remove_latency_seconds",
            "Per-call removal latency (repair included).",
            1e9,
        );
        let split_latency = reg.histogram(
            "dbsvec_split_repair_latency_seconds",
            "Latency of removals whose repair split a cluster.",
            1e9,
        );
        let quality_windows = reg.counter(
            "dbsvec_quality_windows_total",
            "Quality-monitor tumbling windows completed.",
        );
        let drift_alerts = reg.counter(
            "dbsvec_drift_alerts_total",
            "Windows whose smoothed drift score crossed the threshold.",
        );
        let quality_baseline_present = reg.gauge(
            "dbsvec_quality_baseline_present",
            "1 when the monitor scores against a fit-time baseline, 0 in degraded mode.",
        );
        let drift_score = reg.gauge(
            "dbsvec_drift_score",
            "Raw combined drift score of the last completed window.",
        );
        let drift_score_smoothed = reg.gauge(
            "dbsvec_drift_score_smoothed",
            "EWMA-smoothed drift score (the alerting quantity).",
        );
        let drift_hist_distance = reg.gauge(
            "dbsvec_drift_hist_distance",
            "Assign-distance histogram drift vs the baseline, last window.",
        );
        let drift_occupancy_shift = reg.gauge(
            "dbsvec_drift_occupancy_shift",
            "Occupancy-share total variation vs the baseline, last window.",
        );
        let drift_noise_delta = reg.gauge(
            "dbsvec_drift_noise_delta",
            "Absolute noise-rate change vs the baseline, last window.",
        );
        let noise_rate_window = reg.gauge(
            "dbsvec_noise_rate_window",
            "Noise rate of the last completed window.",
        );
        Self {
            reg,
            assigns,
            assign_hits,
            ingests,
            duplicates,
            promotions,
            new_clusters,
            merges,
            removals,
            remove_misses,
            demotions,
            splits,
            tree_rebuilds,
            snapshot_writes,
            snapshot_loads,
            staleness,
            refit_recommended,
            core_points,
            tail_length,
            clusters,
            buffered_points,
            assign_latency,
            ingest_latency,
            remove_latency,
            split_latency,
            quality_windows,
            drift_alerts,
            quality_baseline_present,
            drift_score,
            drift_score_smoothed,
            drift_hist_distance,
            drift_occupancy_shift,
            drift_noise_delta,
            noise_rate_window,
            cluster_occupancy: Vec::new(),
        }
    }

    /// Overwrites counters from the engine's cumulative
    /// [`EngineStats`](crate::EngineStats)
    /// and gauges from its current [`HealthSnapshot`](crate::HealthSnapshot).
    /// Safe to call at any cadence; both sources are authoritative.
    pub fn refresh(&mut self, engine: &Engine) {
        self.refresh_from_parts(engine.stats(), &engine.health());
    }

    /// [`EngineMetrics::refresh`] from already-captured parts. The HTTP
    /// router uses this to publish one aggregate registry over N shards:
    /// it sums the shards' [`EngineStats`](crate::EngineStats) (all
    /// counters are additive) and folds their
    /// [`HealthSnapshot`](crate::HealthSnapshot)s (counts sum, staleness
    /// takes the max, refit ORs) before refreshing.
    pub fn refresh_from_parts(&mut self, s: &crate::EngineStats, h: &crate::HealthSnapshot) {
        self.reg.set_counter(self.assigns, s.assigns);
        self.reg.set_counter(self.assign_hits, s.assign_hits);
        self.reg.set_counter(self.ingests, s.ingests);
        self.reg.set_counter(self.duplicates, s.duplicates);
        self.reg.set_counter(self.promotions, s.promotions);
        self.reg.set_counter(self.new_clusters, s.new_clusters);
        self.reg.set_counter(self.merges, s.merges);
        self.reg.set_counter(self.removals, s.removals);
        self.reg.set_counter(self.remove_misses, s.remove_misses);
        self.reg.set_counter(self.demotions, s.demotions);
        self.reg.set_counter(self.splits, s.splits);
        self.reg.set_counter(self.tree_rebuilds, s.tree_rebuilds);
        self.reg.set(self.staleness, h.staleness);
        self.reg
            .set(self.refit_recommended, f64::from(h.refit_recommended));
        self.reg.set(self.core_points, h.core_points as f64);
        self.reg.set(self.tail_length, h.tail_length as f64);
        self.reg.set(self.clusters, h.clusters as f64);
        self.reg.set(self.buffered_points, h.buffered_points as f64);
    }

    /// [`EngineMetrics::refresh`] plus the quality monitor's state:
    /// window/alert counters, per-signal drift gauges, windowed noise
    /// rate, and lazily registered per-cluster occupancy gauges
    /// (`dbsvec_cluster_occupancy_c<N>`, the registry has no label
    /// support). The refit gauge reflects the combined evidence of
    /// [`Engine::health_with`](crate::Engine::health_with).
    pub fn refresh_with_monitor(&mut self, engine: &Engine, monitor: &QualityMonitor) {
        self.refresh(engine);
        let h = engine.health_with(monitor);
        self.reg
            .set(self.refit_recommended, f64::from(h.refit_recommended));
        self.reg
            .set_counter(self.quality_windows, monitor.windows_completed());
        self.reg.set_counter(self.drift_alerts, monitor.alerts());
        self.reg.set(
            self.quality_baseline_present,
            f64::from(monitor.has_baseline()),
        );
        let s = h.drift;
        self.reg.set(self.drift_score, s.map_or(0.0, |s| s.score));
        self.reg.set(
            self.drift_score_smoothed,
            s.map_or(0.0, |s| s.smoothed_score),
        );
        self.reg
            .set(self.drift_hist_distance, s.map_or(0.0, |s| s.hist_distance));
        self.reg.set(
            self.drift_occupancy_shift,
            s.map_or(0.0, |s| s.occupancy_shift),
        );
        self.reg
            .set(self.drift_noise_delta, s.map_or(0.0, |s| s.noise_delta));
        self.reg.set(
            self.noise_rate_window,
            monitor.window_noise_rate().unwrap_or(0.0),
        );
        let shares = monitor.window_shares();
        while self.cluster_occupancy.len() < shares.len() {
            let c = self.cluster_occupancy.len();
            self.cluster_occupancy.push(self.reg.gauge(
                &format!("dbsvec_cluster_occupancy_c{c}"),
                &format!("Occupancy share of cluster {c} in the last completed window."),
            ));
        }
        for (&id, &share) in self.cluster_occupancy.iter().zip(shares) {
            self.reg.set(id, share);
        }
    }

    /// Records one assignment's wall-clock latency.
    pub fn record_assign(&mut self, d: Duration) {
        self.reg.observe_duration(self.assign_latency, d);
    }

    /// Records one ingest's wall-clock latency.
    pub fn record_ingest(&mut self, d: Duration) {
        self.reg.observe_duration(self.ingest_latency, d);
    }

    /// Records one removal's wall-clock latency.
    pub fn record_remove(&mut self, d: Duration) {
        self.reg.observe_duration(self.remove_latency, d);
    }

    /// Records the latency of a removal whose repair split a cluster.
    pub fn record_split(&mut self, d: Duration) {
        self.reg.observe_duration(self.split_latency, d);
    }

    /// Folds a worker-local histogram of assignment latencies (nanosecond
    /// ticks) into the registry — the merge half of the batch fan-out.
    pub fn merge_assign_latencies(&mut self, local: &Histogram) {
        self.reg.merge_histogram(self.assign_latency, local);
    }

    /// Folds a histogram of ingest latencies (nanosecond ticks) into the
    /// registry — the aggregation half of multi-shard exposition.
    pub fn merge_ingest_latencies(&mut self, local: &Histogram) {
        self.reg.merge_histogram(self.ingest_latency, local);
    }

    /// Folds a histogram of removal latencies into the registry.
    pub fn merge_remove_latencies(&mut self, local: &Histogram) {
        self.reg.merge_histogram(self.remove_latency, local);
    }

    /// Folds a histogram of split-repair latencies into the registry.
    pub fn merge_split_latencies(&mut self, local: &Histogram) {
        self.reg.merge_histogram(self.split_latency, local);
    }

    /// Counts one snapshot serialization.
    pub fn inc_snapshot_write(&mut self) {
        self.reg.inc(self.snapshot_writes);
    }

    /// Counts one snapshot deserialization.
    pub fn inc_snapshot_load(&mut self) {
        self.reg.inc(self.snapshot_loads);
    }

    /// Overwrites the snapshot I/O counters (for aggregating registries
    /// that sum per-shard counts, matching the overwrite discipline of
    /// [`EngineMetrics::refresh`]).
    pub fn set_snapshot_counts(&mut self, writes: u64, loads: u64) {
        self.reg.set_counter(self.snapshot_writes, writes);
        self.reg.set_counter(self.snapshot_loads, loads);
    }

    /// The assignment-latency histogram.
    pub fn assign_latency(&self) -> &HistogramMetric {
        self.reg.histogram_at(self.assign_latency)
    }

    /// The ingest-latency histogram.
    pub fn ingest_latency(&self) -> &HistogramMetric {
        self.reg.histogram_at(self.ingest_latency)
    }

    /// The removal-latency histogram.
    pub fn remove_latency(&self) -> &HistogramMetric {
        self.reg.histogram_at(self.remove_latency)
    }

    /// The split-repair-latency histogram.
    pub fn split_latency(&self) -> &HistogramMetric {
        self.reg.histogram_at(self.split_latency)
    }

    /// The underlying registry (for exposition).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Mutable registry access (to add process-level metrics alongside).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ModelArtifact;
    use dbsvec_geometry::PointSet;

    fn two_cluster_artifact() -> ModelArtifact {
        let mut cores = PointSet::new(2);
        let mut labels = Vec::new();
        for i in 0..5 {
            cores.push(&[i as f64, 0.0]);
            labels.push(0);
        }
        for i in 0..5 {
            cores.push(&[i as f64, 100.0]);
            labels.push(1);
        }
        ModelArtifact {
            eps: 1.5,
            min_pts: 3,
            num_clusters: 2,
            cores,
            core_labels: labels,
            boundaries: None,
            quality: None,
            sampling: None,
        }
    }

    #[test]
    fn refresh_mirrors_stats_and_health() {
        let mut engine = Engine::new(&two_cluster_artifact());
        let mut m = EngineMetrics::new();
        engine.assign(&[2.0, 0.5]);
        engine.assign(&[2.0, 50.0]);
        engine.ingest(&[2.0, 0.5]);
        m.refresh(&engine);
        let reg = m.registry();
        assert_eq!(reg.counter_value("dbsvec_assigns_total"), Some(2));
        assert_eq!(reg.counter_value("dbsvec_assign_hits_total"), Some(1));
        assert_eq!(reg.counter_value("dbsvec_ingests_total"), Some(1));
        assert_eq!(reg.counter_value("dbsvec_promotions_total"), Some(1));
        assert_eq!(reg.gauge_value("dbsvec_core_points"), Some(11.0));
        assert_eq!(reg.gauge_value("dbsvec_clusters"), Some(2.0));
        assert_eq!(
            reg.gauge_value("dbsvec_staleness_ratio"),
            Some(engine.staleness())
        );
        // Refresh is idempotent — counters come from a cumulative source.
        m.refresh(&engine);
        assert_eq!(m.registry().counter_value("dbsvec_assigns_total"), Some(2));
    }

    #[test]
    fn metered_calls_fill_latency_histograms_and_agree_with_plain() {
        let mut engine = Engine::new(&two_cluster_artifact());
        let mut m = EngineMetrics::new();
        let a = engine.assign_metered(&[2.0, 0.5], &mut m);
        assert_eq!(a, engine.classify(&[2.0, 0.5]));
        let out = engine.ingest_metered(&[2.0, 0.6], &mut m);
        assert!(!matches!(out, crate::IngestOutcome::Duplicate));
        assert_eq!(m.assign_latency().histogram().count(), 1);
        assert_eq!(m.ingest_latency().histogram().count(), 1);
        assert!(m.assign_latency().histogram().p50().is_some());
    }

    #[test]
    fn batch_metered_records_one_sample_per_query_across_threads() {
        let mut engine = Engine::new(&two_cluster_artifact());
        let mut queries = PointSet::new(2);
        for i in 0..100 {
            queries.push(&[(i % 7) as f64, (i % 3) as f64 * 50.0]);
        }
        let expected = engine.assign_batch(&queries, 1);
        for threads in [1, 3] {
            let mut m = EngineMetrics::new();
            let got = engine.assign_batch_metered(&queries, threads, &mut m);
            assert_eq!(got, expected);
            assert_eq!(m.assign_latency().histogram().count(), 100);
        }
    }

    #[test]
    fn fan_out_width_enforces_the_amortization_floor() {
        let floor = Engine::SPAWN_AMORTIZATION_FLOOR;
        // Small batches never fan out, whatever was requested.
        assert_eq!(Engine::fan_out_width(floor - 1, 8), 1);
        assert_eq!(Engine::fan_out_width(1, 8), 1);
        assert_eq!(Engine::fan_out_width(0, 8), 1);
        // threads <= 1 never fans out, whatever the batch size.
        assert_eq!(Engine::fan_out_width(10 * floor, 1), 1);
        assert_eq!(Engine::fan_out_width(10 * floor, 0), 1);
        // Width grows with the batch but each worker keeps >= floor.
        assert_eq!(Engine::fan_out_width(2 * floor, 8), 2);
        assert_eq!(Engine::fan_out_width(8 * floor, 8), 8);
        assert_eq!(Engine::fan_out_width(8 * floor, 4), 4);
    }

    #[test]
    fn assign_many_matches_classify_and_meters_every_row() {
        let mut engine = Engine::new(&two_cluster_artifact());
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64 * 50.0])
            .collect();
        let expected: Vec<_> = rows.iter().map(|r| engine.classify(r)).collect();
        for threads in [1, 4] {
            let mut m = EngineMetrics::new();
            let before = engine.stats().assigns;
            let got = engine.assign_many(&rows, threads, &mut m);
            assert_eq!(got, expected);
            assert_eq!(m.assign_latency().histogram().count(), 40);
            assert_eq!(engine.stats().assigns, before + 40);
        }
        // Large enough to cross the fan-out floor: same answers.
        let big: Vec<Vec<f64>> = (0..(2 * Engine::SPAWN_AMORTIZATION_FLOOR))
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64 * 50.0])
            .collect();
        let expected: Vec<_> = big.iter().map(|r| engine.classify(r)).collect();
        let mut m = EngineMetrics::new();
        let got = engine.assign_many(&big, 2, &mut m);
        assert_eq!(got, expected);
        assert_eq!(m.assign_latency().histogram().count(), big.len() as u64);
    }

    #[test]
    fn refresh_from_parts_and_set_snapshot_counts_aggregate() {
        let mut engine_a = Engine::new(&two_cluster_artifact());
        let mut engine_b = Engine::new(&two_cluster_artifact());
        engine_a.assign(&[2.0, 0.5]);
        engine_a.assign(&[2.0, 50.0]);
        engine_b.assign(&[3.0, 0.5]);
        let mut stats = *engine_a.stats();
        let b = engine_b.stats();
        stats.assigns += b.assigns;
        stats.assign_hits += b.assign_hits;
        let mut health = engine_a.health();
        let hb = engine_b.health();
        health.core_points += hb.core_points;
        health.clusters += hb.clusters;
        health.staleness = health.staleness.max(hb.staleness);
        let mut m = EngineMetrics::new();
        m.refresh_from_parts(&stats, &health);
        m.set_snapshot_counts(3, 2);
        let reg = m.registry();
        assert_eq!(reg.counter_value("dbsvec_assigns_total"), Some(3));
        assert_eq!(reg.counter_value("dbsvec_assign_hits_total"), Some(2));
        assert_eq!(reg.gauge_value("dbsvec_core_points"), Some(20.0));
        assert_eq!(reg.counter_value("dbsvec_snapshot_writes_total"), Some(3));
        assert_eq!(reg.counter_value("dbsvec_snapshot_loads_total"), Some(2));
    }

    #[test]
    fn refresh_with_monitor_publishes_drift_gauges() {
        use crate::monitor::MonitorConfig;
        use dbsvec_obs::NoopObserver;

        let mut cores = PointSet::new(2);
        for i in 0..5 {
            cores.push(&[i as f64, 0.0]);
        }
        let artifact = ModelArtifact {
            eps: 1.5,
            min_pts: 3,
            num_clusters: 1,
            cores: cores.clone(),
            core_labels: vec![0; 5],
            boundaries: None,
            quality: None,
            sampling: None,
        };
        let points = cores;
        let clustering = dbsvec_core::Clustering::from_assignments(vec![Some(0); 5]);
        let artifact = artifact.with_quality(&points, &clustering);
        let mut engine = Engine::new(&artifact);
        let mut monitor = engine.monitor(
            MonitorConfig::new()
                .with_window(4)
                .with_drift_threshold(0.3)
                .with_ewma_alpha(1.0),
        );
        let mut m = EngineMetrics::new();
        // Before any window: baseline present, everything else zero.
        m.refresh_with_monitor(&engine, &monitor);
        let reg = m.registry();
        assert_eq!(
            reg.gauge_value("dbsvec_quality_baseline_present"),
            Some(1.0)
        );
        assert_eq!(reg.counter_value("dbsvec_quality_windows_total"), Some(0));
        assert_eq!(reg.gauge_value("dbsvec_drift_score"), Some(0.0));
        assert!(reg.gauge_value("dbsvec_cluster_occupancy_c0").is_none());

        // An all-noise window: maximal noise delta, alert, occupancy gauge.
        for _ in 0..4 {
            engine.assign_monitored(&[50.0, 50.0], &mut monitor, &mut NoopObserver);
        }
        m.refresh_with_monitor(&engine, &monitor);
        let reg = m.registry();
        assert_eq!(reg.counter_value("dbsvec_quality_windows_total"), Some(1));
        assert_eq!(reg.counter_value("dbsvec_drift_alerts_total"), Some(1));
        let score = reg.gauge_value("dbsvec_drift_score_smoothed").unwrap();
        assert!(score >= 0.3, "{score}");
        assert_eq!(reg.gauge_value("dbsvec_noise_rate_window"), Some(1.0));
        assert_eq!(reg.gauge_value("dbsvec_drift_noise_delta"), Some(1.0));
        assert_eq!(reg.gauge_value("dbsvec_refit_recommended"), Some(1.0));
        assert_eq!(reg.gauge_value("dbsvec_cluster_occupancy_c0"), Some(0.0));
    }

    #[test]
    fn snapshot_counters_are_explicit() {
        let mut m = EngineMetrics::new();
        m.inc_snapshot_load();
        m.inc_snapshot_write();
        m.inc_snapshot_write();
        assert_eq!(
            m.registry().counter_value("dbsvec_snapshot_writes_total"),
            Some(2)
        );
        assert_eq!(
            m.registry().counter_value("dbsvec_snapshot_loads_total"),
            Some(1)
        );
    }
}
