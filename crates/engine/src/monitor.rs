//! Online model-quality monitoring: windowed drift detection.
//!
//! A [`QualityMonitor`] folds every served assignment / ingest into a
//! **tumbling window** of the same distributions the fit recorded into
//! its [`QualityBaseline`]: the
//! distance-to-nearest-core histogram, per-cluster occupancy counts, and
//! the noise rate. Each time the window fills, three drift signals are
//! scored against the baseline:
//!
//! * `hist_distance` — octave-level earth-mover distance between the
//!   baseline and window assign-distance histograms
//!   ([`dbsvec_obs::telemetry::quality::hist_drift`]);
//! * `occupancy_shift` — total variation between the baseline and window
//!   occupancy shares (probability mass that changed cluster);
//! * `noise_delta` — absolute change in the noise rate.
//!
//! All three live in `[0, 1]`; the combined **evidence score** is their
//! maximum (the strongest single piece of evidence), smoothed with an
//! EWMA across windows so one odd window cannot flip an alert. When the
//! smoothed score crosses [`MonitorConfig::drift_threshold`], the window
//! report carries an alert and
//! [`Engine::health_with`](crate::Engine::health_with) flips the refit
//! recommendation — drift is refit evidence the flat staleness ratio is
//! blind to, since assignment traffic never changes topology.
//!
//! Models without a baseline (pre-v2 snapshots) still monitor in
//! **degraded mode**: window noise rate and occupancy are tracked and
//! exposed, but no drift score is computed and refit recommendations fall
//! back to staleness alone.

use dbsvec_obs::telemetry::quality::{hist_drift, share_shift, Ewma};
use dbsvec_obs::{Event, Histogram};

use crate::artifact::{distance_ticks, ModelArtifact, QualityBaseline};
use crate::engine::{Assignment, IngestOutcome};

/// Default observations per tumbling window.
pub const DEFAULT_WINDOW: usize = 512;

/// Default smoothed-score threshold for drift alerts.
pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.35;

/// Default EWMA smoothing factor for the per-window score.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.4;

/// Tunables of a [`QualityMonitor`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MonitorConfig {
    /// Observations per tumbling window.
    pub window: usize,
    /// Smoothed-score threshold at which a window raises a drift alert
    /// (and [`crate::Engine::health_with`] recommends a refit).
    pub drift_threshold: f64,
    /// EWMA smoothing factor for the combined score, in `(0, 1]`.
    pub ewma_alpha: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        Self {
            window: DEFAULT_WINDOW,
            drift_threshold: DEFAULT_DRIFT_THRESHOLD,
            ewma_alpha: DEFAULT_EWMA_ALPHA,
        }
    }
}

impl MonitorConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the tumbling-window size.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "monitor window must be positive");
        self.window = window;
        self
    }

    /// Sets the drift-alert threshold.
    ///
    /// # Panics
    ///
    /// Panics when the threshold is not in `(0, 1]`.
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0 && threshold <= 1.0,
            "drift threshold must be in (0, 1], got {threshold}"
        );
        self.drift_threshold = threshold;
        self
    }

    /// Sets the EWMA smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]`.
    pub fn with_ewma_alpha(mut self, alpha: f64) -> Self {
        Ewma::new(alpha); // validates
        self.ewma_alpha = alpha;
        self
    }
}

/// One completed window's drift evidence, per signal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftSignals {
    /// Octave-level earth-mover distance between the baseline and window
    /// assign-distance histograms, `[0, 1]`.
    pub hist_distance: f64,
    /// Total-variation shift between baseline and window occupancy
    /// shares, `[0, 1]`.
    pub occupancy_shift: f64,
    /// Absolute noise-rate change against the baseline, `[0, 1]`.
    pub noise_delta: f64,
    /// Combined evidence: the maximum of the three signals.
    pub score: f64,
    /// EWMA of `score` across completed windows (the alerting quantity).
    pub smoothed_score: f64,
}

impl DriftSignals {
    /// Name of the strongest signal (the attribution shown in reports).
    pub fn dominant(&self) -> &'static str {
        if self.hist_distance >= self.occupancy_shift && self.hist_distance >= self.noise_delta {
            "hist_distance"
        } else if self.occupancy_shift >= self.noise_delta {
            "occupancy_shift"
        } else {
            "noise_delta"
        }
    }
}

/// Fixed-point microunits for observer events (`Eq`-friendly scores).
fn e6(x: f64) -> u64 {
    (x.clamp(0.0, 1.0) * 1e6).round() as u64
}

/// What a completed window concluded.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowReport {
    /// 1-based ordinal of the completed window.
    pub window: u64,
    /// Observations the window folded in.
    pub samples: u64,
    /// Drift evidence, `None` in degraded (baseline-less) mode.
    pub signals: Option<DriftSignals>,
    /// Whether the smoothed score crossed the configured threshold.
    pub alert: bool,
    threshold: f64,
}

impl WindowReport {
    /// The [`Event::QualityWindow`] this report corresponds to.
    pub fn window_event(&self) -> Event {
        let s = self.signals;
        Event::QualityWindow {
            window: self.window,
            samples: self.samples,
            drift_score_e6: s.map_or(0, |s| e6(s.smoothed_score)),
            hist_distance_e6: s.map_or(0, |s| e6(s.hist_distance)),
            occupancy_shift_e6: s.map_or(0, |s| e6(s.occupancy_shift)),
            noise_delta_e6: s.map_or(0, |s| e6(s.noise_delta)),
            baseline: s.is_some(),
        }
    }

    /// The [`Event::DriftAlert`] this report raises, if any.
    pub fn alert_event(&self) -> Option<Event> {
        let s = self.signals?;
        self.alert.then(|| Event::DriftAlert {
            window: self.window,
            drift_score_e6: e6(s.smoothed_score),
            threshold_e6: e6(self.threshold),
        })
    }
}

/// Baseline distributions in comparison-ready form.
#[derive(Clone, Debug)]
struct BaselineView {
    shares: Vec<f64>,
    noise_rate: f64,
    assign_dist: Histogram,
}

/// Folds served traffic into windowed distributions and scores drift
/// against the fit-time baseline. See the module docs for the model.
///
/// The monitor is sequential state: feed it from one thread (the engine's
/// monitored paths do). It keeps scoring against the *original* fit
/// baseline even as the engine's topology evolves — the baseline is the
/// reference the drift question is asked about.
#[derive(Clone, Debug)]
pub struct QualityMonitor {
    baseline: Option<BaselineView>,
    config: MonitorConfig,
    eps: f64,
    // Current (accumulating) window.
    win_dist: Histogram,
    win_occupancy: Vec<u64>,
    win_noise: u64,
    win_samples: u64,
    // Completed-window state.
    windows_completed: u64,
    last: Option<DriftSignals>,
    last_shares: Vec<f64>,
    last_noise_rate: Option<f64>,
    ewma: Ewma,
    alerts: u64,
}

impl QualityMonitor {
    /// Builds a monitor for a loaded artifact (degraded mode when the
    /// artifact carries no quality baseline).
    pub fn new(artifact: &ModelArtifact, config: MonitorConfig) -> Self {
        Self::from_parts(artifact.eps, artifact.quality.as_ref(), config)
    }

    /// Builds a monitor from the model ε and an optional baseline.
    pub fn from_parts(eps: f64, baseline: Option<&QualityBaseline>, config: MonitorConfig) -> Self {
        let baseline = baseline.map(|q| BaselineView {
            shares: q.shares(),
            noise_rate: q.noise_rate(),
            assign_dist: q.assign_dist.clone(),
        });
        // Windows always report a share for every fitted cluster, even
        // ones that received no traffic (their share is the signal).
        let fitted_clusters = baseline.as_ref().map_or(0, |b| b.shares.len());
        Self {
            baseline,
            config,
            eps,
            win_dist: Histogram::new(),
            win_occupancy: vec![0; fitted_clusters],
            win_noise: 0,
            win_samples: 0,
            windows_completed: 0,
            last: None,
            last_shares: Vec::new(),
            last_noise_rate: None,
            ewma: Ewma::new(config.ewma_alpha),
            alerts: 0,
        }
    }

    /// The configuration the monitor runs with.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Whether a fit-time baseline is available (false = degraded,
    /// staleness-only mode).
    pub fn has_baseline(&self) -> bool {
        self.baseline.is_some()
    }

    /// Completed tumbling windows.
    pub fn windows_completed(&self) -> u64 {
        self.windows_completed
    }

    /// Windows whose smoothed score crossed the threshold.
    pub fn alerts(&self) -> u64 {
        self.alerts
    }

    /// Drift evidence of the most recently completed window, `None`
    /// before the first window completes or in degraded mode.
    pub fn signals(&self) -> Option<DriftSignals> {
        self.last
    }

    /// Per-cluster occupancy shares of the most recently completed
    /// window (empty before the first window completes).
    pub fn window_shares(&self) -> &[f64] {
        &self.last_shares
    }

    /// Noise rate of the most recently completed window.
    pub fn window_noise_rate(&self) -> Option<f64> {
        self.last_noise_rate
    }

    /// Whether the current smoothed score sits at or above the alert
    /// threshold (always `false` in degraded mode).
    pub fn drift_exceeded(&self) -> bool {
        self.last
            .is_some_and(|s| s.smoothed_score >= self.config.drift_threshold)
    }

    /// Folds one assignment (and, for cluster hits, the distance to the
    /// nearest core) into the window. Returns the report when this
    /// observation completed a window.
    pub fn observe_assign(&mut self, a: Assignment, distance: Option<f64>) -> Option<WindowReport> {
        match a {
            Assignment::Cluster(c) => {
                self.bump_occupancy(c);
                if let Some(d) = distance {
                    self.win_dist.record(distance_ticks(d, self.eps));
                }
            }
            Assignment::Noise => self.win_noise += 1,
        }
        self.tick()
    }

    /// Folds one ingest outcome into the window. Duplicates are skipped
    /// (they carry no distribution information); buffered points count as
    /// noise-side mass until promotion. Returns the report when this
    /// observation completed a window.
    pub fn observe_ingest(&mut self, outcome: IngestOutcome) -> Option<WindowReport> {
        match outcome {
            IngestOutcome::Duplicate => return None,
            IngestOutcome::Core { cluster } | IngestOutcome::Border { cluster } => {
                self.bump_occupancy(cluster)
            }
            IngestOutcome::Buffered => self.win_noise += 1,
        }
        self.tick()
    }

    fn bump_occupancy(&mut self, cluster: u32) {
        let i = cluster as usize;
        if i >= self.win_occupancy.len() {
            self.win_occupancy.resize(i + 1, 0);
        }
        self.win_occupancy[i] += 1;
    }

    fn tick(&mut self) -> Option<WindowReport> {
        self.win_samples += 1;
        (self.win_samples >= self.config.window as u64).then(|| self.roll())
    }

    /// Closes the current window, scores it, and starts the next one.
    fn roll(&mut self) -> WindowReport {
        self.windows_completed += 1;
        let samples = self.win_samples.max(1) as f64;
        let shares: Vec<f64> = self
            .win_occupancy
            .iter()
            .map(|&c| c as f64 / samples)
            .collect();
        let noise_rate = self.win_noise as f64 / samples;

        let signals = self.baseline.as_ref().map(|b| {
            // An all-noise window has an empty distance histogram; the
            // evidence for that lives in noise_delta, so the histogram
            // signal stays quiet rather than pinning to 1.
            let hist_distance = if self.win_dist.is_empty() {
                0.0
            } else {
                hist_drift(&b.assign_dist, &self.win_dist)
            };
            let occupancy_shift = share_shift(&b.shares, &shares);
            let noise_delta = (noise_rate - b.noise_rate).abs();
            let score = hist_distance.max(occupancy_shift).max(noise_delta);
            DriftSignals {
                hist_distance,
                occupancy_shift,
                noise_delta,
                score,
                smoothed_score: self.ewma.observe(score),
            }
        });
        self.last = signals;
        self.last_shares = shares;
        self.last_noise_rate = Some(noise_rate);
        let alert = self.drift_exceeded();
        if alert {
            self.alerts += 1;
        }
        let report = WindowReport {
            window: self.windows_completed,
            samples: self.win_samples,
            signals,
            alert,
            threshold: self.config.drift_threshold,
        };
        self.win_dist = Histogram::new();
        self.win_occupancy.fill(0);
        self.win_noise = 0;
        self.win_samples = 0;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_obs::Histogram;

    fn baseline(occupancy: &[u64], noise: u64, dists: &[u64]) -> QualityBaseline {
        let mut h = Histogram::new();
        for &d in dists {
            h.record(d);
        }
        QualityBaseline {
            occupancy: occupancy.to_vec(),
            noise_points: noise,
            total_points: occupancy.iter().sum::<u64>() + noise,
            assign_dist: h,
            margin: None,
        }
    }

    fn config(window: usize) -> MonitorConfig {
        MonitorConfig::new()
            .with_window(window)
            .with_drift_threshold(0.35)
            .with_ewma_alpha(1.0) // undamped: scores are window scores
    }

    #[test]
    fn stationary_traffic_scores_low() {
        // Baseline: two equal clusters, 10% noise, distances around
        // eps/4 (256 ticks at eps = 1).
        let b = baseline(&[45, 45], 10, &[200, 250, 256, 280, 300]);
        let mut m = QualityMonitor::from_parts(1.0, Some(&b), config(100));
        let mut report = None;
        for i in 0..100 {
            let a = match i % 10 {
                9 => Assignment::Noise,
                k => Assignment::Cluster((k % 2) as u32),
            };
            let d = (i % 10 != 9).then_some(0.2 + 0.05 * (i % 5) as f64);
            report = m.observe_assign(a, d).or(report);
        }
        let report = report.expect("window completed");
        let s = report.signals.expect("baseline present");
        assert!(s.score < 0.35, "stationary score too high: {s:?}");
        assert!(!report.alert);
        assert!(!m.drift_exceeded());
        assert_eq!(m.windows_completed(), 1);
        assert_eq!(m.alerts(), 0);
    }

    #[test]
    fn drifted_traffic_scores_high_and_alerts() {
        let b = baseline(&[45, 45], 10, &[200, 250, 256, 280, 300]);
        let mut m = QualityMonitor::from_parts(1.0, Some(&b), config(100));
        let mut last = None;
        // Everything lands in cluster 0, at 4x the baseline distance,
        // with 40% noise: all three signals fire.
        for i in 0..100 {
            let a = if i % 10 < 4 {
                Assignment::Noise
            } else {
                Assignment::Cluster(0)
            };
            let d = (i % 10 >= 4).then_some(0.95);
            last = m.observe_assign(a, d).or(last);
        }
        let report = last.expect("window completed");
        let s = report.signals.expect("baseline present");
        assert!(s.score >= 0.35, "drifted score too low: {s:?}");
        assert!(report.alert, "alert expected: {s:?}");
        assert!(m.drift_exceeded());
        assert_eq!(m.alerts(), 1);
        assert!(s.hist_distance > 0.0);
        assert!(s.occupancy_shift > 0.0);
        assert!(s.noise_delta > 0.25);
        // Events carry the fixed-point scores.
        match report.window_event() {
            Event::QualityWindow {
                baseline, samples, ..
            } => {
                assert!(baseline);
                assert_eq!(samples, 100);
            }
            other => panic!("wrong event {other:?}"),
        }
        assert!(matches!(
            report.alert_event(),
            Some(Event::DriftAlert { window: 1, .. })
        ));
    }

    #[test]
    fn degraded_mode_tracks_windows_without_scores() {
        let mut m = QualityMonitor::from_parts(1.0, None, config(10));
        assert!(!m.has_baseline());
        let mut report = None;
        for i in 0..10 {
            let a = if i < 5 {
                Assignment::Cluster(0)
            } else {
                Assignment::Noise
            };
            report = m.observe_assign(a, None).or(report);
        }
        let report = report.expect("window completed");
        assert!(report.signals.is_none());
        assert!(!report.alert);
        assert!(report.alert_event().is_none());
        assert!(!m.drift_exceeded());
        assert_eq!(m.window_noise_rate(), Some(0.5));
        assert_eq!(m.window_shares(), &[0.5]);
        match report.window_event() {
            Event::QualityWindow {
                baseline,
                drift_score_e6,
                ..
            } => {
                assert!(!baseline);
                assert_eq!(drift_score_e6, 0);
            }
            other => panic!("wrong event {other:?}"),
        }
    }

    #[test]
    fn ingest_outcomes_fold_into_the_window() {
        let b = baseline(&[10], 0, &[100]);
        let mut m = QualityMonitor::from_parts(1.0, Some(&b), config(4));
        assert!(m.observe_ingest(IngestOutcome::Duplicate).is_none());
        assert!(m
            .observe_ingest(IngestOutcome::Core { cluster: 0 })
            .is_none());
        assert!(m
            .observe_ingest(IngestOutcome::Border { cluster: 0 })
            .is_none());
        assert!(m.observe_ingest(IngestOutcome::Buffered).is_none());
        let report = m
            .observe_ingest(IngestOutcome::Core { cluster: 0 })
            .expect("4 non-duplicate outcomes fill the window");
        assert_eq!(report.samples, 4);
        // 25% of the window was buffered (noise-side) vs 0% baseline.
        let s = report.signals.unwrap();
        assert!((s.noise_delta - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ewma_damps_single_window_spikes() {
        let b = baseline(&[10], 0, &[100]);
        let cfg = MonitorConfig::new()
            .with_window(2)
            .with_drift_threshold(0.9)
            .with_ewma_alpha(0.4);
        let mut m = QualityMonitor::from_parts(1.0, Some(&b), cfg);
        // First window: clean. Second: maximally noisy. The smoothed
        // score must sit well below the raw window score.
        for _ in 0..2 {
            m.observe_assign(Assignment::Cluster(0), Some(0.1));
        }
        let clean = m.signals().unwrap();
        assert!(clean.smoothed_score < 0.2);
        for _ in 0..2 {
            m.observe_assign(Assignment::Noise, None);
        }
        let spiky = m.signals().unwrap();
        assert!(spiky.score > 0.9, "raw window score: {spiky:?}");
        assert!(
            spiky.smoothed_score < spiky.score,
            "EWMA must damp: {spiky:?}"
        );
        assert!(!m.drift_exceeded());
        assert_eq!(m.alerts(), 0);
    }

    #[test]
    fn dominant_signal_attribution() {
        let s = DriftSignals {
            hist_distance: 0.1,
            occupancy_shift: 0.5,
            noise_delta: 0.2,
            score: 0.5,
            smoothed_score: 0.5,
        };
        assert_eq!(s.dominant(), "occupancy_shift");
        let s = DriftSignals {
            hist_distance: 0.6,
            ..s
        };
        assert_eq!(s.dominant(), "hist_distance");
        let s = DriftSignals {
            hist_distance: 0.0,
            occupancy_shift: 0.0,
            noise_delta: 0.9,
            ..s
        };
        assert_eq!(s.dominant(), "noise_delta");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        MonitorConfig::new().with_window(0);
    }
}
