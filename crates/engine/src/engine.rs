//! The online serving engine: assignment, ingest, promotion, staleness.
//!
//! [`Engine`] wraps a loaded [`ModelArtifact`] behind the two operations a
//! serving system needs:
//!
//! * [`Engine::assign`] — classify an observation by the DBSCAN rule the
//!   paper's noise verification uses: the cluster of the nearest core
//!   point within ε, or noise. Served off a kd-tree over the core points
//!   (plus a short linear tail of recently promoted cores, folded into the
//!   tree periodically).
//! * [`Engine::ingest`] — absorb an observation into the model. A point
//!   whose tracked ε-neighborhood reaches MinPts becomes a core point
//!   immediately; otherwise it is buffered, and buffered points are
//!   promoted as later arrivals densify their neighborhoods. Promotion
//!   next to cores of different clusters merges those clusters.
//! * [`Engine::remove`] — delete a tracked observation from the model.
//!   Removal decrements the tracked ε-neighborhood counts around the
//!   point, **demotes** any core whose count falls below MinPts back to
//!   the buffer, and repairs the cluster structure exactly: the core
//!   graph (cores within ε of each other) is maintained in a
//!   [`Connectivity`] spanning forest, so a removal that disconnects a
//!   cluster is detected and the cluster **split** into its true pieces.
//!
//! The engine counts only the points *it tracks* (cores + buffered
//! arrivals, with exact-coordinate dedup), so its neighborhood counts are
//! **underestimates** of the true density. The useful consequence:
//! re-ingesting the training set is a no-op — cores are duplicates, and
//! every border/noise point's true neighborhood was already below MinPts,
//! so an underestimate cannot promote it, spawn a cluster, or merge
//! anything. The decremental invariant mirrors the incremental one: with
//! `L` the tracked set (fitted cores plus ingests minus removals), a
//! point is core iff `|N_ε(p) ∩ L| ≥ MinPts`, and clusters are the
//! connected components of the core graph. The one asymmetry is
//! *grandfathering*: a fitted core whose tracked count starts below
//! MinPts (its fit-time density came from border points the engine never
//! tracked) keeps core status until a removal inside its ε-neighborhood
//! drops the count further — deterministic, and exact for any model
//! whose cores are mutually dense (see the interleaving oracle harness).
//!
//! Online maintenance degrades a fitted model over time (new cores are
//! attached by the incremental rule, not by a full re-expansion; removed
//! witnesses are only counted approximately), so the engine tracks a
//! [`Engine::staleness`] ratio — accumulated topology changes, removals
//! included, relative to the fitted core count — and recommends a re-fit
//! once it passes 25%.

use std::collections::HashMap;
use std::time::Instant;

use dbsvec_core::Connectivity;
use dbsvec_geometry::{squared_euclidean, PointSet};
use dbsvec_index::{OwnedKdTree, RangeIndex};
use dbsvec_obs::{Event, Histogram, NoopObserver, Observer};

use crate::artifact::{ClusterBoundary, ModelArtifact, QualityBaseline, SamplingInfo};
use crate::metrics::EngineMetrics;
use crate::monitor::{DriftSignals, MonitorConfig, QualityMonitor, WindowReport};

/// Result of classifying one observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Assignment {
    /// The point lies within ε of a core point of this cluster.
    Cluster(u32),
    /// No core point within ε.
    Noise,
}

impl Assignment {
    /// The cluster id, or `None` for noise.
    pub fn cluster(self) -> Option<u32> {
        match self {
            Assignment::Cluster(c) => Some(c),
            Assignment::Noise => None,
        }
    }
}

/// What happened to an ingested observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IngestOutcome {
    /// Exact duplicate of an already-tracked point; nothing changed.
    Duplicate,
    /// Dense on arrival — entered the core set of this cluster.
    Core {
        /// Compact cluster id the point joined (ids may shift after later
        /// merges).
        cluster: u32,
    },
    /// Within ε of a core point but not dense: a border point of that
    /// core's cluster, buffered for possible future promotion.
    Border {
        /// Cluster of the nearest core point.
        cluster: u32,
    },
    /// No core point within ε yet; buffered.
    Buffered,
}

/// What happened to a removal request ([`Engine::remove`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// The point is not tracked (never ingested, or already removed);
    /// nothing changed.
    NotFound,
    /// The point left the tracked set.
    Removed {
        /// Whether it was a core point (`false`: a buffered observation).
        was_core: bool,
        /// Cores whose tracked ε-neighborhoods fell below MinPts and
        /// were demoted back to the buffer.
        demoted: u32,
        /// Cluster splits the structural repair produced (a component
        /// breaking into `k` pieces counts `k - 1`).
        splits: u32,
    },
}

/// Where a tracked coordinate vector currently lives.
#[derive(Clone, Copy, Debug)]
enum Tracked {
    /// A core point, by slot id (kd-tree order, then tail order).
    Core(u32),
    /// A buffered observation, by index into the buffer.
    Buffered(u32),
}

/// Counters the engine accumulates over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Assignments answered.
    pub assigns: u64,
    /// Assignments that landed in a cluster.
    pub assign_hits: u64,
    /// Observations ingested (including duplicates).
    pub ingests: u64,
    /// Ingests dropped as exact duplicates.
    pub duplicates: u64,
    /// Points promoted to core (at ingest or from the buffer).
    pub promotions: u64,
    /// Promotions that spawned a brand-new cluster.
    pub new_clusters: u64,
    /// Cluster merges caused by promotions.
    pub merges: u64,
    /// Tracked points removed ([`Engine::remove`] hits).
    pub removals: u64,
    /// Removal requests for untracked points (no-ops).
    pub remove_misses: u64,
    /// Cores demoted below MinPts by removals.
    pub demotions: u64,
    /// Cluster splits repaired after removals (a component breaking
    /// into `k` pieces counts `k - 1`).
    pub splits: u64,
    /// Times the core kd-tree was rebuilt to fold in the tail.
    pub tree_rebuilds: u64,
}

/// One coherent point-in-time read of the engine's operational health.
///
/// Cheap to produce (a handful of field reads), so poll it as often as a
/// scraper likes. All fields describe the same instant, unlike chaining
/// the individual getters across mutations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HealthSnapshot {
    /// Accumulated topology drift per fitted core ([`Engine::staleness`]).
    pub staleness: f64,
    /// Whether the refit evidence crossed a threshold: staleness past
    /// [`EngineConfig::refit_threshold`], or — when produced by
    /// [`Engine::health_with`] — the monitor's smoothed drift score past
    /// its alert threshold.
    pub refit_recommended: bool,
    /// Current core points (fitted + promoted).
    pub core_points: usize,
    /// Promoted cores awaiting the next kd-tree rebuild.
    pub tail_length: usize,
    /// Current number of clusters.
    pub clusters: usize,
    /// Observations buffered below the density threshold.
    pub buffered_points: usize,
    /// Times the core kd-tree has been rebuilt.
    pub tree_rebuilds: u64,
    /// Distribution-drift evidence from the quality monitor's last
    /// completed window. `None` from [`Engine::health`], or when the
    /// monitor has no baseline or no completed window yet.
    pub drift: Option<DriftSignals>,
    /// Provenance of a sampled fit (`None` when the model was fitted
    /// exactly) — quality expectations differ for a model discovered
    /// from a core-candidate subsample.
    pub sampling: Option<SamplingInfo>,
}

/// A buffered (not-yet-core) observation and its tracked neighbor count.
#[derive(Clone, Debug)]
struct Buffered {
    coords: Vec<f64>,
    /// Tracked points within ε, **including the point itself**.
    count: u32,
}

/// Default staleness ratio above which [`Engine::refit_recommended`]
/// fires ([`EngineConfig::refit_threshold`]'s default).
pub const REFIT_THRESHOLD: f64 = 0.25;

/// Tunable serving knobs, applied at construction via
/// [`Engine::with_config`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Staleness ratio above which a refit is recommended. Lower values
    /// trade refit churn for model freshness.
    pub refit_threshold: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            refit_threshold: REFIT_THRESHOLD,
        }
    }
}

impl EngineConfig {
    /// The default configuration ([`REFIT_THRESHOLD`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the staleness ratio above which a refit is recommended.
    ///
    /// # Panics
    ///
    /// Panics when the threshold is not positive and finite.
    pub fn with_refit_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "refit threshold must be positive and finite, got {threshold}"
        );
        self.refit_threshold = threshold;
        self
    }
}

/// Fold the tail into the kd-tree once it exceeds
/// `max(REBUILD_MIN_TAIL, indexed/4)`.
const REBUILD_MIN_TAIL: usize = 64;

/// Compact dead (removed/demoted) slots out of the kd-tree and tail once
/// they exceed `max(COMPACT_MIN_DEAD, slots/4)`.
const COMPACT_MIN_DEAD: usize = 16;

/// An online ingest/assign/remove server over a fitted model.
pub struct Engine {
    eps: f64,
    eps_sq: f64,
    min_pts: u32,
    dims: usize,
    /// Static kd-tree over the bulk of the core points.
    tree: OwnedKdTree,
    /// Recently promoted cores, scanned linearly until the next rebuild.
    tail: PointSet,
    /// Dynamic connectivity over the core graph (cores within ε of each
    /// other); vertex ids equal slot ids (tree order then tail order).
    conn: Connectivity,
    /// Whether each slot still holds a live core (removals and demotions
    /// tombstone slots until the next compaction).
    alive: Vec<bool>,
    /// Tombstoned slots awaiting compaction.
    dead: usize,
    /// Tracked points within ε of each core slot, **including itself**
    /// — the decremental mirror of [`Buffered::count`].
    core_counts: Vec<u32>,
    /// Eager slot → compact-label map (maintained on every topology
    /// change, so classification needs only `&self`). Dead slots hold
    /// `u32::MAX`.
    display: Vec<u32>,
    num_display: usize,
    buffered: Vec<Buffered>,
    /// Where each tracked coordinate vector (by exact bit pattern)
    /// currently lives.
    tracked: HashMap<Vec<u64>, Tracked>,
    /// Fit-time SVDD boundaries; dropped on the first topology change
    /// (they describe clusters that no longer exist as fitted).
    boundaries: Option<Vec<ClusterBoundary>>,
    /// Fit-time quality baseline; dropped on the first topology change
    /// like the boundaries (its occupancy is indexed by the fitted
    /// cluster ids). A [`QualityMonitor`] keeps its own copy, so drift is
    /// still scored against the original fit after promotions.
    quality: Option<QualityBaseline>,
    /// Sampled-fit provenance; survives topology changes (unlike the
    /// boundaries and baseline, it describes how the fit was *made*, not
    /// the current topology).
    sampling: Option<SamplingInfo>,
    config: EngineConfig,
    initial_cores: usize,
    stats: EngineStats,
}

fn coord_key(x: &[f64]) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

/// Streams a completed window (and its alert, if raised) to the observer.
fn emit_window(report: &WindowReport, obs: &mut dyn Observer) {
    obs.event(&report.window_event());
    if let Some(alert) = report.alert_event() {
        obs.event(&alert);
    }
}

impl Engine {
    /// Builds an engine from a loaded artifact.
    ///
    /// The artifact must be valid ([`ModelArtifact::validate`]); the
    /// snapshot loader guarantees this, and [`ModelArtifact::from_fit`]
    /// cannot produce an invalid one.
    pub fn new(artifact: &ModelArtifact) -> Self {
        Self::with_config(artifact, EngineConfig::default())
    }

    /// [`Engine::new`] with explicit serving knobs.
    ///
    /// Load builds the decremental bookkeeping: per-core tracked
    /// neighborhood counts and the core-graph connectivity structure.
    /// Geometric ε-edges are added between same-label cores only — the
    /// fitted labels are ground truth, and a cross-label ε-pair reflects
    /// a separation the fit established with evidence the engine no
    /// longer holds. Where a label's cores fall into several geometric
    /// pieces (possible for hand-built artifacts; a DBSCAN-faithful fit
    /// yields none), minimal *glue* edges chain the pieces so the load
    /// reproduces the fitted partition exactly; such a cluster
    /// under-splits on removals until the glue is torn down.
    pub fn with_config(artifact: &ModelArtifact, config: EngineConfig) -> Self {
        debug_assert!(artifact.validate().is_ok());
        let dims = artifact.cores.dims();
        let tree = OwnedKdTree::build(artifact.cores.clone());
        let n = tree.len();
        let labels = &artifact.core_labels;
        let mut conn = Connectivity::new();
        for _ in 0..n {
            conn.add_vertex();
        }
        let mut core_counts = vec![0u32; n];
        let mut hits = Vec::new();
        for i in 0..n {
            hits.clear();
            tree.range(tree.points().point(i as u32), artifact.eps, &mut hits);
            core_counts[i] = hits.len() as u32; // the range query includes i itself
            for &j in &hits {
                if (j as usize) < i && labels[j as usize] == labels[i] {
                    conn.add_edge(i as u32, j);
                }
            }
        }
        for l in 0..artifact.num_clusters {
            let mut anchors: Vec<u32> = Vec::new();
            let mut reps: Vec<u32> = Vec::new();
            for s in 0..n as u32 {
                if labels[s as usize] != l {
                    continue;
                }
                let r = conn.rep(s);
                if !reps.contains(&r) {
                    reps.push(r);
                    anchors.push(s);
                }
            }
            for w in anchors.windows(2) {
                conn.add_edge(w[0], w[1]);
            }
        }
        let mut tracked = HashMap::with_capacity(n);
        for (i, p) in artifact.cores.iter() {
            tracked.insert(coord_key(p), Tracked::Core(i));
        }
        Self {
            eps: artifact.eps,
            eps_sq: artifact.eps * artifact.eps,
            min_pts: artifact.min_pts,
            dims,
            tree,
            tail: PointSet::new(dims),
            conn,
            alive: vec![true; n],
            dead: 0,
            core_counts,
            display: labels.clone(),
            num_display: artifact.num_clusters as usize,
            buffered: Vec::new(),
            tracked,
            boundaries: artifact.boundaries.clone(),
            quality: artifact.quality.clone(),
            sampling: artifact.sampling,
            config,
            initial_cores: artifact.cores.len(),
            stats: EngineStats::default(),
        }
    }

    /// The serving knobs the engine was built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The assignment radius ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The promotion density threshold MinPts.
    pub fn min_pts(&self) -> u32 {
        self.min_pts
    }

    /// Dimensionality of the served space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Current number of core points (fitted + promoted − removed).
    pub fn core_count(&self) -> usize {
        self.tree.len() + self.tail.len() - self.dead
    }

    /// Current number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_display
    }

    /// Observations buffered below the density threshold.
    pub fn buffered_count(&self) -> usize {
        self.buffered.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Fit-time SVDD boundaries, while still faithful (dropped on the
    /// first promotion or merge).
    pub fn boundaries(&self) -> Option<&[ClusterBoundary]> {
        self.boundaries.as_deref()
    }

    /// Fit-time quality baseline, while still faithful (dropped on the
    /// first promotion or merge, like the boundaries).
    pub fn quality(&self) -> Option<&QualityBaseline> {
        self.quality.as_ref()
    }

    /// Provenance of a sampled fit, if the loaded model carried it.
    pub fn sampling(&self) -> Option<SamplingInfo> {
        self.sampling
    }

    /// Builds a [`QualityMonitor`] for this engine's model, scoring
    /// against the fit-time baseline when one is still held (degraded,
    /// staleness-only mode otherwise).
    pub fn monitor(&self, config: MonitorConfig) -> QualityMonitor {
        QualityMonitor::from_parts(self.eps, self.quality.as_ref(), config)
    }

    /// Accumulated topology drift relative to the fitted model:
    /// promotions, merges, removals, demotions, splits, and
    /// still-buffered points, per fitted core point.
    pub fn staleness(&self) -> f64 {
        let drift = self.stats.promotions
            + self.stats.merges
            + self.stats.removals
            + self.stats.demotions
            + self.stats.splits
            + self.buffered.len() as u64;
        drift as f64 / (self.initial_cores.max(1)) as f64
    }

    /// Whether the drift warrants re-fitting from scratch.
    pub fn refit_recommended(&self) -> bool {
        self.staleness() >= self.config.refit_threshold
    }

    /// One coherent snapshot of the engine's operational health.
    pub fn health(&self) -> HealthSnapshot {
        HealthSnapshot {
            staleness: self.staleness(),
            refit_recommended: self.refit_recommended(),
            core_points: self.core_count(),
            tail_length: self.tail.len(),
            clusters: self.num_display,
            buffered_points: self.buffered.len(),
            tree_rebuilds: self.stats.tree_rebuilds,
            drift: None,
            sampling: self.sampling,
        }
    }

    /// [`Engine::health`] enriched with the monitor's drift evidence: the
    /// refit recommendation combines staleness with the smoothed drift
    /// score, each against its own threshold.
    pub fn health_with(&self, monitor: &QualityMonitor) -> HealthSnapshot {
        let mut h = self.health();
        h.drift = monitor.signals();
        h.refit_recommended = h.refit_recommended || monitor.drift_exceeded();
        h
    }

    /// Pure classification: nearest core within ε, else noise. Shared by
    /// the single and batch paths; touches no counters, so it needs only
    /// `&self` and is safe to call from scoped threads.
    pub fn classify(&self, x: &[f64]) -> Assignment {
        assert_eq!(x.len(), self.dims, "query dimensionality mismatch");
        match self.nearest_core(x) {
            Some((_, slot)) => Assignment::Cluster(self.display[slot as usize]),
            None => Assignment::Noise,
        }
    }

    /// [`Engine::classify`] that also reports the distance to the nearest
    /// core for cluster hits — the quantity the quality monitor windows.
    pub fn classify_scored(&self, x: &[f64]) -> (Assignment, Option<f64>) {
        assert_eq!(x.len(), self.dims, "query dimensionality mismatch");
        match self.nearest_core(x) {
            Some((d_sq, slot)) => (
                Assignment::Cluster(self.display[slot as usize]),
                Some(d_sq.sqrt()),
            ),
            None => (Assignment::Noise, None),
        }
    }

    /// Squared distance and slot id of the nearest live core within ε,
    /// over the kd-tree plus the linear tail (tombstoned slots are
    /// skipped).
    fn nearest_core(&self, x: &[f64]) -> Option<(f64, u32)> {
        let mut best: Option<(f64, u32)> = None;
        let mut hits = Vec::new();
        self.tree.range(x, self.eps, &mut hits);
        for &id in &hits {
            if !self.alive[id as usize] {
                continue;
            }
            let d = self.tree.points().squared_distance_to(id, x);
            if best.map_or(true, |(bd, _)| d < bd) {
                best = Some((d, id));
            }
        }
        let offset = self.tree.len();
        for (i, p) in self.tail.iter() {
            if !self.alive[offset + i as usize] {
                continue;
            }
            let d = squared_euclidean(p, x);
            if d <= self.eps_sq && best.map_or(true, |(bd, _)| d < bd) {
                best = Some((d, (offset + i as usize) as u32));
            }
        }
        best
    }

    /// Classifies one observation, recording stats and an
    /// [`Event::Assign`].
    pub fn assign_observed(&mut self, x: &[f64], obs: &mut dyn Observer) -> Assignment {
        let a = self.classify(x);
        self.stats.assigns += 1;
        let hit = matches!(a, Assignment::Cluster(_));
        if hit {
            self.stats.assign_hits += 1;
        }
        obs.event(&Event::Assign { hit });
        a
    }

    /// [`Engine::assign_observed`] without observation.
    pub fn assign(&mut self, x: &[f64]) -> Assignment {
        self.assign_observed(x, &mut NoopObserver)
    }

    /// Minimum queries *per worker* before a scoped-thread fan-out pays
    /// for itself. One classify costs a few microseconds; a spawn + join
    /// costs tens. Batches that cannot give every worker at least this
    /// many queries stay on the calling thread, so batch throughput never
    /// drops below single-query throughput.
    pub const SPAWN_AMORTIZATION_FLOOR: usize = 256;

    /// Effective fan-out width for a batch of `n` queries: the requested
    /// thread count, capped so each worker gets at least
    /// [`Engine::SPAWN_AMORTIZATION_FLOOR`] queries. Returns 1 (stay on
    /// the calling thread) for small batches or `threads <= 1`.
    pub fn fan_out_width(n: usize, threads: usize) -> usize {
        threads
            .clamp(1, n.max(1))
            .min((n / Self::SPAWN_AMORTIZATION_FLOOR).max(1))
    }

    /// The one batch-classification fan-out every batch entry point
    /// shares. Splits the queries into contiguous chunks across scoped
    /// threads when [`Engine::fan_out_width`] says the spawn cost
    /// amortizes, otherwise classifies sequentially. When `timed`, each
    /// query's latency lands in a worker-local [`Histogram`] (bucket merge
    /// is associative, so the merged result equals single-threaded
    /// recording); untimed callers skip the clock reads entirely.
    fn classify_batch_inner(
        &self,
        queries: &PointSet,
        threads: usize,
        timed: bool,
    ) -> (Vec<Assignment>, Histogram) {
        assert_eq!(queries.dims(), self.dims, "query dimensionality mismatch");
        let n = queries.len();
        let width = Self::fan_out_width(n, threads);
        let classify_range = |lo: usize, hi: usize| {
            let mut local = Histogram::new();
            let answers: Vec<Assignment> = (lo..hi)
                .map(|i| {
                    if timed {
                        let start = Instant::now();
                        let a = self.classify(queries.point(i as u32));
                        local.record_duration(start.elapsed());
                        a
                    } else {
                        self.classify(queries.point(i as u32))
                    }
                })
                .collect();
            (answers, local)
        };
        if width == 1 {
            return classify_range(0, n);
        }
        let chunk = n.div_ceil(width);
        let mut results: Vec<Assignment> = Vec::with_capacity(n);
        let mut latencies = Histogram::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..width)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(n);
                    scope.spawn(move || classify_range(lo, hi))
                })
                .collect();
            for h in handles {
                let (answers, local) = h.join().expect("classification must not panic");
                results.extend(answers);
                latencies.merge(&local);
            }
        });
        (results, latencies)
    }

    /// Folds a batch of answers into the serving stats, emitting one
    /// [`Event::Assign`] per answer.
    fn record_batch_stats(&mut self, results: &[Assignment], obs: &mut dyn Observer) {
        for a in results {
            self.stats.assigns += 1;
            let hit = matches!(a, Assignment::Cluster(_));
            if hit {
                self.stats.assign_hits += 1;
            }
            obs.event(&Event::Assign { hit });
        }
    }

    /// Classifies a batch with a scoped-thread fan-out over contiguous
    /// chunks. `threads == 0` or `1` stays on the calling thread, as do
    /// batches too small to amortize the spawn cost (see
    /// [`Engine::SPAWN_AMORTIZATION_FLOOR`]). Events and stats are
    /// recorded after the join (observers are `&mut` and cannot be shared
    /// across the fan-out).
    pub fn assign_batch_observed(
        &mut self,
        queries: &PointSet,
        threads: usize,
        obs: &mut dyn Observer,
    ) -> Vec<Assignment> {
        let (results, _) = self.classify_batch_inner(queries, threads, false);
        self.record_batch_stats(&results, obs);
        results
    }

    /// [`Engine::assign_batch_observed`] without observation.
    pub fn assign_batch(&mut self, queries: &PointSet, threads: usize) -> Vec<Assignment> {
        self.assign_batch_observed(queries, threads, &mut NoopObserver)
    }

    /// [`Engine::assign`] with per-call latency recorded into `metrics`.
    pub fn assign_metered(&mut self, x: &[f64], metrics: &mut EngineMetrics) -> Assignment {
        let start = Instant::now();
        let a = self.assign(x);
        metrics.record_assign(start.elapsed());
        a
    }

    /// [`Engine::assign_batch`] with per-query latency recorded into
    /// `metrics`, through the same fan-out (and the same amortization
    /// floor) as [`Engine::assign_batch_observed`].
    pub fn assign_batch_metered(
        &mut self,
        queries: &PointSet,
        threads: usize,
        metrics: &mut EngineMetrics,
    ) -> Vec<Assignment> {
        let (results, latencies) = self.classify_batch_inner(queries, threads, true);
        self.record_batch_stats(&results, &mut NoopObserver);
        metrics.merge_assign_latencies(&latencies);
        results
    }

    /// Classifies a batch handed over as raw coordinate rows — the shape
    /// HTTP bodies and in-process callers share — with per-query latency
    /// recorded into `metrics`. Small batches skip the [`PointSet`] copy
    /// and the fan-out entirely; large ones delegate to
    /// [`Engine::assign_batch_metered`], so there is exactly one fan-out
    /// implementation either way.
    pub fn assign_many<R: AsRef<[f64]>>(
        &mut self,
        rows: &[R],
        threads: usize,
        metrics: &mut EngineMetrics,
    ) -> Vec<Assignment> {
        if Self::fan_out_width(rows.len(), threads) == 1 {
            let mut local = Histogram::new();
            let results: Vec<Assignment> = rows
                .iter()
                .map(|r| {
                    let start = Instant::now();
                    let a = self.classify(r.as_ref());
                    local.record_duration(start.elapsed());
                    a
                })
                .collect();
            self.record_batch_stats(&results, &mut NoopObserver);
            metrics.merge_assign_latencies(&local);
            return results;
        }
        let mut set = PointSet::new(self.dims);
        for r in rows {
            set.push(r.as_ref());
        }
        self.assign_batch_metered(&set, threads, metrics)
    }

    /// [`Engine::assign_observed`] folding the result (and the distance
    /// to the nearest core) into a quality monitor. Emits
    /// [`Event::QualityWindow`] / [`Event::DriftAlert`] when this call
    /// completes a window. Sequential by design: the monitor is `&mut`
    /// shared state.
    pub fn assign_monitored(
        &mut self,
        x: &[f64],
        monitor: &mut QualityMonitor,
        obs: &mut dyn Observer,
    ) -> Assignment {
        let (a, distance) = self.classify_scored(x);
        self.stats.assigns += 1;
        let hit = matches!(a, Assignment::Cluster(_));
        if hit {
            self.stats.assign_hits += 1;
        }
        obs.event(&Event::Assign { hit });
        if let Some(report) = monitor.observe_assign(a, distance) {
            emit_window(&report, obs);
        }
        a
    }

    /// [`Engine::ingest_observed`] folding the outcome into a quality
    /// monitor (outcome only — no extra range query). Emits window and
    /// alert events like [`Engine::assign_monitored`].
    pub fn ingest_monitored(
        &mut self,
        x: &[f64],
        monitor: &mut QualityMonitor,
        obs: &mut dyn Observer,
    ) -> IngestOutcome {
        let out = self.ingest_observed(x, obs);
        if let Some(report) = monitor.observe_ingest(out) {
            emit_window(&report, obs);
        }
        out
    }

    /// [`Engine::ingest`] with per-call latency recorded into `metrics`.
    pub fn ingest_metered(&mut self, x: &[f64], metrics: &mut EngineMetrics) -> IngestOutcome {
        let start = Instant::now();
        let out = self.ingest(x);
        metrics.record_ingest(start.elapsed());
        out
    }

    /// Absorbs one observation, recording stats and [`Event::Ingest`] /
    /// [`Event::Promote`] / [`Event::Merge`] as appropriate.
    pub fn ingest_observed(&mut self, x: &[f64], obs: &mut dyn Observer) -> IngestOutcome {
        assert_eq!(x.len(), self.dims, "query dimensionality mismatch");
        self.stats.ingests += 1;
        let key = coord_key(x);
        if self.tracked.contains_key(&key) {
            self.stats.duplicates += 1;
            obs.event(&Event::Ingest {
                core: false,
                duplicate: true,
            });
            return IngestOutcome::Duplicate;
        }

        let core_hits = self.core_hits(x);
        // The new arrival densifies every tracked neighborhood it lands
        // in; collect buffered neighbors that cross MinPts.
        for &h in &core_hits {
            self.core_counts[h as usize] += 1;
        }
        let mut ripe = Vec::new();
        let mut buffered_hits = 0u32;
        for (i, b) in self.buffered.iter_mut().enumerate() {
            if squared_euclidean(&b.coords, x) <= self.eps_sq {
                buffered_hits += 1;
                b.count += 1;
                if b.count >= self.min_pts {
                    ripe.push(i);
                }
            }
        }
        let count = 1 + core_hits.len() as u32 + buffered_hits;

        let outcome = if count >= self.min_pts {
            let cluster = self.promote(x, &core_hits, count, obs);
            obs.event(&Event::Ingest {
                core: true,
                duplicate: false,
            });
            IngestOutcome::Core { cluster }
        } else {
            let nearest = self.nearest_of(x, &core_hits);
            let idx = self.buffered.len() as u32;
            self.buffered.push(Buffered {
                coords: x.to_vec(),
                count,
            });
            self.tracked.insert(key, Tracked::Buffered(idx));
            obs.event(&Event::Ingest {
                core: false,
                duplicate: false,
            });
            match nearest {
                Some(slot) => IngestOutcome::Border {
                    cluster: self.display[slot as usize],
                },
                None => IngestOutcome::Buffered,
            }
        };

        // Promote ripe buffered points. Promotion adds cores but never
        // changes tracked-neighbor counts (the promoted point was already
        // tracked), so one pass cannot cascade.
        for &i in ripe.iter().rev() {
            let b = self.buffered.swap_remove(i);
            self.fix_swapped_buffer(i);
            let hits = self.core_hits(&b.coords);
            self.promote(&b.coords, &hits, b.count, obs);
        }
        outcome
    }

    /// [`Engine::ingest_observed`] without observation.
    pub fn ingest(&mut self, x: &[f64]) -> IngestOutcome {
        self.ingest_observed(x, &mut NoopObserver)
    }

    /// Re-persists the engine's current state as an artifact (live cores
    /// only — tombstoned slots are skipped). Boundaries and the quality
    /// baseline survive only if no topology change has occurred since
    /// load.
    pub fn snapshot(&self) -> ModelArtifact {
        let mut cores = PointSet::new(self.dims);
        let mut core_labels = Vec::new();
        for s in 0..self.slot_count() as u32 {
            if !self.alive[s as usize] {
                continue;
            }
            cores.push(self.core_point(s));
            core_labels.push(self.display[s as usize]);
        }
        ModelArtifact {
            eps: self.eps,
            min_pts: self.min_pts,
            num_clusters: self.num_display as u32,
            cores,
            core_labels,
            boundaries: self.boundaries.clone(),
            quality: self.quality.clone(),
            sampling: self.sampling,
        }
    }

    /// The buffered (below-density) observations and their tracked
    /// ε-neighborhood counts (self included) — the surface the
    /// interleaving oracle harness compares against a from-scratch
    /// recount. Order is an implementation detail.
    pub fn buffered_view(&self) -> Vec<(&[f64], u32)> {
        self.buffered
            .iter()
            .map(|b| (b.coords.as_slice(), b.count))
            .collect()
    }

    /// Total slots, live and tombstoned.
    fn slot_count(&self) -> usize {
        self.tree.len() + self.tail.len()
    }

    /// Coordinates of a slot (live or tombstoned).
    fn core_point(&self, slot: u32) -> &[f64] {
        let tree_len = self.tree.len() as u32;
        if slot < tree_len {
            self.tree.points().point(slot)
        } else {
            self.tail.point(slot - tree_len)
        }
    }

    /// Slot ids (tree order then tail order) of live cores within ε.
    fn core_hits(&self, x: &[f64]) -> Vec<u32> {
        let mut hits = Vec::new();
        self.tree.range(x, self.eps, &mut hits);
        hits.retain(|&id| self.alive[id as usize]);
        let offset = self.tree.len() as u32;
        for (i, p) in self.tail.iter() {
            if self.alive[(offset + i) as usize] && squared_euclidean(p, x) <= self.eps_sq {
                hits.push(offset + i);
            }
        }
        hits
    }

    /// Slot id of the nearest core among `hits`.
    fn nearest_of(&self, x: &[f64], hits: &[u32]) -> Option<u32> {
        hits.iter()
            .map(|&id| (squared_euclidean(self.core_point(id), x), id))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN distance"))
            .map(|(_, id)| id)
    }

    /// Makes `x` a core point: joins the nearest hit cluster (merging all
    /// hit clusters) or spawns a new one. `count` is the point's tracked
    /// ε-neighborhood count (self included). Returns the compact label.
    fn promote(&mut self, x: &[f64], core_hits: &[u32], count: u32, obs: &mut dyn Observer) -> u32 {
        let mut labels: Vec<u32> = core_hits
            .iter()
            .map(|&id| self.display[id as usize])
            .collect();
        labels.sort_unstable();
        labels.dedup();
        let label = match labels.split_first() {
            Some((&first, rest)) => {
                for &r in rest {
                    obs.event(&Event::Merge {
                        existing: first,
                        expanding: r,
                    });
                    self.stats.merges += 1;
                }
                if !rest.is_empty() {
                    self.merge_labels(first, rest);
                }
                first
            }
            None => {
                self.stats.new_clusters += 1;
                self.num_display += 1;
                (self.num_display - 1) as u32
            }
        };
        let slot = self.slot_count() as u32;
        self.tail.push(x);
        let v = self.conn.add_vertex();
        debug_assert_eq!(v, slot, "connectivity vertex ids mirror slot ids");
        for &h in core_hits {
            self.conn.add_edge(slot, h);
        }
        self.alive.push(true);
        self.core_counts.push(count);
        self.display.push(label);
        self.tracked.insert(coord_key(x), Tracked::Core(slot));
        self.stats.promotions += 1;
        // Topology changed: drop the stale boundaries and quality
        // baseline (both indexed by fitted ids).
        self.boundaries = None;
        self.quality = None;
        obs.event(&Event::Promote { cluster: label });
        if self.tail.len() >= REBUILD_MIN_TAIL.max(self.tree.len() / 4) {
            self.rebuild_tree();
        }
        label
    }

    /// Collapses display labels `rest` (sorted, all greater than `keep`)
    /// into `keep` and re-densifies the label space.
    fn merge_labels(&mut self, keep: u32, rest: &[u32]) {
        debug_assert!(rest.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(rest.first().map_or(true, |&r| r > keep));
        for s in 0..self.display.len() {
            if !self.alive[s] {
                continue;
            }
            let l = self.display[s];
            self.display[s] = if rest.binary_search(&l).is_ok() {
                keep
            } else {
                l - rest.iter().take_while(|&&r| r < l).count() as u32
            };
        }
        self.num_display -= rest.len();
    }

    /// After `buffered.swap_remove(i)`, repoints the tracked-map entry of
    /// the element swapped into position `i` (if any).
    fn fix_swapped_buffer(&mut self, i: usize) {
        if i < self.buffered.len() {
            let key = coord_key(&self.buffered[i].coords);
            self.tracked.insert(key, Tracked::Buffered(i as u32));
        }
    }

    /// Removes one tracked observation, recording stats and
    /// [`Event::Remove`] / [`Event::Demote`] / [`Event::Split`] as
    /// appropriate. Purely sequential by design: removal repairs shared
    /// structure, so thread count can never change what is computed.
    pub fn remove_observed(&mut self, x: &[f64], obs: &mut dyn Observer) -> RemoveOutcome {
        assert_eq!(x.len(), self.dims, "query dimensionality mismatch");
        let key = coord_key(x);
        let Some(entry) = self.tracked.remove(&key) else {
            self.stats.remove_misses += 1;
            obs.event(&Event::Remove {
                core: false,
                found: false,
            });
            return RemoveOutcome::NotFound;
        };
        let was_core = matches!(entry, Tracked::Core(_));
        self.stats.removals += 1;
        obs.event(&Event::Remove {
            core: was_core,
            found: true,
        });

        // Detach the point from the tracked set.
        match entry {
            Tracked::Core(slot) => {
                self.alive[slot as usize] = false;
                self.dead += 1;
            }
            Tracked::Buffered(i) => {
                self.buffered.swap_remove(i as usize);
                self.fix_swapped_buffer(i as usize);
            }
        }

        // The departure thins every tracked neighborhood it was in;
        // collect cores that fall below MinPts. (`core_hits` skips dead
        // slots, so a removed core never decrements itself.)
        let mut demoted = self.core_hits(x);
        demoted.retain(|&h| {
            self.core_counts[h as usize] -= 1;
            self.core_counts[h as usize] < self.min_pts
        });
        for b in self.buffered.iter_mut() {
            if squared_euclidean(&b.coords, x) <= self.eps_sq {
                b.count -= 1;
            }
        }
        demoted.sort_unstable();

        // Repair the core graph: the removed core first, then each
        // demotion in ascending slot order.
        let mut splits = 0u32;
        if let Tracked::Core(slot) = entry {
            splits += self.detach_core(slot, obs);
        }
        let demoted_n = demoted.len() as u32;
        for d in demoted {
            obs.event(&Event::Demote {
                cluster: self.display[d as usize],
            });
            self.stats.demotions += 1;
            // The demoted core rejoins the buffer with its tracked count.
            let coords = self.core_point(d).to_vec();
            self.alive[d as usize] = false;
            self.dead += 1;
            let idx = self.buffered.len() as u32;
            self.tracked
                .insert(coord_key(&coords), Tracked::Buffered(idx));
            self.buffered.push(Buffered {
                coords,
                count: self.core_counts[d as usize],
            });
            splits += self.detach_core(d, obs);
        }
        if was_core || demoted_n > 0 {
            // Topology changed (see `promote`).
            self.boundaries = None;
            self.quality = None;
        }
        if self.dead >= COMPACT_MIN_DEAD.max(self.slot_count() / 4) {
            self.rebuild_tree();
        }
        RemoveOutcome::Removed {
            was_core,
            demoted: demoted_n,
            splits,
        }
    }

    /// [`Engine::remove_observed`] without observation.
    pub fn remove(&mut self, x: &[f64]) -> RemoveOutcome {
        self.remove_observed(x, &mut NoopObserver)
    }

    /// Removes a batch of observations, one by one in order (removal is
    /// inherently sequential — each one may restructure what the next
    /// sees).
    pub fn remove_batch_observed(
        &mut self,
        points: &PointSet,
        obs: &mut dyn Observer,
    ) -> Vec<RemoveOutcome> {
        (0..points.len())
            .map(|i| self.remove_observed(points.point(i as u32), obs))
            .collect()
    }

    /// [`Engine::remove_batch_observed`] without observation.
    pub fn remove_batch(&mut self, points: &PointSet) -> Vec<RemoveOutcome> {
        self.remove_batch_observed(points, &mut NoopObserver)
    }

    /// [`Engine::remove`] with per-call latency recorded into `metrics`
    /// (removals that split a cluster also land in the split-repair
    /// histogram).
    pub fn remove_metered(&mut self, x: &[f64], metrics: &mut EngineMetrics) -> RemoveOutcome {
        let start = Instant::now();
        let out = self.remove(x);
        let elapsed = start.elapsed();
        metrics.record_remove(elapsed);
        if let RemoveOutcome::Removed { splits: 1.., .. } = out {
            metrics.record_split(elapsed);
        }
        out
    }

    /// Removes raw coordinate rows — the shape HTTP bodies share — with
    /// per-call latency recorded into `metrics`.
    pub fn remove_many<R: AsRef<[f64]>>(
        &mut self,
        rows: &[R],
        metrics: &mut EngineMetrics,
    ) -> Vec<RemoveOutcome> {
        rows.iter()
            .map(|r| self.remove_metered(r.as_ref(), metrics))
            .collect()
    }

    /// Tears `slot` out of the core graph and repairs the display
    /// labels: a vanished component's label is compacted away; on a
    /// split, the piece containing the smallest slot keeps the label and
    /// the remaining pieces are appended as new clusters in ascending
    /// slot order. Returns the number of splits (`pieces - 1`).
    fn detach_core(&mut self, slot: u32, obs: &mut dyn Observer) -> u32 {
        let old_label = self.display[slot as usize];
        self.display[slot as usize] = u32::MAX;
        let reps = self.conn.remove_vertex(slot);
        match reps.len() {
            0 => {
                // Last core of its cluster: the label vanishes.
                for s in 0..self.display.len() {
                    if self.alive[s] && self.display[s] > old_label {
                        self.display[s] -= 1;
                    }
                }
                self.num_display -= 1;
                0
            }
            1 => 0,
            pieces => {
                for (extra, &rep) in reps[1..].iter().enumerate() {
                    let new_label = (self.num_display + extra) as u32;
                    for s in 0..self.display.len() {
                        if self.alive[s] && self.conn.rep(s as u32) == rep {
                            self.display[s] = new_label;
                        }
                    }
                }
                self.num_display += pieces - 1;
                self.stats.splits += (pieces - 1) as u64;
                obs.event(&Event::Split {
                    pieces: pieces as u32,
                });
                (pieces - 1) as u32
            }
        }
    }

    /// Folds the tail into the kd-tree and compacts tombstoned slots
    /// away, remapping slot ids (and rebuilding the connectivity
    /// structure and tracked map) in surviving order — display labels
    /// are carried over unchanged.
    fn rebuild_tree(&mut self) {
        let total = self.slot_count();
        let mut remap = vec![u32::MAX; total];
        let mut points = PointSet::new(self.dims);
        for (s, slot) in remap.iter_mut().enumerate() {
            if !self.alive[s] {
                continue;
            }
            *slot = points.len() as u32;
            points.push(self.core_point(s as u32));
        }
        let n = points.len();
        self.display = (0..total)
            .filter(|&s| self.alive[s])
            .map(|s| self.display[s])
            .collect();
        self.core_counts = (0..total)
            .filter(|&s| self.alive[s])
            .map(|s| self.core_counts[s])
            .collect();
        let mut conn = Connectivity::new();
        for _ in 0..n {
            conn.add_vertex();
        }
        // Dead vertices never hold edges, so every edge remaps cleanly;
        // component structure (and therefore the labels) is preserved
        // regardless of re-insertion order.
        self.conn.for_each_edge(|u, v, _| {
            conn.add_edge(remap[u as usize], remap[v as usize]);
        });
        self.conn = conn;
        for entry in self.tracked.values_mut() {
            if let Tracked::Core(s) = entry {
                *s = remap[*s as usize];
            }
        }
        self.alive = vec![true; n];
        self.dead = 0;
        self.tail = PointSet::new(self.dims);
        self.tree = OwnedKdTree::build(points);
        self.stats.tree_rebuilds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_artifact() -> ModelArtifact {
        // Two tight clusters of 5 cores each, eps = 1.5, min_pts = 3.
        let mut cores = PointSet::new(2);
        let mut labels = Vec::new();
        for i in 0..5 {
            cores.push(&[i as f64, 0.0]);
            labels.push(0);
        }
        for i in 0..5 {
            cores.push(&[i as f64, 100.0]);
            labels.push(1);
        }
        ModelArtifact {
            eps: 1.5,
            min_pts: 3,
            num_clusters: 2,
            cores,
            core_labels: labels,
            boundaries: None,
            quality: None,
            sampling: None,
        }
    }

    #[test]
    fn classify_matches_the_artifact() {
        let engine = Engine::new(&grid_artifact());
        assert_eq!(engine.classify(&[2.0, 0.5]), Assignment::Cluster(0));
        assert_eq!(engine.classify(&[2.0, 99.5]), Assignment::Cluster(1));
        assert_eq!(engine.classify(&[2.0, 50.0]), Assignment::Noise);
        assert_eq!(engine.core_count(), 10);
        assert_eq!(engine.num_clusters(), 2);
    }

    #[test]
    fn batch_agrees_with_single() {
        let mut engine = Engine::new(&grid_artifact());
        let mut queries = PointSet::new(2);
        for i in 0..200 {
            queries.push(&[(i % 7) as f64, (i % 3) as f64 * 50.0]);
        }
        let expected: Vec<Assignment> = (0..queries.len())
            .map(|i| engine.classify(queries.point(i as u32)))
            .collect();
        for threads in [1, 2, 4, 7] {
            assert_eq!(engine.assign_batch(&queries, threads), expected);
        }
        assert_eq!(engine.stats().assigns, 4 * 200);
    }

    #[test]
    fn duplicate_ingest_is_a_no_op() {
        let mut engine = Engine::new(&grid_artifact());
        assert_eq!(engine.ingest(&[2.0, 0.0]), IngestOutcome::Duplicate);
        assert_eq!(engine.stats().duplicates, 1);
        assert_eq!(engine.core_count(), 10);
        assert_eq!(engine.buffered_count(), 0);
    }

    #[test]
    fn dense_arrival_is_promoted_immediately() {
        let mut engine = Engine::new(&grid_artifact());
        // Within eps of cores (1,0), (2,0), (3,0): count = 4 >= 3.
        let out = engine.ingest(&[2.0, 0.5]);
        assert_eq!(out, IngestOutcome::Core { cluster: 0 });
        assert_eq!(engine.core_count(), 11);
        assert_eq!(engine.stats().promotions, 1);
        assert_eq!(engine.stats().new_clusters, 0);
        // The new core now serves assignments.
        assert_eq!(engine.classify(&[2.0, 1.6]), Assignment::Cluster(0));
    }

    #[test]
    fn sparse_arrivals_buffer_then_spawn_a_cluster() {
        let mut engine = Engine::new(&grid_artifact());
        // Far from both clusters; min_pts = 3.
        assert_eq!(engine.ingest(&[50.0, 50.0]), IngestOutcome::Buffered);
        assert_eq!(engine.ingest(&[50.5, 50.0]), IngestOutcome::Buffered);
        assert_eq!(engine.num_clusters(), 2);
        // Third arrival sees two tracked neighbors + itself = 3: promoted,
        // and the earlier two are now ripe as well.
        let out = engine.ingest(&[50.2, 50.2]);
        assert!(matches!(out, IngestOutcome::Core { .. }));
        assert_eq!(engine.num_clusters(), 3);
        assert!(engine.stats().new_clusters >= 1);
        assert_eq!(
            engine.classify(&[50.1, 50.1]),
            Assignment::Cluster(2),
            "new cluster serves assignments"
        );
    }

    #[test]
    fn bridge_points_merge_clusters() {
        // Two clusters 3 apart; eps 1.5; a point midway touches cores of
        // both.
        let mut cores = PointSet::new(1);
        for x in [0.0, 1.0, 10.0, 11.0] {
            cores.push(&[x]);
        }
        let artifact = ModelArtifact {
            eps: 1.5,
            min_pts: 2,
            num_clusters: 2,
            cores,
            core_labels: vec![0, 0, 1, 1],
            boundaries: None,
            quality: None,
            sampling: None,
        };
        let mut engine = Engine::new(&artifact);
        assert_eq!(engine.num_clusters(), 2);
        // Chain toward the gap; each arrival touches the previous core.
        for x in [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0] {
            engine.ingest(&[x]);
        }
        assert_eq!(engine.num_clusters(), 1, "chain must merge the clusters");
        assert!(engine.stats().merges >= 1);
        assert_eq!(engine.classify(&[0.5]), engine.classify(&[10.5]));
    }

    #[test]
    fn health_is_a_coherent_snapshot_of_the_getters() {
        let mut engine = Engine::new(&grid_artifact());
        let fresh = engine.health();
        assert_eq!(fresh.staleness, 0.0);
        assert!(!fresh.refit_recommended);
        assert_eq!(fresh.core_points, 10);
        assert_eq!(fresh.tail_length, 0);
        assert_eq!(fresh.clusters, 2);
        assert_eq!(fresh.buffered_points, 0);
        assert_eq!(fresh.tree_rebuilds, 0);
        engine.ingest(&[2.0, 0.5]); // promoted immediately
        engine.ingest(&[50.0, 50.0]); // buffered
        let h = engine.health();
        assert_eq!(h.staleness, engine.staleness());
        assert_eq!(h.refit_recommended, engine.refit_recommended());
        assert_eq!(h.core_points, engine.core_count());
        assert_eq!(h.tail_length, 1);
        assert_eq!(h.clusters, engine.num_clusters());
        assert_eq!(h.buffered_points, engine.buffered_count());
    }

    #[test]
    fn staleness_grows_and_recommends_refit() {
        let mut engine = Engine::new(&grid_artifact());
        assert_eq!(engine.staleness(), 0.0);
        assert!(!engine.refit_recommended());
        for i in 0..6 {
            engine.ingest(&[2.0 + 0.01 * (i + 1) as f64, 0.5]);
        }
        assert!(engine.staleness() > 0.25, "{}", engine.staleness());
        assert!(engine.refit_recommended());
    }

    #[test]
    fn snapshot_round_trips_through_an_equal_engine() {
        let mut engine = Engine::new(&grid_artifact());
        engine.ingest(&[2.0, 0.5]);
        engine.ingest(&[50.0, 50.0]);
        let snap = engine.snapshot();
        assert_eq!(snap.cores.len(), engine.core_count());
        snap.validate()
            .expect("snapshot of a live engine validates");
        let reloaded = Engine::new(&snap);
        for q in [[2.0, 0.6], [2.0, 99.0], [70.0, 70.0]] {
            assert_eq!(reloaded.classify(&q), engine.classify(&q));
        }
    }

    #[test]
    fn tree_rebuild_preserves_answers() {
        let mut engine = Engine::new(&grid_artifact());
        // Force enough promotions to trigger a rebuild (tail >= 64).
        let mut expected_hits = 0;
        for i in 0..70 {
            let x = [(i % 10) as f64 * 0.1, 0.2 + (i / 10) as f64 * 0.2];
            if matches!(engine.ingest(&x), IngestOutcome::Core { .. }) {
                expected_hits += 1;
            }
        }
        assert!(expected_hits > 0);
        assert!(engine.stats().tree_rebuilds >= 1 || engine.tail.len() < 64);
        assert_eq!(engine.classify(&[0.5, 0.5]), Assignment::Cluster(0));
    }

    #[test]
    fn config_overrides_the_refit_threshold() {
        let artifact = grid_artifact();
        let config = EngineConfig::new().with_refit_threshold(0.05);
        let mut engine = Engine::with_config(&artifact, config);
        assert_eq!(engine.config().refit_threshold, 0.05);
        engine.ingest(&[2.0, 0.5]); // one promotion: staleness 0.1
        assert!(engine.refit_recommended(), "{}", engine.staleness());
        let mut default_engine = Engine::new(&artifact);
        default_engine.ingest(&[2.0, 0.5]);
        assert!(!default_engine.refit_recommended());
    }

    #[test]
    #[should_panic(expected = "refit threshold")]
    fn config_rejects_nonpositive_threshold() {
        EngineConfig::new().with_refit_threshold(0.0);
    }

    #[test]
    fn classify_scored_agrees_with_classify() {
        let engine = Engine::new(&grid_artifact());
        for q in [[2.0, 0.5], [2.0, 99.5], [2.0, 50.0], [4.9, 1.0]] {
            let (a, d) = engine.classify_scored(&q);
            assert_eq!(a, engine.classify(&q));
            match a {
                Assignment::Cluster(_) => {
                    let d = d.expect("cluster hits carry a distance");
                    assert!(d <= engine.eps() && d >= 0.0, "{d}");
                }
                Assignment::Noise => assert_eq!(d, None),
            }
        }
        // The reported distance is to the *nearest* core.
        let (_, d) = engine.classify_scored(&[2.0, 0.5]);
        assert!((d.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monitored_paths_window_and_alert() {
        use dbsvec_obs::RecordingObserver;
        let artifact = grid_artifact().with_quality_from_labels();
        let mut engine = Engine::new(&artifact);
        assert!(engine.quality().is_some());
        let mut monitor = engine.monitor(
            MonitorConfig::new()
                .with_window(8)
                .with_drift_threshold(0.3)
                .with_ewma_alpha(1.0),
        );
        let mut rec = RecordingObserver::new();
        // All-noise traffic: maximal noise delta against a 0%-noise fit.
        for _ in 0..8 {
            let a = engine.assign_monitored(&[2.0, 50.0], &mut monitor, &mut rec);
            assert_eq!(a, Assignment::Noise);
        }
        let counts = rec.replay();
        assert_eq!(counts.assigns, 8);
        assert_eq!(counts.quality_windows, 1);
        assert_eq!(counts.drift_alerts, 1);
        let h = engine.health_with(&monitor);
        assert!(h.refit_recommended, "drift alone must recommend refit");
        assert_eq!(h.staleness, 0.0);
        let drift = h.drift.expect("completed window carries signals");
        assert!(drift.smoothed_score >= 0.3, "{drift:?}");
        assert_eq!(drift.dominant(), "noise_delta");
        // Plain health stays drift-blind.
        assert!(engine.health().drift.is_none());
        assert!(!engine.health().refit_recommended);
    }

    #[test]
    fn monitored_ingest_counts_windows() {
        use dbsvec_obs::RecordingObserver;
        let artifact = grid_artifact().with_quality_from_labels();
        let mut engine = Engine::new(&artifact);
        let mut monitor = engine.monitor(MonitorConfig::new().with_window(4));
        let mut rec = RecordingObserver::new();
        for i in 0..4 {
            engine.ingest_monitored(&[30.0 + i as f64 * 8.0, 30.0], &mut monitor, &mut rec);
        }
        let counts = rec.replay();
        assert_eq!(counts.ingests, 4);
        assert_eq!(counts.quality_windows, 1);
        assert_eq!(monitor.windows_completed(), 1);
    }

    impl ModelArtifact {
        /// Test helper: synthesizes the quality baseline straight from the
        /// artifact's own cores (each core is its own training point).
        fn with_quality_from_labels(self) -> ModelArtifact {
            let points = self.cores.clone();
            let clustering = dbsvec_core::Clustering::from_assignments(
                self.core_labels.iter().map(|&l| Some(l)).collect(),
            );
            self.with_quality(&points, &clustering)
        }
    }

    #[test]
    fn events_flow_through_the_observer() {
        use dbsvec_obs::RecordingObserver;
        let mut engine = Engine::new(&grid_artifact());
        let mut rec = RecordingObserver::new();
        engine.assign_observed(&[2.0, 0.5], &mut rec);
        engine.ingest_observed(&[2.0, 0.5], &mut rec);
        engine.ingest_observed(&[2.0, 0.5], &mut rec); // duplicate
        let counts = rec.replay();
        assert_eq!(counts.assigns, 1);
        assert_eq!(counts.assign_hits, 1);
        assert_eq!(counts.ingests, 2);
        assert_eq!(counts.ingest_duplicates, 1);
        assert_eq!(counts.promotions, 1);
    }
}
