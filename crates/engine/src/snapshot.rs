//! The `.dbm` binary snapshot format — versioned, checksummed, dependency
//! free.
//!
//! Layout (all integers little-endian, all floats IEEE-754 `f64` LE bits —
//! encoding preserves the exact bit pattern, so save→load→save is
//! byte-identical):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  89 44 42 53 4D 0D 0A 1A  ("\x89DBSM\r\n\x1a")
//! 8       4     format version (u32)            currently 3 (reads 1 and 2 too)
//! 12      8     FNV-1a 64 checksum of payload (u64)
//! 20      ...   payload
//! ```
//!
//! Payload:
//!
//! ```text
//! u32 dims | u32 core_count | u32 num_clusters | u32 min_pts
//! f64 eps  | u32 flags (bit 0: boundaries, bit 1: quality baseline,
//!                       bit 2: sampling metadata)
//! f64 core coords   × core_count·dims
//! u32 core labels   × core_count
//! [flags bit 0] u32 boundary_count, then per boundary:
//!     u32 cluster | u32 sv_count
//!     f64 sigma | f64 r_sq | f64 alpha_k_alpha
//!     f64 sv coords × sv_count·dims
//!     f64 alphas    × sv_count
//! [flags bit 1, version ≥ 2] quality baseline:
//!     u64 noise_points | u64 total_points
//!     u32 occupancy_len | u64 occupancy × occupancy_len
//!     histogram assign_dist
//!     u32 margin_present (0/1) | [histogram margin]
//! [flags bit 2, version ≥ 3] sampling metadata:
//!     u32 mode_tag (0: uniform, 1: k-center)
//!     [tag 0] f64 rate | [tag 1] u64 m
//!     u64 seed | u64 candidates | u64 total
//! ```
//!
//! where `histogram` is the sparse-bucket encoding of a log-linear
//! `dbsvec_obs::Histogram`:
//!
//! ```text
//! u32 entry_count | (u32 bucket_index, u64 count) × entry_count
//! u64 sum | u64 min | u64 max      (all zero when entry_count = 0)
//! ```
//!
//! Older versions nest: version 2 is identical minus flag bit 2 and the
//! sampling section, version 1 additionally lacks flag bit 1 and the
//! baseline section. This build still reads both (the artifact simply
//! loads with `quality: None` / `sampling: None`) but always writes
//! version 3.
//!
//! The magic borrows PNG's trick: a high-bit byte first (catches 7-bit
//! transfer), `\r\n` (catches newline translation), and ^Z (stops `type`
//! on old shells). Decoding checks magic → version → checksum → structure
//! → semantics, in that order, and rejects trailing bytes, so every
//! corruption mode maps to a typed [`SnapshotError`] rather than a panic
//! or a silently wrong model.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use dbsvec_geometry::PointSet;

use dbsvec_obs::Histogram;

use crate::artifact::{ClusterBoundary, ModelArtifact, QualityBaseline, SampledMode, SamplingInfo};

/// File signature of a `.dbm` snapshot.
pub const MAGIC: [u8; 8] = [0x89, b'D', b'B', b'S', b'M', b'\r', b'\n', 0x1a];

/// The format version this build writes.
pub const FORMAT_VERSION: u32 = 3;

/// The oldest format version this build still reads.
pub const MIN_READ_VERSION: u32 = 1;

/// Size of the fixed header (magic + version + checksum).
const HEADER_LEN: usize = 8 + 4 + 8;

/// Why a snapshot could not be decoded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying read or write failed.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The file is a snapshot, but of a format version this build does not
    /// read.
    UnsupportedVersion(u32),
    /// The payload does not hash to the checksum in the header.
    ChecksumMismatch {
        /// Checksum stored in the header.
        expected: u64,
        /// Checksum computed over the payload actually present.
        found: u64,
    },
    /// The payload ended before a field it promised.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes remaining.
        available: usize,
    },
    /// Structurally well-formed but semantically inconsistent (bad lengths,
    /// out-of-range labels, non-finite parameters, trailing bytes, ...).
    Invalid(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a dbsvec model snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "snapshot format version {v} not supported (this build reads {MIN_READ_VERSION}..={FORMAT_VERSION})")
            }
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needed {needed} more bytes, {available} available"
            ),
            SnapshotError::Invalid(why) => write!(f, "snapshot invalid: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty for catching
/// accidental corruption (this is an integrity check, not a security
/// boundary).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64_slice(&mut self, vs: &[f64]) {
        for &v in vs {
            self.f64(v);
        }
    }
    fn histogram(&mut self, h: &Histogram) {
        let entries: Vec<(usize, u64)> = h.sparse_counts().collect();
        self.u32(entries.len() as u32);
        for (i, c) in entries {
            self.u32(i as u32);
            self.u64(c);
        }
        self.u64(h.sum());
        self.u64(h.min().unwrap_or(0));
        self.u64(h.max().unwrap_or(0));
    }
}

/// Encodes an artifact to snapshot bytes. Infallible: any artifact
/// representable in memory is representable on disk.
pub fn encode(artifact: &ModelArtifact) -> Vec<u8> {
    let mut payload = Writer { buf: Vec::new() };
    payload.u32(artifact.cores.dims() as u32);
    payload.u32(artifact.cores.len() as u32);
    payload.u32(artifact.num_clusters);
    payload.u32(artifact.min_pts);
    payload.f64(artifact.eps);
    let mut flags = 0u32;
    if artifact.boundaries.is_some() {
        flags |= 1;
    }
    if artifact.quality.is_some() {
        flags |= 2;
    }
    if artifact.sampling.is_some() {
        flags |= 4;
    }
    payload.u32(flags);
    payload.f64_slice(artifact.cores.as_flat());
    for &label in &artifact.core_labels {
        payload.u32(label);
    }
    if let Some(bounds) = &artifact.boundaries {
        payload.u32(bounds.len() as u32);
        for b in bounds {
            payload.u32(b.cluster);
            payload.u32(b.sv.len() as u32);
            payload.f64(b.sigma);
            payload.f64(b.r_sq);
            payload.f64(b.alpha_k_alpha);
            payload.f64_slice(b.sv.as_flat());
            payload.f64_slice(&b.alpha);
        }
    }
    if let Some(q) = &artifact.quality {
        payload.u64(q.noise_points);
        payload.u64(q.total_points);
        payload.u32(q.occupancy.len() as u32);
        for &c in &q.occupancy {
            payload.u64(c);
        }
        payload.histogram(&q.assign_dist);
        match &q.margin {
            Some(m) => {
                payload.u32(1);
                payload.histogram(m);
            }
            None => payload.u32(0),
        }
    }
    if let Some(s) = &artifact.sampling {
        match s.mode {
            SampledMode::Uniform { rate } => {
                payload.u32(0);
                payload.f64(rate);
            }
            SampledMode::KCenter { m } => {
                payload.u32(1);
                payload.u64(m);
            }
        }
        payload.u64(s.seed);
        payload.u64(s.candidates);
        payload.u64(s.total);
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.buf.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&fnv1a(&payload.buf).to_le_bytes());
    out.extend_from_slice(&payload.buf);
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let available = self.buf.len() - self.pos;
        if n > available {
            return Err(SnapshotError::Truncated {
                needed: n,
                available,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn histogram(&mut self) -> Result<Histogram, SnapshotError> {
        let entry_count = self.u32()? as usize;
        let mut entries = Vec::with_capacity(entry_count.min(4096));
        for _ in 0..entry_count {
            let index = self.u32()? as usize;
            let count = self.u64()?;
            entries.push((index, count));
        }
        let sum = self.u64()?;
        let min = self.u64()?;
        let max = self.u64()?;
        if entries.is_empty() && (sum | min | max) != 0 {
            return Err(SnapshotError::Invalid(format!(
                "empty histogram with nonzero summary (sum {sum}, min {min}, max {max})"
            )));
        }
        Histogram::from_sparse(&entries, sum, min, max)
            .map_err(|why| SnapshotError::Invalid(format!("histogram: {why}")))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>, SnapshotError> {
        let bytes = self.take(n.checked_mul(8).ok_or(SnapshotError::Truncated {
            needed: usize::MAX,
            available: self.buf.len() - self.pos,
        })?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Decodes snapshot bytes back into an artifact, validating magic,
/// version, checksum, structure, and semantics (via
/// [`ModelArtifact::validate`]) in that order.
pub fn decode(bytes: &[u8]) -> Result<ModelArtifact, SnapshotError> {
    if bytes.len() < 8 || bytes[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated {
            needed: HEADER_LEN - bytes.len(),
            available: 0,
        });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if !(MIN_READ_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let expected = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let payload = &bytes[HEADER_LEN..];
    let found = fnv1a(payload);
    if found != expected {
        return Err(SnapshotError::ChecksumMismatch { expected, found });
    }

    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let dims = r.u32()? as usize;
    let core_count = r.u32()? as usize;
    let num_clusters = r.u32()?;
    let min_pts = r.u32()?;
    let eps = r.f64()?;
    let flags = r.u32()?;
    if dims == 0 {
        return Err(SnapshotError::Invalid("zero dimensions".to_string()));
    }
    let known_flags = match version {
        1 => 0b1,
        2 => 0b11,
        _ => 0b111,
    };
    if flags & !known_flags != 0 {
        return Err(SnapshotError::Invalid(format!(
            "unknown flag bits {flags:#x} for version {version}"
        )));
    }
    let coords = r.f64_vec(core_count * dims)?;
    let cores = PointSet::from_flat(dims, coords);
    let mut core_labels = Vec::with_capacity(core_count);
    for _ in 0..core_count {
        core_labels.push(r.u32()?);
    }
    let boundaries = if flags & 1 != 0 {
        let boundary_count = r.u32()? as usize;
        let mut bounds = Vec::with_capacity(boundary_count);
        for _ in 0..boundary_count {
            let cluster = r.u32()?;
            let sv_count = r.u32()? as usize;
            let sigma = r.f64()?;
            let r_sq = r.f64()?;
            let alpha_k_alpha = r.f64()?;
            let sv = PointSet::from_flat(dims, r.f64_vec(sv_count * dims)?);
            let alpha = r.f64_vec(sv_count)?;
            bounds.push(ClusterBoundary {
                cluster,
                sigma,
                r_sq,
                alpha_k_alpha,
                sv,
                alpha,
            });
        }
        Some(bounds)
    } else {
        None
    };
    let quality = if flags & 2 != 0 {
        let noise_points = r.u64()?;
        let total_points = r.u64()?;
        let occupancy_len = r.u32()? as usize;
        let mut occupancy = Vec::with_capacity(occupancy_len.min(4096));
        for _ in 0..occupancy_len {
            occupancy.push(r.u64()?);
        }
        let assign_dist = r.histogram()?;
        let margin = match r.u32()? {
            0 => None,
            1 => Some(r.histogram()?),
            other => {
                return Err(SnapshotError::Invalid(format!(
                    "bad margin-present flag {other}"
                )))
            }
        };
        Some(QualityBaseline {
            occupancy,
            noise_points,
            total_points,
            assign_dist,
            margin,
        })
    } else {
        None
    };
    let sampling = if flags & 4 != 0 {
        let mode = match r.u32()? {
            0 => SampledMode::Uniform { rate: r.f64()? },
            1 => SampledMode::KCenter { m: r.u64()? },
            other => {
                return Err(SnapshotError::Invalid(format!(
                    "bad sampling mode tag {other}"
                )))
            }
        };
        Some(SamplingInfo {
            mode,
            seed: r.u64()?,
            candidates: r.u64()?,
            total: r.u64()?,
        })
    } else {
        None
    };
    if r.remaining() != 0 {
        return Err(SnapshotError::Invalid(format!(
            "{} trailing bytes after payload",
            r.remaining()
        )));
    }

    let artifact = ModelArtifact {
        eps,
        min_pts,
        num_clusters,
        cores,
        core_labels,
        boundaries,
        quality,
        sampling,
    };
    artifact.validate().map_err(SnapshotError::Invalid)?;
    Ok(artifact)
}

/// Writes an artifact to `path`; returns the snapshot size in bytes.
pub fn write_file(artifact: &ModelArtifact, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
    let bytes = encode(artifact);
    fs::write(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// Reads and decodes a snapshot from `path`; also returns its size in
/// bytes.
pub fn read_file(path: impl AsRef<Path>) -> Result<(ModelArtifact, u64), SnapshotError> {
    let bytes = fs::read(path)?;
    let len = bytes.len() as u64;
    Ok((decode(&bytes)?, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_artifact() -> ModelArtifact {
        ModelArtifact {
            eps: 0.75,
            min_pts: 4,
            num_clusters: 2,
            cores: PointSet::from_rows(&[vec![0.0, 1.0], vec![2.5, -3.0], vec![10.0, 10.0]]),
            core_labels: vec![0, 0, 1],
            boundaries: None,
            quality: None,
            sampling: None,
        }
    }

    #[test]
    fn round_trip_identity() {
        let a = tiny_artifact();
        let bytes = encode(&a);
        let b = decode(&bytes).expect("own encoding decodes");
        assert_eq!(a, b);
        assert_eq!(bytes, encode(&b), "save→load→save must be byte-stable");
    }

    #[test]
    fn sampling_metadata_round_trips() {
        for mode in [
            SampledMode::Uniform { rate: 0.05 },
            SampledMode::KCenter { m: 2 },
        ] {
            let a = tiny_artifact().with_sampling(SamplingInfo {
                mode,
                seed: 42,
                candidates: 2,
                total: 3,
            });
            let bytes = encode(&a);
            let b = decode(&bytes).expect("sampled encoding decodes");
            assert_eq!(a, b);
            assert_eq!(bytes, encode(&b));
        }
    }

    #[test]
    fn reads_version_2_snapshots_without_sampling() {
        // A v2 snapshot is byte-identical to a v3 one that carries no
        // sampling section; only the header version differs.
        let a = tiny_artifact();
        let mut bytes = encode(&a);
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        let b = decode(&bytes).expect("v2 snapshot still reads");
        assert_eq!(a, b);
        assert!(b.sampling.is_none());
    }

    #[test]
    fn rejects_sampling_flag_on_old_versions() {
        // Flag bit 2 did not exist before v3: a v2 header carrying it is
        // corruption, not a readable snapshot.
        let a = tiny_artifact().with_sampling(SamplingInfo {
            mode: SampledMode::Uniform { rate: 0.5 },
            seed: 1,
            candidates: 1,
            total: 3,
        });
        let mut bytes = encode(&a);
        bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(SnapshotError::Invalid(_))));
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn rejects_flipped_payload_byte() {
        let mut bytes = encode(&tiny_artifact());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let a = tiny_artifact();
        let mut bytes = encode(&a);
        let payload_start = HEADER_LEN;
        bytes.push(0u8);
        // Re-stamp the checksum so the failure is structural, not checksum.
        let sum = fnv1a(&bytes[payload_start..]);
        bytes[12..20].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode(&bytes), Err(SnapshotError::Invalid(_))));
    }
}
