//! One LSH table: an AND-composition of `k` p-stable hash functions.

use std::collections::HashMap;

use dbsvec_geometry::{rng::SplitMix64, PointId, PointSet};

use crate::pstable::PStableHash;

/// A hash table keyed by the concatenation of `k` p-stable hashes.
///
/// Composing `k` functions (logical AND) sharpens selectivity: far points
/// must collide in *every* component to share a bucket, so false-positive
/// candidates drop exponentially in `k` while near points keep a constant
/// per-component collision probability.
#[derive(Clone, Debug)]
pub struct LshTable {
    hashes: Vec<PStableHash>,
    buckets: HashMap<Vec<i64>, Vec<PointId>>,
}

impl LshTable {
    /// Samples `k` hash functions and indexes every point of `points`.
    pub fn build(points: &PointSet, k: usize, width: f64, rng: &mut SplitMix64) -> Self {
        assert!(k >= 1, "a table needs at least one hash function");
        let hashes: Vec<PStableHash> = (0..k)
            .map(|_| PStableHash::sample(points.dims(), width, rng))
            .collect();
        let mut buckets: HashMap<Vec<i64>, Vec<PointId>> = HashMap::new();
        for (id, p) in points.iter() {
            buckets.entry(key_of(&hashes, p)).or_default().push(id);
        }
        Self { hashes, buckets }
    }

    /// The bucket of `query`, or an empty slice.
    pub fn bucket(&self, query: &[f64]) -> &[PointId] {
        self.buckets
            .get(&key_of(&self.hashes, query))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of non-empty buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Number of hash functions `k`.
    pub fn k(&self) -> usize {
        self.hashes.len()
    }
}

fn key_of(hashes: &[PStableHash], p: &[f64]) -> Vec<i64> {
    hashes.iter().map(|h| h.hash(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_points() -> PointSet {
        let mut ps = PointSet::new(2);
        for i in 0..20 {
            ps.push(&[i as f64 * 0.05, 0.0]); // tight cluster near origin
        }
        for i in 0..20 {
            ps.push(&[1000.0 + i as f64 * 0.05, 0.0]); // far away cluster
        }
        ps
    }

    #[test]
    fn query_bucket_contains_its_neighbors_mostly() {
        let ps = clustered_points();
        let mut rng = SplitMix64::new(3);
        let table = LshTable::build(&ps, 4, 5.0, &mut rng);
        let bucket = table.bucket(&[0.5, 0.0]);
        // The near cluster should dominate the bucket.
        let near = bucket.iter().filter(|&&id| id < 20).count();
        let far = bucket.len() - near;
        assert!(near > 0, "bucket missed the nearby cluster entirely");
        assert_eq!(far, 0, "points 1000 away must not share a bucket at w=5");
    }

    #[test]
    fn every_point_is_indexed_exactly_once() {
        let ps = clustered_points();
        let mut rng = SplitMix64::new(5);
        let table = LshTable::build(&ps, 2, 5.0, &mut rng);
        let mut total = 0;
        let mut seen = vec![false; ps.len()];
        for (_, ids) in table.buckets.iter() {
            for &id in ids {
                assert!(!seen[id as usize], "duplicate id {id}");
                seen[id as usize] = true;
                total += 1;
            }
        }
        assert_eq!(total, ps.len());
    }

    #[test]
    fn unseen_region_yields_empty_bucket() {
        let ps = clustered_points();
        let mut rng = SplitMix64::new(7);
        let table = LshTable::build(&ps, 6, 1.0, &mut rng);
        assert!(table.bucket(&[-5000.0, 5000.0]).is_empty());
    }

    #[test]
    fn more_hashes_mean_finer_buckets() {
        let ps = clustered_points();
        let mut r1 = SplitMix64::new(11);
        let mut r2 = SplitMix64::new(11);
        let coarse = LshTable::build(&ps, 1, 2.0, &mut r1);
        let fine = LshTable::build(&ps, 8, 2.0, &mut r2);
        assert!(fine.bucket_count() >= coarse.bucket_count());
        assert_eq!(fine.k(), 8);
    }
}
