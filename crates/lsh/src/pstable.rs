//! Single p-stable (Gaussian-projection) hash functions.
//!
//! Datar et al., "Locality-sensitive hashing scheme based on p-stable
//! distributions" (SoCG 2004). With `a ~ N(0, 1)^d` and `b ~ U[0, w)`:
//!
//! ```text
//! h(x) = ⌊ (a·x + b) / w ⌋
//! ```
//!
//! Two points at distance `r` collide with probability that decays in
//! `r / w`, so choosing `w ≈ ε` makes the buckets approximate
//! ε-neighborhoods — the property the DBSCAN-LSH baseline relies on.

use dbsvec_geometry::rng::SplitMix64;

/// One p-stable hash function `h(x) = ⌊(a·x + b)/w⌋`.
#[derive(Clone, Debug)]
pub struct PStableHash {
    projection: Vec<f64>,
    offset: f64,
    width: f64,
}

impl PStableHash {
    /// Samples a hash function for `dims`-dimensional data with bucket
    /// width `w`, deterministically from `rng`.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is positive and finite.
    pub fn sample(dims: usize, width: f64, rng: &mut SplitMix64) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "bucket width must be positive, got {width}"
        );
        let projection = (0..dims).map(|_| gaussian(rng)).collect();
        let offset = rng.next_f64() * width;
        Self {
            projection,
            offset,
            width,
        }
    }

    /// Hashes a point to its bucket index.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `x` has the wrong dimensionality.
    #[inline]
    pub fn hash(&self, x: &[f64]) -> i64 {
        debug_assert_eq!(x.len(), self.projection.len());
        let dot: f64 = self.projection.iter().zip(x).map(|(&a, &xi)| a * xi).sum();
        ((dot + self.offset) / self.width).floor() as i64
    }

    /// The bucket width `w`.
    pub fn width(&self) -> f64 {
        self.width
    }
}

/// Standard normal sample via the Box–Muller transform.
pub(crate) fn gaussian(rng: &mut SplitMix64) -> f64 {
    // Guard the log against an exact zero.
    let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut r1 = SplitMix64::new(5);
        let mut r2 = SplitMix64::new(5);
        let h1 = PStableHash::sample(4, 2.0, &mut r1);
        let h2 = PStableHash::sample(4, 2.0, &mut r2);
        let x = [0.3, -1.0, 2.5, 0.0];
        assert_eq!(h1.hash(&x), h2.hash(&x));
    }

    #[test]
    fn nearby_points_usually_collide() {
        let mut rng = SplitMix64::new(7);
        let mut collisions = 0;
        let trials = 200;
        for _ in 0..trials {
            let h = PStableHash::sample(3, 4.0, &mut rng);
            // Distance 0.1 with w = 4: collision probability is very high.
            if h.hash(&[0.0, 0.0, 0.0]) == h.hash(&[0.1, 0.0, 0.0]) {
                collisions += 1;
            }
        }
        assert!(
            collisions > trials * 9 / 10,
            "only {collisions}/{trials} collisions"
        );
    }

    #[test]
    fn far_points_usually_split() {
        let mut rng = SplitMix64::new(9);
        let mut collisions = 0;
        let trials = 200;
        for _ in 0..trials {
            let h = PStableHash::sample(3, 1.0, &mut rng);
            // Distance 50 with w = 1: collision is very unlikely.
            if h.hash(&[0.0, 0.0, 0.0]) == h.hash(&[50.0, 0.0, 0.0]) {
                collisions += 1;
            }
        }
        assert!(
            collisions < trials / 10,
            "{collisions}/{trials} far collisions"
        );
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SplitMix64::new(11);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn rejects_zero_width() {
        let mut rng = SplitMix64::new(1);
        let _ = PStableHash::sample(2, 0.0, &mut rng);
    }
}
