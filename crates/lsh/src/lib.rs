//! p-stable locality-sensitive hashing.
//!
//! The substrate behind the paper's **DBSCAN-LSH** baseline \[11\], \[21\]:
//! Gaussian-projection hashes bucket points so that near points collide and
//! far points separate. An [`LshIndex`] composes `k` hash functions per
//! table (AND, for precision) across `ℓ` independent tables (OR, for
//! recall) and answers *approximate* range queries: candidates are drawn
//! from the query's buckets and filtered by exact distance. Points that
//! collide in no table are missed — that is the approximation the DBSCAN-
//! LSH accuracy numbers in the paper's Table III reflect.
//!
//! ```
//! use dbsvec_geometry::PointSet;
//! use dbsvec_index::RangeIndex;
//! use dbsvec_lsh::LshIndex;
//!
//! let mut ps = PointSet::new(2);
//! for i in 0..50 {
//!     ps.push(&[i as f64 * 0.01, 0.0]);
//! }
//! let index = LshIndex::build(&ps, &Default::default(), 42);
//! let hits = index.range_vec(&[0.25, 0.0], 0.1);
//! assert!(!hits.is_empty());
//! ```

pub mod pstable;
pub mod table;

use dbsvec_geometry::{rng::SplitMix64, PointId, PointSet};
use dbsvec_index::RangeIndex;

pub use pstable::PStableHash;
pub use table::LshTable;

/// LSH configuration.
///
/// The paper's DBSCAN-LSH experiments use **eight p-stable hashing
/// functions** (§V-A); the defaults here follow that with `k = 8` and a
/// moderate table count.
#[derive(Clone, Copy, Debug)]
pub struct LshConfig {
    /// Hash functions per table (AND-composition).
    pub hashes_per_table: usize,
    /// Number of independent tables (OR-composition).
    pub tables: usize,
    /// Bucket width `w`. Pick `w ≈ ε` for ε-range workloads; the
    /// [`LshIndex::build_for_radius`] constructor does this for you.
    pub bucket_width: f64,
}

impl Default for LshConfig {
    fn default() -> Self {
        Self {
            hashes_per_table: 8,
            tables: 8,
            bucket_width: 1.0,
        }
    }
}

/// Multi-table p-stable LSH index over a borrowed [`PointSet`].
pub struct LshIndex<'a> {
    points: &'a PointSet,
    tables: Vec<LshTable>,
}

impl<'a> LshIndex<'a> {
    /// Builds the index with an explicit configuration, deterministically
    /// from `seed`.
    pub fn build(points: &'a PointSet, config: &LshConfig, seed: u64) -> Self {
        assert!(config.tables >= 1, "at least one table required");
        let mut rng = SplitMix64::new(seed);
        let tables = (0..config.tables)
            .map(|_| {
                LshTable::build(
                    points,
                    config.hashes_per_table,
                    config.bucket_width,
                    &mut rng,
                )
            })
            .collect();
        Self { points, tables }
    }

    /// Builds the index tuned for ε-range queries of radius `eps`.
    ///
    /// `w = 4ε`: with `k = 8` AND-composed hashes the per-table collision
    /// probability at distance ε is ≈ 0.8⁸ ≈ 0.17, so eight OR-composed
    /// tables keep the boundary miss rate near 2% while interior neighbors
    /// are found almost surely — approximate, as DBSCAN-LSH requires.
    pub fn build_for_radius(points: &'a PointSet, eps: f64, seed: u64) -> Self {
        let config = LshConfig {
            bucket_width: 4.0 * eps,
            ..LshConfig::default()
        };
        Self::build(points, &config, seed)
    }

    /// The indexed point set.
    pub fn points(&self) -> &'a PointSet {
        self.points
    }

    /// Deduplicated candidate ids whose bucket matches `query` in at least
    /// one table. No distance filtering.
    pub fn candidates(&self, query: &[f64]) -> Vec<PointId> {
        let mut out: Vec<PointId> = Vec::new();
        for table in &self.tables {
            out.extend_from_slice(table.bucket(query));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of tables ℓ.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

impl RangeIndex for LshIndex<'_> {
    /// *Approximate* range query: exact distance filtering over the LSH
    /// candidates. May miss true neighbors that collide in no table.
    fn range(&self, query: &[f64], eps: f64, out: &mut Vec<PointId>) {
        let eps_sq = eps * eps;
        for id in self.candidates(query) {
            if self.points.squared_distance_to(id, query) <= eps_sq {
                out.push(id);
            }
        }
    }

    fn len(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, step: f64) -> PointSet {
        let mut ps = PointSet::new(2);
        for i in 0..n {
            ps.push(&[i as f64 * step, 0.0]);
        }
        ps
    }

    #[test]
    fn finds_most_true_neighbors() {
        let ps = line(200, 0.1);
        let index = LshIndex::build_for_radius(&ps, 0.5, 1);
        let hits = index.range_vec(&[10.0, 0.0], 0.5);
        // True neighborhood: 11 points (±0.5 around 10.0).
        assert!(
            hits.len() >= 8,
            "recalled only {} of ~11 neighbors",
            hits.len()
        );
        // No false positives ever: exact filtering.
        for &id in &hits {
            assert!(dbsvec_geometry::euclidean(ps.point(id), &[10.0, 0.0]) <= 0.5);
        }
    }

    #[test]
    fn more_tables_never_reduce_candidates() {
        let ps = line(100, 0.2);
        let few = LshIndex::build(
            &ps,
            &LshConfig {
                hashes_per_table: 4,
                tables: 1,
                bucket_width: 1.0,
            },
            3,
        );
        let many = LshIndex::build(
            &ps,
            &LshConfig {
                hashes_per_table: 4,
                tables: 8,
                bucket_width: 1.0,
            },
            3,
        );
        let q = [5.0, 0.0];
        assert!(many.candidates(&q).len() >= few.candidates(&q).len());
        assert_eq!(many.table_count(), 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let ps = line(50, 0.3);
        let a = LshIndex::build_for_radius(&ps, 1.0, 9);
        let b = LshIndex::build_for_radius(&ps, 1.0, 9);
        let q = [7.0, 0.0];
        assert_eq!(a.candidates(&q), b.candidates(&q));
    }

    #[test]
    fn empty_point_set() {
        let ps = PointSet::new(3);
        let index = LshIndex::build_for_radius(&ps, 1.0, 2);
        assert!(index.is_empty());
        assert!(index.range_vec(&[0.0, 0.0, 0.0], 5.0).is_empty());
    }

    #[test]
    fn candidates_are_deduplicated() {
        let ps = line(30, 0.05);
        let index = LshIndex::build(
            &ps,
            &LshConfig {
                hashes_per_table: 2,
                tables: 6,
                bucket_width: 10.0,
            },
            5,
        );
        let cands = index.candidates(&[0.5, 0.0]);
        let mut sorted = cands.clone();
        sorted.dedup();
        assert_eq!(cands.len(), sorted.len());
    }
}
