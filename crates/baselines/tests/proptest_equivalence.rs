//! Randomized property tests: exact algorithms agree on arbitrary inputs;
//! approximate ones respect their contracts.
//!
//! Deterministic SplitMix64-driven instance loops; fixed seeds make every
//! failure exactly reproducible.

use dbsvec_baselines::{Dbscan, FDbscan, NqDbscan, ParallelDbscan, RhoApproxDbscan};
use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;

fn point_set(rng: &mut SplitMix64, max_n: usize) -> PointSet {
    let d = 1 + rng.next_below(3) as usize;
    let n = 1 + rng.next_below(max_n as u64) as usize;
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..d).map(|_| rng.next_f64_range(-100.0, 100.0)).collect())
        .collect();
    PointSet::from_rows(&rows)
}

fn params(rng: &mut SplitMix64, eps_lo: f64, eps_hi: f64, mp_lo: u64, mp_hi: u64) -> (f64, usize) {
    (
        rng.next_f64_range(eps_lo, eps_hi),
        (mp_lo + rng.next_below(mp_hi - mp_lo)) as usize,
    )
}

#[test]
fn nq_dbscan_is_exactly_dbscan() {
    let mut rng = SplitMix64::new(0xAB01);
    for _ in 0..48 {
        let ps = point_set(&mut rng, 120);
        let (eps, min_pts) = params(&mut rng, 1.0, 80.0, 2, 8);
        let exact = Dbscan::new(eps, min_pts).fit(&ps).clustering;
        let nq = NqDbscan::new(eps, min_pts).fit(&ps).clustering;
        assert_eq!(exact, nq);
    }
}

#[test]
fn parallel_dbscan_matches_core_partition_and_noise() {
    use dbsvec_index::{LinearScan, RangeIndex};
    let mut rng = SplitMix64::new(0xAB02);
    for _ in 0..48 {
        let ps = point_set(&mut rng, 120);
        let (eps, min_pts) = params(&mut rng, 1.0, 80.0, 2, 8);
        let seq = Dbscan::new(eps, min_pts).fit(&ps).clustering;
        let par = ParallelDbscan::new(eps, min_pts, 3).fit(&ps).clustering;
        assert_eq!(seq.num_clusters(), par.num_clusters());
        let scan = LinearScan::build(&ps);
        let core: Vec<bool> = (0..ps.len())
            .map(|i| scan.count_range(ps.point(i as u32), eps) >= min_pts)
            .collect();
        for i in 0..ps.len() {
            assert_eq!(seq.is_noise(i), par.is_noise(i), "noise mismatch at {i}");
            if !core[i] {
                continue;
            }
            for j in (i + 1..ps.len()).step_by(5) {
                if core[j] {
                    assert_eq!(
                        seq.get(i) == seq.get(j),
                        par.get(i) == par.get(j),
                        "core pair ({i}, {j})"
                    );
                }
            }
        }
    }
}

#[test]
fn rho_approx_never_loses_true_core_points() {
    use dbsvec_index::{LinearScan, RangeIndex};
    let mut rng = SplitMix64::new(0xAB03);
    for _ in 0..48 {
        // ρ-approximate may over-count neighbors (by design) but its core
        // test must never reject a true core point, so every DBSCAN core
        // point must be clustered by it.
        let ps = point_set(&mut rng, 100);
        let (eps, min_pts) = params(&mut rng, 5.0, 60.0, 2, 6);
        let approx = RhoApproxDbscan::new(eps, min_pts, 0.001)
            .fit(&ps)
            .clustering;
        let scan = LinearScan::build(&ps);
        for i in 0..ps.len() {
            if scan.count_range(ps.point(i as u32), eps) >= min_pts {
                assert!(!approx.is_noise(i), "true core point {i} marked noise");
            }
        }
    }
}

#[test]
fn fdbscan_never_invents_clusters() {
    let mut rng = SplitMix64::new(0xAB04);
    for _ in 0..48 {
        // FDBSCAN queries a subset of points, so it can only fragment
        // DBSCAN clusters, never join DBSCAN-separated core points; its
        // noise is a superset of DBSCAN's (a border point whose only core
        // neighbors were never chosen as representatives stays noise).
        let ps = point_set(&mut rng, 100);
        let (eps, min_pts) = params(&mut rng, 1.0, 60.0, 2, 6);
        let exact = Dbscan::new(eps, min_pts).fit(&ps).clustering;
        let fast = FDbscan::new(eps, min_pts).fit(&ps).clustering;
        assert!(fast.num_clusters() >= exact.num_clusters());
        for i in 0..ps.len() {
            if exact.is_noise(i) {
                assert!(fast.is_noise(i), "DBSCAN noise {i} clustered by FDBSCAN");
            }
        }
    }
}

#[test]
fn labels_always_cover_every_point() {
    let mut rng = SplitMix64::new(0xAB05);
    for _ in 0..48 {
        let ps = point_set(&mut rng, 80);
        let (eps, min_pts) = params(&mut rng, 1.0, 50.0, 2, 6);
        for clustering in [
            Dbscan::new(eps, min_pts).fit(&ps).clustering,
            NqDbscan::new(eps, min_pts).fit(&ps).clustering,
            RhoApproxDbscan::new(eps, min_pts, 0.001)
                .fit(&ps)
                .clustering,
            FDbscan::new(eps, min_pts).fit(&ps).clustering,
        ] {
            assert_eq!(clustering.len(), ps.len());
            let total: usize = clustering.cluster_sizes().iter().sum();
            assert_eq!(total + clustering.noise_count(), ps.len());
        }
    }
}
