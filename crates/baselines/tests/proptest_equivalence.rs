//! Property tests: exact algorithms agree on arbitrary inputs; approximate
//! ones respect their contracts.

use proptest::prelude::*;

use dbsvec_baselines::{Dbscan, FDbscan, NqDbscan, ParallelDbscan, RhoApproxDbscan};
use dbsvec_geometry::PointSet;

fn point_set(max_n: usize) -> impl Strategy<Value = PointSet> {
    (1..=3usize).prop_flat_map(move |d| {
        prop::collection::vec(prop::collection::vec(-100.0..100.0f64, d), 1..=max_n)
            .prop_map(|rows| PointSet::from_rows(&rows))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nq_dbscan_is_exactly_dbscan(
        ps in point_set(120),
        eps in 1.0..80.0f64,
        min_pts in 2usize..8,
    ) {
        let exact = Dbscan::new(eps, min_pts).fit(&ps).clustering;
        let nq = NqDbscan::new(eps, min_pts).fit(&ps).clustering;
        prop_assert_eq!(exact, nq);
    }

    #[test]
    fn parallel_dbscan_matches_core_partition_and_noise(
        ps in point_set(120),
        eps in 1.0..80.0f64,
        min_pts in 2usize..8,
    ) {
        use dbsvec_index::{LinearScan, RangeIndex};
        let seq = Dbscan::new(eps, min_pts).fit(&ps).clustering;
        let par = ParallelDbscan::new(eps, min_pts, 3).fit(&ps).clustering;
        prop_assert_eq!(seq.num_clusters(), par.num_clusters());
        let scan = LinearScan::build(&ps);
        let core: Vec<bool> = (0..ps.len())
            .map(|i| scan.count_range(ps.point(i as u32), eps) >= min_pts)
            .collect();
        for i in 0..ps.len() {
            prop_assert_eq!(seq.is_noise(i), par.is_noise(i), "noise mismatch at {}", i);
            if !core[i] {
                continue;
            }
            for j in (i + 1..ps.len()).step_by(5) {
                if core[j] {
                    prop_assert_eq!(
                        seq.get(i) == seq.get(j),
                        par.get(i) == par.get(j),
                        "core pair ({}, {})", i, j
                    );
                }
            }
        }
    }

    #[test]
    fn rho_approx_never_loses_true_core_points(
        ps in point_set(100),
        eps in 5.0..60.0f64,
        min_pts in 2usize..6,
    ) {
        // ρ-approximate may over-count neighbors (by design) but its core
        // test must never reject a true core point, so every DBSCAN core
        // point must be clustered by it.
        use dbsvec_index::{LinearScan, RangeIndex};
        let approx = RhoApproxDbscan::new(eps, min_pts, 0.001).fit(&ps).clustering;
        let scan = LinearScan::build(&ps);
        for i in 0..ps.len() {
            if scan.count_range(ps.point(i as u32), eps) >= min_pts {
                prop_assert!(!approx.is_noise(i), "true core point {} marked noise", i);
            }
        }
    }

    #[test]
    fn fdbscan_never_invents_clusters(
        ps in point_set(100),
        eps in 1.0..60.0f64,
        min_pts in 2usize..6,
    ) {
        // FDBSCAN queries a subset of points, so it can only fragment
        // DBSCAN clusters, never join DBSCAN-separated core points; its
        // noise is a superset of DBSCAN's (a border point whose only core
        // neighbors were never chosen as representatives stays noise).
        let exact = Dbscan::new(eps, min_pts).fit(&ps).clustering;
        let fast = FDbscan::new(eps, min_pts).fit(&ps).clustering;
        prop_assert!(fast.num_clusters() >= exact.num_clusters());
        for i in 0..ps.len() {
            if exact.is_noise(i) {
                prop_assert!(fast.is_noise(i), "DBSCAN noise {} clustered by FDBSCAN", i);
            }
        }
    }

    #[test]
    fn labels_always_cover_every_point(
        ps in point_set(80),
        eps in 1.0..50.0f64,
        min_pts in 2usize..6,
    ) {
        for clustering in [
            Dbscan::new(eps, min_pts).fit(&ps).clustering,
            NqDbscan::new(eps, min_pts).fit(&ps).clustering,
            RhoApproxDbscan::new(eps, min_pts, 0.001).fit(&ps).clustering,
            FDbscan::new(eps, min_pts).fit(&ps).clustering,
        ] {
            prop_assert_eq!(clustering.len(), ps.len());
            let total: usize = clustering.cluster_sizes().iter().sum();
            prop_assert_eq!(total + clustering.noise_count(), ps.len());
        }
    }
}
