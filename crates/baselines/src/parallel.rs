//! Data-parallel exact DBSCAN.
//!
//! The paper notes that its O(n) range-query factor "can be brought down
//! further using spatial indices" and cites work on strongly parallelizable
//! R-trees \[23\]. This module supplies the standard two-phase parallel
//! DBSCAN (in the style of Patwary et al.'s PDSDBSCAN), built on the same
//! [`RangeIndex`] engines:
//!
//! 1. **parallel core determination** — the ε-neighborhoods of all points
//!    are computed by a pool of scoped threads (queries are read-only);
//! 2. **chunked union** — neighbor lists are materialized chunk by chunk
//!    (bounding memory at `chunk × neighborhood` ids) and folded into a
//!    union–find sequentially, which is cheap relative to the queries.
//!
//! The output is *exactly* DBSCAN's partition of the core points; border
//! points attach to the cluster of their nearest core neighbor
//! (deterministic, unlike first-come sequential DBSCAN), and the noise set
//! is identical to sequential DBSCAN's.

use dbsvec_core::labels::Clustering;
use dbsvec_core::UnionFind;
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::{RStarTree, RangeIndex};

/// Counters for a parallel DBSCAN run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelDbscanStats {
    /// Range queries issued (one per point, across all threads).
    pub range_queries: u64,
    /// Core points found.
    pub core_points: u64,
    /// Worker threads used.
    pub threads: usize,
}

/// Result of a parallel DBSCAN run.
#[derive(Clone, Debug)]
pub struct ParallelDbscanResult {
    /// Final labels.
    pub clustering: Clustering,
    /// Cost counters.
    pub stats: ParallelDbscanStats,
}

/// Exact DBSCAN with multi-threaded range queries.
#[derive(Clone, Copy, Debug)]
pub struct ParallelDbscan {
    eps: f64,
    min_pts: usize,
    threads: usize,
}

impl ParallelDbscan {
    /// Points processed per parallel batch (bounds peak memory at
    /// `CHUNK × mean neighborhood size` ids).
    const CHUNK: usize = 8192;

    /// Creates the algorithm; `threads = 0` means "all available cores".
    ///
    /// # Panics
    ///
    /// Panics unless `eps` is positive and finite and `min_pts >= 1`.
    pub fn new(eps: f64, min_pts: usize, threads: usize) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive and finite"
        );
        assert!(min_pts >= 1, "MinPts must be at least 1");
        Self {
            eps,
            min_pts,
            threads,
        }
    }

    fn thread_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        }
    }

    /// Clusters `points` over a bulk-loaded R\*-tree.
    pub fn fit(&self, points: &PointSet) -> ParallelDbscanResult {
        let index = RStarTree::build(points);
        self.fit_with_index(points, &index)
    }

    /// Clusters `points` over a caller-provided engine (must be [`Sync`]).
    ///
    /// # Panics
    ///
    /// Panics if the index size disagrees with the point set.
    pub fn fit_with_index<I: RangeIndex + Sync>(
        &self,
        points: &PointSet,
        index: &I,
    ) -> ParallelDbscanResult {
        assert_eq!(index.len(), points.len(), "index must cover the point set");
        let n = points.len();
        let threads = self.thread_count();
        let mut stats = ParallelDbscanStats {
            range_queries: n as u64,
            threads,
            ..Default::default()
        };
        if n == 0 {
            return ParallelDbscanResult {
                clustering: Clustering::from_assignments(Vec::new()),
                stats,
            };
        }

        // Every point is its own union-find set; core sets merge later.
        let mut uf = UnionFind::new();
        for _ in 0..n {
            uf.make_set();
        }

        let mut core = vec![false; n];
        // Border bookkeeping: nearest core neighbor seen so far (squared
        // distance, core id).
        let mut border_anchor: Vec<Option<(f64, PointId)>> = vec![None; n];

        let mut chunk_neighbors: Vec<Vec<PointId>> = Vec::with_capacity(Self::CHUNK);
        for chunk_start in (0..n).step_by(Self::CHUNK) {
            let chunk_end = (chunk_start + Self::CHUNK).min(n);
            let chunk_len = chunk_end - chunk_start;

            // ---- Parallel phase: materialize the chunk's neighborhoods.
            chunk_neighbors.clear();
            chunk_neighbors.resize_with(chunk_len, Vec::new);
            let per_thread = chunk_len.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, slice) in chunk_neighbors.chunks_mut(per_thread).enumerate() {
                    let base = chunk_start + t * per_thread;
                    scope.spawn(move || {
                        for (k, out) in slice.iter_mut().enumerate() {
                            let id = (base + k) as PointId;
                            index.range(points.point(id), self.eps, out);
                        }
                    });
                }
            });

            // ---- Sequential fold: core flags, unions, border anchors.
            for (k, neighbors) in chunk_neighbors.iter().enumerate() {
                let id = (chunk_start + k) as PointId;
                if neighbors.len() < self.min_pts {
                    continue;
                }
                core[id as usize] = true;
                for &j in neighbors {
                    if j == id {
                        continue;
                    }
                    if core[j as usize] {
                        // Core-core edge. Neighborhoods are symmetric, so
                        // an edge whose other endpoint proves core later is
                        // unioned when *that* point's chunk is folded.
                        uf.union(id, j);
                    } else {
                        // Provisionally a border point of `id`'s cluster;
                        // cleared below if `j` later proves core.
                        let d = points.squared_distance(id, j);
                        let slot = &mut border_anchor[j as usize];
                        if slot.map_or(true, |(best, _)| d < best) {
                            *slot = Some((d, id));
                        }
                    }
                }
                // `id` might itself have been provisionally anchored as a
                // border point of an earlier core; it is core, so drop it.
                border_anchor[id as usize] = None;
            }
        }
        stats.core_points = core.iter().filter(|&&c| c).count() as u64;

        // ---- Labels: core points by union-find root, border points by
        // nearest core anchor, everything else noise.
        let (compact, _) = {
            // Compact only over core roots: map root -> dense id.
            let mut mapping = std::collections::HashMap::new();
            let mut next = 0u32;
            let mut label_of = vec![u32::MAX; n];
            for id in 0..n as u32 {
                if core[id as usize] {
                    let root = uf.find(id);
                    let entry = *mapping.entry(root).or_insert_with(|| {
                        let v = next;
                        next += 1;
                        v
                    });
                    label_of[id as usize] = entry;
                }
            }
            (label_of, next)
        };

        let assignments: Vec<Option<u32>> = (0..n)
            .map(|i| {
                if core[i] {
                    Some(compact[i])
                } else {
                    border_anchor[i].map(|(_, anchor)| compact[anchor as usize])
                }
            })
            .collect();

        ParallelDbscanResult {
            clustering: Clustering::from_assignments(assignments),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use dbsvec_geometry::rng::SplitMix64;

    fn blobs(centers: &[[f64; 2]], per: usize, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for c in centers {
            for _ in 0..per {
                ps.push(&[c[0] + rng.next_f64() * 4.0, c[1] + rng.next_f64() * 4.0]);
            }
        }
        ps
    }

    fn same_partition_on_cores(
        points: &PointSet,
        eps: f64,
        min_pts: usize,
        a: &Clustering,
        b: &Clustering,
    ) {
        use dbsvec_index::LinearScan;
        let scan = LinearScan::build(points);
        let core: Vec<bool> = (0..points.len())
            .map(|i| scan.count_range(points.point(i as u32), eps) >= min_pts)
            .collect();
        for i in 0..points.len() {
            // Noise sets must agree exactly.
            assert_eq!(a.is_noise(i), b.is_noise(i), "noise mismatch at {i}");
            if !core[i] {
                continue;
            }
            #[allow(clippy::needless_range_loop)] // j indexes core and both clusterings
            for j in (i + 1)..points.len() {
                if !core[j] {
                    continue;
                }
                assert_eq!(
                    a.get(i) == a.get(j),
                    b.get(i) == b.get(j),
                    "core pair ({i},{j}) split differently"
                );
            }
        }
    }

    #[test]
    fn matches_sequential_dbscan_partition() {
        let ps = blobs(&[[0.0, 0.0], [40.0, 0.0], [0.0, 40.0]], 150, 1);
        let seq = Dbscan::new(2.0, 5).fit(&ps).clustering;
        let par = ParallelDbscan::new(2.0, 5, 4).fit(&ps).clustering;
        assert_eq!(seq.num_clusters(), par.num_clusters());
        same_partition_on_cores(&ps, 2.0, 5, &seq, &par);
    }

    #[test]
    fn single_thread_equals_multi_thread() {
        let ps = blobs(&[[0.0, 0.0], [25.0, 25.0]], 200, 2);
        let one = ParallelDbscan::new(2.0, 5, 1).fit(&ps).clustering;
        let four = ParallelDbscan::new(2.0, 5, 4).fit(&ps).clustering;
        assert_eq!(one, four, "thread count must not change the result");
    }

    #[test]
    fn noise_detection_matches() {
        let mut ps = blobs(&[[0.0, 0.0]], 80, 3);
        ps.push(&[500.0, 500.0]);
        ps.push(&[-500.0, 300.0]);
        let seq = Dbscan::new(2.0, 5).fit(&ps).clustering;
        let par = ParallelDbscan::new(2.0, 5, 3).fit(&ps).clustering;
        assert_eq!(seq.noise_count(), par.noise_count());
        assert!(par.is_noise(80) && par.is_noise(81));
    }

    #[test]
    fn chunk_boundaries_do_not_split_clusters() {
        // A long chain spanning multiple chunks must remain one cluster.
        let rows: Vec<Vec<f64>> = (0..20_000).map(|i| vec![i as f64 * 0.4, 0.0]).collect();
        let ps = PointSet::from_rows(&rows);
        let par = ParallelDbscan::new(0.5, 2, 4).fit(&ps).clustering;
        assert_eq!(par.num_clusters(), 1);
        assert_eq!(par.noise_count(), 0);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let ps = blobs(&[[0.0, 0.0]], 50, 4);
        let result = ParallelDbscan::new(2.0, 5, 0).fit(&ps);
        assert!(result.stats.threads >= 1);
        assert_eq!(result.clustering.num_clusters(), 1);
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::new(2);
        let result = ParallelDbscan::new(1.0, 2, 2).fit(&ps);
        assert!(result.clustering.is_empty());
    }
}
