//! Exact DBSCAN (Ester et al. 1996), generic over the range-query engine.
//!
//! This is the paper's ground-truth algorithm: *R-DBSCAN* when run over an
//! R\*-tree ([`Dbscan::fit`]) and *kd-DBSCAN* when run over a kd-tree
//! ([`Dbscan::fit_with_index`] + [`dbsvec_index::KdTree`]). Handing it an
//! [`dbsvec_lsh::LshIndex`] instead yields the DBSCAN-LSH baseline — the
//! clustering logic is identical; only the neighborhood oracle changes.
//!
//! Every point receives **exactly one range query** (the paper's Algorithm 1
//! queries each sub-cluster member once), which is the Θ(n)-queries cost
//! DBSVEC's support vector expansion attacks.

use dbsvec_core::labels::{Clustering, WorkingLabels};
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::{RStarTree, RangeIndex};
use dbsvec_obs::{Event, NoopObserver, Observer, Phase};

/// Counters for a DBSCAN run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbscanStats {
    /// Range queries issued (one per point).
    pub range_queries: u64,
    /// Points that passed the core test.
    pub core_points: u64,
}

/// Result of a DBSCAN run.
#[derive(Clone, Debug)]
pub struct DbscanResult {
    /// Final labels.
    pub clustering: Clustering,
    /// Cost counters.
    pub stats: DbscanStats,
}

/// Exact DBSCAN.
///
/// ```
/// use dbsvec_baselines::Dbscan;
/// use dbsvec_geometry::PointSet;
///
/// let ps = PointSet::from_rows(&[vec![0.0], vec![0.1], vec![0.2], vec![5.0]]);
/// let result = Dbscan::new(0.15, 2).fit(&ps);
/// assert_eq!(result.clustering.num_clusters(), 1);
/// assert!(result.clustering.is_noise(3));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Dbscan {
    eps: f64,
    min_pts: usize,
}

impl Dbscan {
    /// Creates the algorithm.
    ///
    /// # Panics
    ///
    /// Panics unless `eps` is positive and finite and `min_pts >= 1`.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive and finite, got {eps}"
        );
        assert!(min_pts >= 1, "MinPts must be at least 1");
        Self { eps, min_pts }
    }

    /// The radius ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The density threshold MinPts.
    pub fn min_pts(&self) -> usize {
        self.min_pts
    }

    /// Runs over a bulk-loaded R\*-tree (the paper's *R-DBSCAN*).
    pub fn fit(&self, points: &PointSet) -> DbscanResult {
        self.fit_observed(points, &mut NoopObserver)
    }

    /// [`Dbscan::fit`] with an observer receiving the run's events.
    pub fn fit_observed(&self, points: &PointSet, obs: &mut dyn Observer) -> DbscanResult {
        let index = RStarTree::build(points);
        self.fit_with_index_observed(points, &index, obs)
    }

    /// Runs over a caller-provided engine (kd-tree, grid, LSH, ...).
    ///
    /// # Panics
    ///
    /// Panics if the index size disagrees with the point set.
    pub fn fit_with_index<I: RangeIndex>(&self, points: &PointSet, index: &I) -> DbscanResult {
        self.fit_with_index_observed(points, index, &mut NoopObserver)
    }

    /// [`Dbscan::fit_with_index`] with an observer. DBSCAN has a single
    /// scan-and-flood loop, so it spans one `init` phase and emits one
    /// [`Event::RangeQuery`] per query — the same event DBSVEC emits, which
    /// is what makes θ comparable across algorithms.
    pub fn fit_with_index_observed<I: RangeIndex>(
        &self,
        points: &PointSet,
        index: &I,
        obs: &mut dyn Observer,
    ) -> DbscanResult {
        assert_eq!(
            index.len(),
            points.len(),
            "index covers {} points but the set has {}",
            index.len(),
            points.len()
        );
        let n = points.len();
        let mut labels = WorkingLabels::new(n);
        let mut stats = DbscanStats::default();
        let mut queried = vec![false; n];
        let mut next_cluster = 0u32;
        let mut queue: Vec<PointId> = Vec::new();
        let mut neighborhood: Vec<PointId> = Vec::new();

        obs.span_enter(Phase::Init);
        for i in 0..n as u32 {
            if !labels.is_unclassified(i) {
                continue;
            }
            neighborhood.clear();
            index.range(points.point(i), self.eps, &mut neighborhood);
            stats.range_queries += 1;
            obs.event(&Event::RangeQuery {
                probe: i,
                result_len: neighborhood.len(),
            });
            queried[i as usize] = true;
            if neighborhood.len() < self.min_pts {
                labels.set_noise(i);
                continue;
            }

            // i is a core point: open a new cluster and flood-fill it.
            stats.core_points += 1;
            let cid = next_cluster;
            next_cluster += 1;
            labels.set_cluster(i, cid);
            queue.clear();
            for &j in &neighborhood {
                if labels.is_unclassified(j) || labels.is_noise(j) {
                    labels.set_cluster(j, cid);
                    queue.push(j);
                }
            }

            while let Some(p) = queue.pop() {
                if queried[p as usize] {
                    continue;
                }
                neighborhood.clear();
                index.range(points.point(p), self.eps, &mut neighborhood);
                stats.range_queries += 1;
                obs.event(&Event::RangeQuery {
                    probe: p,
                    result_len: neighborhood.len(),
                });
                queried[p as usize] = true;
                if neighborhood.len() < self.min_pts {
                    continue; // border point: labeled but not expanded
                }
                stats.core_points += 1;
                for &j in &neighborhood {
                    if labels.is_unclassified(j) || labels.is_noise(j) {
                        labels.set_cluster(j, cid);
                        queue.push(j);
                    }
                }
            }
        }
        obs.span_exit(Phase::Init);

        DbscanResult {
            clustering: labels.finalize(|raw| raw),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_geometry::rng::SplitMix64;
    use dbsvec_index::{KdTree, LinearScan};

    fn blobs(centers: &[[f64; 2]], per: usize, spread: f64, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for c in centers {
            for _ in 0..per {
                let x: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
                let y: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
                ps.push(&[c[0] + spread * x, c[1] + spread * y]);
            }
        }
        ps
    }

    #[test]
    fn finds_separated_blobs() {
        let ps = blobs(&[[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]], 60, 1.0, 1);
        let result = Dbscan::new(3.0, 6).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 3);
        assert_eq!(result.stats.range_queries, ps.len() as u64);
    }

    #[test]
    fn index_choice_does_not_change_the_result() {
        let ps = blobs(&[[0.0, 0.0], [25.0, 10.0]], 80, 1.3, 2);
        let algo = Dbscan::new(2.5, 5);
        let via_rtree = algo.fit(&ps);
        let via_kd = algo.fit_with_index(&ps, &KdTree::build(&ps));
        let via_linear = algo.fit_with_index(&ps, &LinearScan::build(&ps));
        assert_eq!(via_rtree.clustering, via_kd.clustering);
        assert_eq!(via_rtree.clustering, via_linear.clustering);
    }

    #[test]
    fn chain_cluster_is_fully_connected() {
        // A chain of points each within eps of the next must be one cluster.
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        let ps = PointSet::from_rows(&rows);
        let result = Dbscan::new(0.6, 2).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 1);
        assert_eq!(result.clustering.noise_count(), 0);
    }

    #[test]
    fn border_point_shared_by_two_clusters_goes_to_one() {
        // Two dense clumps, one point between them in range of both.
        let mut ps = PointSet::new(1);
        for i in 0..5 {
            ps.push(&[i as f64 * 0.1]); // clump A around 0.2
        }
        for i in 0..5 {
            ps.push(&[2.0 + i as f64 * 0.1]); // clump B around 2.2
        }
        // 1.2 is 0.8 from A's edge (0.4) and 0.8 from B's edge (2.0), but
        // sees only 3 neighbors at eps = 0.85 — a border point, not core.
        ps.push(&[1.2]);
        let result = Dbscan::new(0.85, 4).fit(&ps);
        // The middle point is a border of exactly one cluster (first served).
        assert_eq!(result.clustering.num_clusters(), 2);
        assert!(!result.clustering.is_noise(10));
    }

    #[test]
    fn min_pts_one_makes_every_point_core() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![10.0], vec![20.0]]);
        let result = Dbscan::new(1.0, 1).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 3);
        assert_eq!(result.clustering.noise_count(), 0);
    }

    #[test]
    fn all_noise_when_sparse() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![10.0], vec![20.0]]);
        let result = Dbscan::new(1.0, 2).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 0);
        assert_eq!(result.clustering.noise_count(), 3);
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::new(2);
        let result = Dbscan::new(1.0, 2).fit(&ps);
        assert!(result.clustering.is_empty());
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_bad_eps() {
        let _ = Dbscan::new(f64::NAN, 2);
    }
}
