//! DBSCAN-LSH (Li, Heinis & Luk, ADBIS 2016 / Informatica 2017).
//!
//! Approximate DBSCAN where every ε-neighborhood is answered by a p-stable
//! LSH index: only points colliding with the query in at least one hash
//! table are considered, so neighborhoods can be missed — clusters
//! fragment and recall drops, exactly the behaviour the paper's Table III
//! reports for this baseline. The clustering skeleton is shared with
//! [`crate::Dbscan`]; this wrapper owns the LSH-specific construction.

use dbsvec_core::labels::Clustering;
use dbsvec_geometry::PointSet;
use dbsvec_lsh::{LshConfig, LshIndex};

use crate::dbscan::{Dbscan, DbscanStats};

/// Result of a DBSCAN-LSH run.
#[derive(Clone, Debug)]
pub struct DbscanLshResult {
    /// Final labels.
    pub clustering: Clustering,
    /// Cost counters of the underlying DBSCAN sweep.
    pub stats: DbscanStats,
}

/// Hashing-based approximate DBSCAN.
#[derive(Clone, Debug)]
pub struct DbscanLsh {
    eps: f64,
    min_pts: usize,
    seed: u64,
    config: Option<LshConfig>,
}

impl DbscanLsh {
    /// Creates the algorithm with the paper's LSH setting (eight p-stable
    /// hash functions) and buckets tuned to ε.
    ///
    /// # Panics
    ///
    /// Panics unless `eps` is positive and finite and `min_pts >= 1`.
    pub fn new(eps: f64, min_pts: usize, seed: u64) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive and finite"
        );
        assert!(min_pts >= 1, "MinPts must be at least 1");
        Self {
            eps,
            min_pts,
            seed,
            config: None,
        }
    }

    /// Overrides the LSH configuration (tables, hashes, bucket width).
    pub fn with_lsh_config(mut self, config: LshConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Clusters `points`.
    pub fn fit(&self, points: &PointSet) -> DbscanLshResult {
        let index = match &self.config {
            Some(config) => LshIndex::build(points, config, self.seed),
            None => LshIndex::build_for_radius(points, self.eps, self.seed),
        };
        let result = Dbscan::new(self.eps, self.min_pts).fit_with_index(points, &index);
        DbscanLshResult {
            clustering: result.clustering,
            stats: result.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_geometry::rng::SplitMix64;
    use dbsvec_metrics_shim::recall_like;

    /// Minimal pair-recall helper to avoid a dev-dependency cycle with
    /// `dbsvec-metrics` (which does not depend on this crate, but keeping
    /// baselines leaf-like keeps build graphs simple).
    mod dbsvec_metrics_shim {
        pub fn recall_like(reference: &[Option<u32>], candidate: &[Option<u32>]) -> f64 {
            let mut denom = 0u64;
            let mut kept = 0u64;
            for i in 0..reference.len() {
                for j in (i + 1)..reference.len() {
                    if reference[i].is_some() && reference[i] == reference[j] {
                        denom += 1;
                        if candidate[i].is_some() && candidate[i] == candidate[j] {
                            kept += 1;
                        }
                    }
                }
            }
            if denom == 0 {
                1.0
            } else {
                kept as f64 / denom as f64
            }
        }
    }

    fn blobs(seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for c in [[0.0, 0.0], [80.0, 0.0]] {
            for _ in 0..100 {
                ps.push(&[c[0] + rng.next_f64() * 6.0, c[1] + rng.next_f64() * 6.0]);
            }
        }
        ps
    }

    #[test]
    fn clusters_well_separated_data_with_high_recall() {
        let ps = blobs(1);
        let exact = crate::Dbscan::new(2.0, 5).fit(&ps);
        let lsh = DbscanLsh::new(2.0, 5, 42).fit(&ps);
        let r = recall_like(exact.clustering.assignments(), lsh.clustering.assignments());
        assert!(r > 0.8, "LSH recall {r} unexpectedly low");
        // Never merges the two far-apart blobs.
        assert!(lsh.clustering.num_clusters() >= 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let ps = blobs(2);
        let a = DbscanLsh::new(2.0, 5, 7).fit(&ps);
        let b = DbscanLsh::new(2.0, 5, 7).fit(&ps);
        assert_eq!(a.clustering, b.clustering);
    }

    #[test]
    fn issues_one_query_per_point() {
        let ps = blobs(3);
        let result = DbscanLsh::new(2.0, 5, 1).fit(&ps);
        assert_eq!(result.stats.range_queries, ps.len() as u64);
    }

    #[test]
    fn custom_config_is_honored() {
        let ps = blobs(4);
        // A deliberately bad configuration (tiny buckets, one table)
        // fragments the clustering — recall drops.
        let bad = DbscanLsh::new(2.0, 5, 1)
            .with_lsh_config(LshConfig {
                hashes_per_table: 10,
                tables: 1,
                bucket_width: 0.2,
            })
            .fit(&ps);
        let good = DbscanLsh::new(2.0, 5, 1).fit(&ps);
        let exact = crate::Dbscan::new(2.0, 5).fit(&ps);
        let r_bad = recall_like(exact.clustering.assignments(), bad.clustering.assignments());
        let r_good = recall_like(
            exact.clustering.assignments(),
            good.clustering.assignments(),
        );
        assert!(r_bad <= r_good, "bad config should not beat the tuned one");
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::new(2);
        let result = DbscanLsh::new(1.0, 2, 1).fit(&ps);
        assert!(result.clustering.is_empty());
    }
}
