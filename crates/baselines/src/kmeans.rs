//! Lloyd's k-means with k-means++ seeding (Hartigan & Wong style baseline).
//!
//! The paper's Table IV compares DBSVEC's internal validity against
//! k-MEANS \[32\], and Fig. 6–7 include it as a partitioning-based efficiency
//! baseline. This implementation is deterministic per seed and never
//! produces noise (every point is assigned to its nearest centroid).

use dbsvec_core::labels::Clustering;
use dbsvec_geometry::rng::SplitMix64;
use dbsvec_geometry::PointSet;

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    /// Final labels (never contains noise).
    pub clustering: Clustering,
    /// Final centroids, row-major `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

/// k-means clustering.
#[derive(Clone, Copy, Debug)]
pub struct KMeans {
    k: usize,
    max_iterations: usize,
    seed: u64,
}

impl KMeans {
    /// Creates the algorithm with `k` clusters and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Self {
            k,
            max_iterations: 100,
            seed,
        }
    }

    /// Overrides the Lloyd iteration cap (default 100).
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Clusters `points`. If `k >= n`, every point gets its own cluster.
    pub fn fit(&self, points: &PointSet) -> KMeansResult {
        let n = points.len();
        let d = points.dims();
        if n == 0 {
            return KMeansResult {
                clustering: Clustering::from_assignments(Vec::new()),
                centroids: Vec::new(),
                iterations: 0,
                inertia: 0.0,
            };
        }
        let k = self.k.min(n);

        // ---- k-means++ seeding.
        let mut rng = SplitMix64::new(self.seed);
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(points.point(rng.next_below(n as u64) as u32).to_vec());
        let mut dist_sq: Vec<f64> = (0..n)
            .map(|i| dbsvec_geometry::squared_euclidean(points.point(i as u32), &centroids[0]))
            .collect();
        while centroids.len() < k {
            let total: f64 = dist_sq.iter().sum();
            let chosen = if total <= 0.0 {
                rng.next_below(n as u64) as usize // all remaining points coincide
            } else {
                let mut target = rng.next_f64() * total;
                let mut pick = n - 1;
                for (i, &w) in dist_sq.iter().enumerate() {
                    if target < w {
                        pick = i;
                        break;
                    }
                    target -= w;
                }
                pick
            };
            let c = points.point(chosen as u32).to_vec();
            for (i, slot) in dist_sq.iter_mut().enumerate() {
                let d2 = dbsvec_geometry::squared_euclidean(points.point(i as u32), &c);
                if d2 < *slot {
                    *slot = d2;
                }
            }
            centroids.push(c);
        }

        // ---- Lloyd iterations.
        let mut assignment = vec![0u32; n];
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            let mut changed = false;
            #[allow(clippy::needless_range_loop)] // i indexes points and assignment together
            for i in 0..n {
                let p = points.point(i as u32);
                let mut best = assignment[i];
                let mut best_d = dbsvec_geometry::squared_euclidean(p, &centroids[best as usize]);
                for (c, centroid) in centroids.iter().enumerate() {
                    let d2 = dbsvec_geometry::squared_euclidean(p, centroid);
                    if d2 < best_d {
                        best_d = d2;
                        best = c as u32;
                    }
                }
                if best != assignment[i] {
                    assignment[i] = best;
                    changed = true;
                }
            }
            if !changed && iterations > 1 {
                break;
            }

            // Recompute centroids; empty clusters respawn on the farthest point.
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0u64; k];
            for (i, &a) in assignment.iter().enumerate() {
                counts[a as usize] += 1;
                for (s, &x) in sums[a as usize].iter_mut().zip(points.point(i as u32)) {
                    *s += x;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    let farthest = (0..n)
                        .max_by(|&a, &b| {
                            let da = dbsvec_geometry::squared_euclidean(
                                points.point(a as u32),
                                &centroids[assignment[a] as usize],
                            );
                            let db = dbsvec_geometry::squared_euclidean(
                                points.point(b as u32),
                                &centroids[assignment[b] as usize],
                            );
                            da.partial_cmp(&db).expect("NaN distance")
                        })
                        .expect("nonempty point set");
                    centroids[c] = points.point(farthest as u32).to_vec();
                } else {
                    for (slot, s) in centroids[c].iter_mut().zip(&sums[c]) {
                        *slot = s / counts[c] as f64;
                    }
                }
            }
        }

        let inertia = assignment
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                dbsvec_geometry::squared_euclidean(points.point(i as u32), &centroids[a as usize])
            })
            .sum();
        let clustering = Clustering::from_assignments(assignment.into_iter().map(Some).collect());
        KMeansResult {
            clustering,
            centroids,
            iterations,
            inertia,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(centers: &[[f64; 2]], per: usize, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for c in centers {
            for _ in 0..per {
                ps.push(&[c[0] + rng.next_f64(), c[1] + rng.next_f64()]);
            }
        }
        ps
    }

    #[test]
    fn recovers_separated_blobs() {
        let ps = blobs(&[[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]], 40, 1);
        let result = KMeans::new(3, 7).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 3);
        // Each blob must be pure: all 40 members share a label.
        for b in 0..3 {
            let first = result.clustering.get(b * 40);
            for i in 0..40 {
                assert_eq!(result.clustering.get(b * 40 + i), first);
            }
        }
    }

    #[test]
    fn never_produces_noise() {
        let ps = blobs(&[[0.0, 0.0], [9.0, 9.0]], 25, 2);
        let result = KMeans::new(4, 3).fit(&ps);
        assert_eq!(result.clustering.noise_count(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let ps = blobs(&[[0.0, 0.0], [20.0, 0.0]], 30, 3);
        let a = KMeans::new(2, 11).fit(&ps);
        let b = KMeans::new(2, 11).fit(&ps);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let ps = blobs(&[[0.0, 0.0], [30.0, 0.0], [0.0, 30.0], [30.0, 30.0]], 25, 4);
        let k2 = KMeans::new(2, 5).fit(&ps);
        let k4 = KMeans::new(4, 5).fit(&ps);
        assert!(k4.inertia < k2.inertia);
    }

    #[test]
    fn k_larger_than_n_gives_singletons() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![5.0], vec![10.0]]);
        let result = KMeans::new(10, 1).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 3);
        assert!(result.inertia < 1e-12);
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::new(2);
        let result = KMeans::new(3, 1).fit(&ps);
        assert!(result.clustering.is_empty());
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn identical_points_converge() {
        let ps = PointSet::from_rows(&vec![vec![2.0, 2.0]; 20]);
        let result = KMeans::new(3, 9).fit(&ps);
        assert!(result.inertia < 1e-12);
        assert!(result.iterations <= 100);
    }
}
