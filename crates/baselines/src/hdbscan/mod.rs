//! HDBSCAN\* — hierarchical density-based clustering.
//!
//! Campello, Moulavi & Sander (PAKDD 2013), the algorithm behind the
//! "faster DBSCAN and HDBSCAN" line of work the paper cites \[9\]. Where
//! DBSCAN (and DBSVEC) commit to a single density level ε, HDBSCAN builds
//! the *hierarchy over all ε simultaneously* and extracts the most stable
//! clusters, so clusters of different densities coexist — the classic
//! failure mode of single-ε methods.
//!
//! Pipeline (each stage its own module):
//!
//! 1. **core distances** — distance to the `min_samples`-th neighbor,
//!    computed with any [`dbsvec_index::RangeIndex`] engine;
//! 2. **mutual-reachability MST** ([`mst`]) — Prim's algorithm over
//!    `max(core(a), core(b), dist(a, b))`, O(n²) time / O(n) memory;
//! 3. **hierarchy** ([`hierarchy`]) — single linkage over the MST edges,
//!    condensed by `min_cluster_size`, clusters scored by stability and
//!    extracted with the Excess-of-Mass rule.
//!
//! The implementation is deterministic and single-threaded, sized for the
//! evaluation workloads (the O(n²) MST dominates; ~seconds at n = 20k).

pub mod hierarchy;
pub mod mst;

use dbsvec_core::labels::Clustering;
use dbsvec_geometry::PointSet;
use dbsvec_index::{kth_neighbor_distance, KdTree};

/// Counters and intermediate sizes from an HDBSCAN run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HdbscanStats {
    /// Edges in the mutual-reachability MST (n − 1 for n ≥ 1).
    pub mst_edges: usize,
    /// Clusters in the condensed tree (before extraction).
    pub condensed_clusters: usize,
    /// Clusters selected by the Excess-of-Mass rule.
    pub selected_clusters: usize,
}

/// Result of an HDBSCAN run.
#[derive(Clone, Debug)]
pub struct HdbscanResult {
    /// Final labels.
    pub clustering: Clustering,
    /// Per-point cluster-membership strength in `[0, 1]` (`λ_p / λ_max` of
    /// its cluster; 0 for noise).
    pub membership: Vec<f64>,
    /// Pipeline statistics.
    pub stats: HdbscanStats,
}

/// HDBSCAN\* clustering.
#[derive(Clone, Copy, Debug)]
pub struct Hdbscan {
    min_samples: usize,
    min_cluster_size: usize,
    allow_single_cluster: bool,
}

impl Hdbscan {
    /// Creates the algorithm.
    ///
    /// * `min_samples` — the k of the core distance (density smoothing);
    /// * `min_cluster_size` — smallest condensed cluster kept in the
    ///   hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(min_samples: usize, min_cluster_size: usize) -> Self {
        assert!(min_samples >= 1, "min_samples must be at least 1");
        assert!(min_cluster_size >= 2, "min_cluster_size must be at least 2");
        Self {
            min_samples,
            min_cluster_size,
            allow_single_cluster: false,
        }
    }

    /// Allows the hierarchy root itself to be selected when no split ever
    /// produces two viable clusters (i.e. the data is one cluster).
    pub fn with_single_cluster_allowed(mut self) -> Self {
        self.allow_single_cluster = true;
        self
    }

    /// Clusters `points`.
    pub fn fit(&self, points: &PointSet) -> HdbscanResult {
        let n = points.len();
        if n == 0 {
            return HdbscanResult {
                clustering: Clustering::from_assignments(Vec::new()),
                membership: Vec::new(),
                stats: HdbscanStats::default(),
            };
        }

        // ---- Core distances via the kd-tree.
        let index = KdTree::build(points);
        let core: Vec<f64> = (0..n as u32)
            .map(|id| kth_neighbor_distance(points, &index, id, self.min_samples).unwrap_or(0.0))
            .collect();

        // ---- Mutual-reachability MST and single-linkage hierarchy.
        let edges = mst::mutual_reachability_mst(points, &core);
        let tree = hierarchy::single_linkage(n, &edges);
        let condensed = hierarchy::condense(&tree, n, self.min_cluster_size);
        let (labels, membership, selected) =
            hierarchy::extract_eom(&condensed, n, self.allow_single_cluster);

        HdbscanResult {
            clustering: Clustering::from_assignments(labels),
            membership,
            stats: HdbscanStats {
                mst_edges: edges.len(),
                condensed_clusters: condensed.cluster_count,
                selected_clusters: selected,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_geometry::rng::SplitMix64;

    fn blob(ps: &mut PointSet, cx: f64, cy: f64, spread: f64, n: usize, rng: &mut SplitMix64) {
        for _ in 0..n {
            let x: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            let y: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            ps.push(&[cx + spread * x, cy + spread * y]);
        }
    }

    #[test]
    fn separates_well_spaced_blobs() {
        let mut rng = SplitMix64::new(1);
        let mut ps = PointSet::new(2);
        blob(&mut ps, 0.0, 0.0, 1.0, 120, &mut rng);
        blob(&mut ps, 60.0, 0.0, 1.0, 120, &mut rng);
        blob(&mut ps, 0.0, 60.0, 1.0, 120, &mut rng);
        let result = Hdbscan::new(5, 15).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 3);
        // Blobs are pure: points 0..120 share a label, etc.
        for b in 0..3 {
            let first = result.clustering.get(b * 120 + 5);
            let same = (0..120)
                .filter(|i| result.clustering.get(b * 120 + i) == first)
                .count();
            assert!(same > 110, "blob {b} fragmented");
        }
    }

    #[test]
    fn finds_clusters_of_different_densities() {
        // The single-eps failure mode: one tight and one loose cluster.
        // Any DBSCAN eps either merges the loose one into noise or splits
        // it; HDBSCAN's hierarchy handles both densities at once.
        let mut rng = SplitMix64::new(2);
        let mut ps = PointSet::new(2);
        blob(&mut ps, 0.0, 0.0, 0.3, 150, &mut rng); // tight
        blob(&mut ps, 50.0, 0.0, 4.0, 150, &mut rng); // 13x looser
        let result = Hdbscan::new(5, 20).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 2, "{:?}", result.stats);
        // Both clusters substantially recovered.
        let sizes = result.clustering.cluster_sizes();
        assert!(sizes.iter().all(|&s| s >= 100), "sizes {sizes:?}");
    }

    #[test]
    fn uniform_noise_is_rejected() {
        let mut rng = SplitMix64::new(3);
        let mut ps = PointSet::new(2);
        blob(&mut ps, 0.0, 0.0, 0.5, 150, &mut rng);
        blob(&mut ps, 120.0, 0.0, 0.5, 150, &mut rng);
        // Sparse uniform background.
        for _ in 0..60 {
            ps.push(&[
                rng.next_f64() * 400.0 - 200.0,
                rng.next_f64() * 400.0 - 200.0,
            ]);
        }
        let result = Hdbscan::new(5, 20).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 2);
        let noise = (300..360)
            .filter(|&i| result.clustering.is_noise(i))
            .count();
        assert!(noise > 50, "only {noise}/60 background points rejected");
    }

    #[test]
    fn single_blob_needs_the_allow_flag() {
        // min_cluster_size 25 over 40 points: no split can have two viable
        // sides, so the condensed tree is the root alone — selectable only
        // with the flag. (The same artifact the reference implementation's
        // `allow_single_cluster` exists for.)
        let mut rng = SplitMix64::new(4);
        let mut ps = PointSet::new(2);
        blob(&mut ps, 0.0, 0.0, 1.0, 40, &mut rng);
        let strict = Hdbscan::new(5, 25).fit(&ps);
        assert_eq!(
            strict.clustering.num_clusters(),
            0,
            "root must not be auto-selected"
        );
        let relaxed = Hdbscan::new(5, 25).with_single_cluster_allowed().fit(&ps);
        assert_eq!(relaxed.clustering.num_clusters(), 1);
        assert!(relaxed.clustering.noise_count() < 10);
    }

    #[test]
    fn membership_strengths_are_sane() {
        let mut rng = SplitMix64::new(5);
        let mut ps = PointSet::new(2);
        blob(&mut ps, 0.0, 0.0, 1.0, 100, &mut rng);
        blob(&mut ps, 50.0, 0.0, 1.0, 100, &mut rng);
        let result = Hdbscan::new(5, 15).fit(&ps);
        for i in 0..ps.len() {
            let m = result.membership[i];
            assert!((0.0..=1.0 + 1e-9).contains(&m), "membership {m}");
            if result.clustering.is_noise(i) {
                assert_eq!(m, 0.0);
            }
        }
        // Some interior point should have full strength.
        assert!(result.membership.iter().any(|&m| m > 0.99));
    }

    #[test]
    fn min_cluster_size_prunes_small_groups() {
        let mut rng = SplitMix64::new(6);
        let mut ps = PointSet::new(2);
        blob(&mut ps, 0.0, 0.0, 1.0, 150, &mut rng);
        blob(&mut ps, 40.0, 40.0, 1.0, 150, &mut rng);
        blob(&mut ps, 80.0, 0.0, 1.0, 12, &mut rng); // a 12-point clump
        let loose = Hdbscan::new(3, 8).fit(&ps);
        assert_eq!(loose.clustering.num_clusters(), 3);
        let strict = Hdbscan::new(3, 30).fit(&ps);
        // The clump is below min_cluster_size: it must not be a cluster.
        assert_eq!(strict.clustering.num_clusters(), 2);
        let clump_noise = (300..312)
            .filter(|&i| strict.clustering.is_noise(i))
            .count();
        assert_eq!(clump_noise, 12);
    }

    #[test]
    fn deterministic() {
        let mut rng = SplitMix64::new(7);
        let mut ps = PointSet::new(2);
        blob(&mut ps, 0.0, 0.0, 1.0, 80, &mut rng);
        blob(&mut ps, 30.0, 0.0, 1.0, 80, &mut rng);
        let a = Hdbscan::new(4, 10).fit(&ps);
        let b = Hdbscan::new(4, 10).fit(&ps);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.membership, b.membership);
    }

    #[test]
    fn tiny_inputs() {
        let ps = PointSet::new(2);
        let result = Hdbscan::new(2, 2).fit(&ps);
        assert!(result.clustering.is_empty());

        let ps = PointSet::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let result = Hdbscan::new(1, 2).with_single_cluster_allowed().fit(&ps);
        assert_eq!(result.clustering.len(), 2);
    }
}
