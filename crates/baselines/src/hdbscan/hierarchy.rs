//! Single-linkage hierarchy, condensation, and Excess-of-Mass extraction.

use dbsvec_core::UnionFind;

use super::mst::MstEdge;

/// One merge of the single-linkage dendrogram. Merge `k` creates node
/// `n + k` from two existing nodes (leaves are `0..n`).
#[derive(Clone, Copy, Debug)]
pub struct Merge {
    /// Left child node id.
    pub left: u32,
    /// Right child node id.
    pub right: u32,
    /// Merge (mutual-reachability) distance.
    pub dist: f64,
    /// Leaves under the created node.
    pub size: u32,
}

/// Builds the single-linkage dendrogram from MST edges (sorted internally).
pub fn single_linkage(n: usize, edges: &[MstEdge]) -> Vec<Merge> {
    let mut sorted: Vec<MstEdge> = edges.to_vec();
    sorted.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("NaN edge weight"));

    let mut uf = UnionFind::new();
    for _ in 0..n {
        uf.make_set();
    }
    // Representative SL-node id and size of each union-find root.
    let mut node_of: Vec<u32> = (0..n as u32).collect();
    let mut size_of: Vec<u32> = vec![1; n];
    let mut merges = Vec::with_capacity(edges.len());

    for &(a, b, dist) in &sorted {
        let ra = uf.find(a);
        let rb = uf.find(b);
        debug_assert_ne!(ra, rb, "MST edges never close cycles");
        let merged = Merge {
            left: node_of[ra as usize],
            right: node_of[rb as usize],
            dist,
            size: size_of[ra as usize] + size_of[rb as usize],
        };
        let new_node = (n + merges.len()) as u32;
        merges.push(merged);
        let root = uf.union(ra, rb);
        node_of[root as usize] = new_node;
        size_of[root as usize] = merged.size;
    }
    merges
}

/// One edge of the condensed tree: either a point falling out of a cluster
/// or a child cluster splitting off.
#[derive(Clone, Copy, Debug)]
pub struct CondEdge {
    /// Parent cluster id (`>= n`).
    pub parent: u32,
    /// Child: a point (`< n`) or a cluster (`>= n`).
    pub child: u32,
    /// Density level `λ = 1/dist` at which the child leaves the parent.
    pub lambda: f64,
    /// Leaves under the child.
    pub size: u32,
}

/// The condensed hierarchy.
#[derive(Clone, Debug)]
pub struct CondensedTree {
    /// All edges; cluster ids are `n ..= n + cluster_count - 1`, with `n`
    /// the root.
    pub edges: Vec<CondEdge>,
    /// Number of condensed clusters (including the root).
    pub cluster_count: usize,
    /// Number of points.
    pub n: usize,
}

fn lambda_of(dist: f64) -> f64 {
    1.0 / dist.max(1e-12)
}

/// Condenses the dendrogram: splits survive only when both sides hold at
/// least `min_cluster_size` leaves; smaller sides fall out point by point.
pub fn condense(merges: &[Merge], n: usize, min_cluster_size: usize) -> CondensedTree {
    let mut edges = Vec::new();
    let mut cluster_count = 0usize;
    if n == 0 {
        return CondensedTree {
            edges,
            cluster_count,
            n,
        };
    }
    if merges.is_empty() {
        // One point: a root cluster with a single member at λ = ∞ is not
        // meaningful; emit an empty tree (the point becomes noise).
        return CondensedTree {
            edges,
            cluster_count,
            n,
        };
    }

    let node_size = |node: u32| -> u32 {
        if (node as usize) < n {
            1
        } else {
            merges[node as usize - n].size
        }
    };
    // Iterative leaf collection (clusters can be thousands deep).
    let collect_leaves = |node: u32, out: &mut Vec<u32>| {
        let mut stack = vec![node];
        while let Some(x) = stack.pop() {
            if (x as usize) < n {
                out.push(x);
            } else {
                let m = merges[x as usize - n];
                stack.push(m.left);
                stack.push(m.right);
            }
        }
    };

    let root_sl = (n + merges.len() - 1) as u32;
    let root_cluster = n as u32;
    cluster_count += 1;

    // Work stack: (single-linkage node, condensed cluster it belongs to).
    let mut stack: Vec<(u32, u32)> = vec![(root_sl, root_cluster)];
    let mut scratch_leaves: Vec<u32> = Vec::new();
    while let Some((node, cluster)) = stack.pop() {
        debug_assert!(node as usize >= n, "leaves are handled by fall-out");
        let m = merges[node as usize - n];
        let lambda = lambda_of(m.dist);
        let (ls, rs) = (node_size(m.left) as usize, node_size(m.right) as usize);

        let descend_or_fall = |child: u32,
                               keeps_label: bool,
                               stack: &mut Vec<(u32, u32)>,
                               edges: &mut Vec<CondEdge>,
                               cluster_count: &mut usize| {
            if keeps_label {
                if (child as usize) < n {
                    // A lone leaf continuing the cluster: it falls out when
                    // the cluster dissolves — i.e. at this lambda.
                    edges.push(CondEdge {
                        parent: cluster,
                        child,
                        lambda,
                        size: 1,
                    });
                } else {
                    stack.push((child, cluster));
                }
            } else {
                // The child is large enough to become a new cluster.
                let new_cluster = (n + *cluster_count) as u32;
                *cluster_count += 1;
                edges.push(CondEdge {
                    parent: cluster,
                    child: new_cluster,
                    lambda,
                    size: node_size(child),
                });
                if (child as usize) >= n {
                    stack.push((child, new_cluster));
                }
            }
        };

        if ls >= min_cluster_size && rs >= min_cluster_size {
            // True split: both sides become new clusters.
            descend_or_fall(m.left, false, &mut stack, &mut edges, &mut cluster_count);
            descend_or_fall(m.right, false, &mut stack, &mut edges, &mut cluster_count);
        } else if ls >= min_cluster_size {
            // Right side falls out of the current cluster point by point.
            scratch_leaves.clear();
            collect_leaves(m.right, &mut scratch_leaves);
            for &p in &scratch_leaves {
                edges.push(CondEdge {
                    parent: cluster,
                    child: p,
                    lambda,
                    size: 1,
                });
            }
            descend_or_fall(m.left, true, &mut stack, &mut edges, &mut cluster_count);
        } else if rs >= min_cluster_size {
            scratch_leaves.clear();
            collect_leaves(m.left, &mut scratch_leaves);
            for &p in &scratch_leaves {
                edges.push(CondEdge {
                    parent: cluster,
                    child: p,
                    lambda,
                    size: 1,
                });
            }
            descend_or_fall(m.right, true, &mut stack, &mut edges, &mut cluster_count);
        } else {
            // Both sides die: every leaf below falls out here.
            scratch_leaves.clear();
            collect_leaves(m.left, &mut scratch_leaves);
            collect_leaves(m.right, &mut scratch_leaves);
            for &p in &scratch_leaves {
                edges.push(CondEdge {
                    parent: cluster,
                    child: p,
                    lambda,
                    size: 1,
                });
            }
        }
    }
    CondensedTree {
        edges,
        cluster_count,
        n,
    }
}

/// Excess-of-Mass cluster extraction.
///
/// Returns `(labels, membership, selected_count)`: per-point cluster
/// assignments (noise = `None`), per-point membership strengths in
/// `[0, 1]`, and how many clusters were selected.
pub fn extract_eom(
    tree: &CondensedTree,
    n: usize,
    allow_single_cluster: bool,
) -> (Vec<Option<u32>>, Vec<f64>, usize) {
    let k = tree.cluster_count;
    let mut labels: Vec<Option<u32>> = vec![None; n];
    let mut membership = vec![0.0; n];
    if k == 0 {
        return (labels, membership, 0);
    }
    let idx = |cluster: u32| -> usize { cluster as usize - n };

    // Birth lambda, stability, and the cluster-child lists.
    let mut birth = vec![0.0f64; k];
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); k];
    for e in &tree.edges {
        if (e.child as usize) >= n {
            birth[idx(e.child)] = e.lambda;
            children[idx(e.parent)].push(e.child);
        }
    }
    let mut stability = vec![0.0f64; k];
    for e in &tree.edges {
        stability[idx(e.parent)] += (e.lambda - birth[idx(e.parent)]) * e.size as f64;
    }

    // Bottom-up EOM: clusters were numbered in creation order, so children
    // always have larger ids — reverse id order is a valid bottom-up order.
    let mut selected = vec![false; k];
    let mut subtree_value = vec![0.0f64; k];
    for c in (0..k).rev() {
        let child_sum: f64 = children[c].iter().map(|&ch| subtree_value[idx(ch)]).sum();
        let is_root = c == 0;
        let may_select = !is_root || allow_single_cluster;
        if may_select && (children[c].is_empty() || stability[c] >= child_sum) {
            selected[c] = true;
            subtree_value[c] = stability[c].max(child_sum);
            if stability[c] < child_sum {
                // Children are jointly better: keep them instead.
                selected[c] = false;
                subtree_value[c] = child_sum;
            }
        } else {
            subtree_value[c] = child_sum.max(if may_select { stability[c] } else { 0.0 });
        }
    }

    // Suppress selected descendants of selected ancestors (keep topmost).
    let mut suppressed = vec![false; k];
    let mut order: Vec<usize> = (0..k).collect(); // parents precede children
    order.sort_unstable();
    for &c in &order {
        if suppressed[c] {
            selected[c] = false;
        }
        if selected[c] || suppressed[c] {
            let mut stack: Vec<u32> = children[c].clone();
            while let Some(ch) = stack.pop() {
                suppressed[idx(ch)] = true;
                stack.extend(children[idx(ch)].iter().copied());
            }
        }
    }

    // Map every cluster to its selected ancestor (or itself), if any.
    let mut owner: Vec<Option<usize>> = vec![None; k];
    let mut parent_of: Vec<Option<usize>> = vec![None; k];
    for e in &tree.edges {
        if (e.child as usize) >= n {
            parent_of[idx(e.child)] = Some(idx(e.parent));
        }
    }
    #[allow(clippy::needless_range_loop)] // c is walked upward through parent_of
    for c in 0..k {
        // Walk up until a selected cluster or the root.
        let mut cursor = Some(c);
        while let Some(x) = cursor {
            if selected[x] {
                owner[c] = Some(x);
                break;
            }
            cursor = parent_of[x];
        }
    }

    // Assign points and collect per-owner maximum lambda for membership.
    let selected_ids: Vec<usize> = (0..k).filter(|&c| selected[c]).collect();
    let dense: std::collections::HashMap<usize, u32> = selected_ids
        .iter()
        .enumerate()
        .map(|(d, &c)| (c, d as u32))
        .collect();
    let mut max_lambda = vec![0.0f64; selected_ids.len()];
    let mut point_lambda = vec![0.0f64; n];
    for e in &tree.edges {
        if (e.child as usize) < n {
            if let Some(own) = owner[idx(e.parent)] {
                let d = dense[&own];
                labels[e.child as usize] = Some(d);
                point_lambda[e.child as usize] = e.lambda;
                if e.lambda > max_lambda[d as usize] {
                    max_lambda[d as usize] = e.lambda;
                }
            }
        }
    }
    for p in 0..n {
        if let Some(d) = labels[p] {
            let denom = max_lambda[d as usize];
            membership[p] = if denom > 0.0 {
                (point_lambda[p] / denom).min(1.0)
            } else {
                1.0
            };
        }
    }
    (labels, membership, selected_ids.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-checkable dendrogram: two pairs merging tight, then loose.
    ///   points 0,1 merge at d=1; points 2,3 merge at d=1; roots at d=10.
    fn two_pair_merges() -> Vec<Merge> {
        vec![
            Merge {
                left: 0,
                right: 1,
                dist: 1.0,
                size: 2,
            },
            Merge {
                left: 2,
                right: 3,
                dist: 1.0,
                size: 2,
            },
            Merge {
                left: 4,
                right: 5,
                dist: 10.0,
                size: 4,
            },
        ]
    }

    #[test]
    fn single_linkage_orders_merges_by_weight() {
        let edges = vec![(0u32, 1u32, 5.0), (1, 2, 1.0), (2, 3, 3.0)];
        let merges = single_linkage(4, &edges);
        assert_eq!(merges.len(), 3);
        assert!(merges[0].dist <= merges[1].dist && merges[1].dist <= merges[2].dist);
        assert_eq!(merges[2].size, 4);
    }

    #[test]
    fn condense_keeps_viable_splits() {
        let tree = condense(&two_pair_merges(), 4, 2);
        // Root splits into two 2-point clusters => 3 clusters total and
        // 2 cluster edges + 4 point edges.
        assert_eq!(tree.cluster_count, 3);
        let cluster_edges = tree.edges.iter().filter(|e| e.child as usize >= 4).count();
        let point_edges = tree.edges.iter().filter(|e| (e.child as usize) < 4).count();
        assert_eq!(cluster_edges, 2);
        assert_eq!(point_edges, 4);
    }

    #[test]
    fn condense_dissolves_small_sides() {
        // min_cluster_size 3 makes both 2-point children fall out.
        let tree = condense(&two_pair_merges(), 4, 3);
        assert_eq!(tree.cluster_count, 1);
        assert_eq!(tree.edges.len(), 4, "all four points fall out of the root");
    }

    #[test]
    fn eom_selects_the_two_tight_clusters() {
        let tree = condense(&two_pair_merges(), 4, 2);
        let (labels, membership, selected) = extract_eom(&tree, 4, false);
        assert_eq!(selected, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert!(labels.iter().all(Option::is_some));
        assert!(membership.iter().all(|&m| m > 0.0));
    }

    #[test]
    fn eom_without_splits_needs_single_cluster_flag() {
        let tree = condense(&two_pair_merges(), 4, 3);
        let (labels, _, selected) = extract_eom(&tree, 4, false);
        assert_eq!(selected, 0);
        assert!(labels.iter().all(Option::is_none));
        let (labels, _, selected) = extract_eom(&tree, 4, true);
        assert_eq!(selected, 1);
        assert!(labels.iter().all(Option::is_some));
    }

    #[test]
    fn empty_inputs() {
        let tree = condense(&[], 0, 2);
        let (labels, membership, selected) = extract_eom(&tree, 0, true);
        assert!(labels.is_empty() && membership.is_empty());
        assert_eq!(selected, 0);
        // Single point: no merges, empty condensed tree, noise.
        let tree = condense(&[], 1, 2);
        let (labels, _, _) = extract_eom(&tree, 1, true);
        assert_eq!(labels, vec![None]);
    }
}
