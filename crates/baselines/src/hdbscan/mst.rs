//! Minimum spanning tree under the mutual-reachability distance.

use dbsvec_geometry::PointSet;

/// One MST edge `(a, b, weight)`.
pub type MstEdge = (u32, u32, f64);

/// Prim's algorithm over the (implicit, complete) mutual-reachability
/// graph: `mreach(a, b) = max(core[a], core[b], dist(a, b))`.
///
/// O(n²) time — each round relaxes every non-tree vertex against the
/// newly added one — and O(n) memory, since the graph is never
/// materialized. Returns `n − 1` edges (empty for `n <= 1`).
///
/// # Panics
///
/// Panics if `core.len() != points.len()`.
pub fn mutual_reachability_mst(points: &PointSet, core: &[f64]) -> Vec<MstEdge> {
    let n = points.len();
    assert_eq!(core.len(), n, "one core distance per point");
    if n <= 1 {
        return Vec::new();
    }

    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0u32; n];
    let mut edges = Vec::with_capacity(n - 1);

    let mut current = 0usize;
    in_tree[0] = true;
    for _ in 1..n {
        // Relax against the vertex added last round.
        let pc = points.point(current as u32);
        let cc = core[current];
        for j in 0..n {
            if in_tree[j] {
                continue;
            }
            let d = dbsvec_geometry::euclidean(pc, points.point(j as u32));
            let mreach = d.max(cc).max(core[j]);
            if mreach < best_dist[j] {
                best_dist[j] = mreach;
                best_from[j] = current as u32;
            }
        }
        // Take the closest non-tree vertex.
        let (next, _) = best_dist
            .iter()
            .enumerate()
            .filter(|(j, _)| !in_tree[*j])
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN mreach"))
            .expect("a non-tree vertex remains");
        in_tree[next] = true;
        edges.push((best_from[next], next as u32, best_dist[next]));
        current = next;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_core::UnionFind;
    use dbsvec_geometry::rng::SplitMix64;

    fn random_points(n: usize, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for _ in 0..n {
            ps.push(&[rng.next_f64() * 100.0, rng.next_f64() * 100.0]);
        }
        ps
    }

    /// Total weight of the tree found by a brute-force Kruskal.
    fn kruskal_weight(points: &PointSet, core: &[f64]) -> f64 {
        let n = points.len();
        let mut all: Vec<MstEdge> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let d = points
                    .distance(a as u32, b as u32)
                    .max(core[a])
                    .max(core[b]);
                all.push((a as u32, b as u32, d));
            }
        }
        all.sort_by(|x, y| x.2.partial_cmp(&y.2).unwrap());
        let mut uf = UnionFind::new();
        for _ in 0..n {
            uf.make_set();
        }
        let mut total = 0.0;
        for (a, b, w) in all {
            if !uf.same(a, b) {
                uf.union(a, b);
                total += w;
            }
        }
        total
    }

    #[test]
    fn matches_kruskal_total_weight() {
        let ps = random_points(60, 1);
        let core: Vec<f64> = (0..60).map(|i| (i % 7) as f64).collect();
        let edges = mutual_reachability_mst(&ps, &core);
        assert_eq!(edges.len(), 59);
        let prim_total: f64 = edges.iter().map(|e| e.2).sum();
        let kruskal_total = kruskal_weight(&ps, &core);
        assert!(
            (prim_total - kruskal_total).abs() < 1e-9,
            "Prim {prim_total} vs Kruskal {kruskal_total}"
        );
    }

    #[test]
    fn edges_form_a_spanning_tree() {
        let ps = random_points(40, 2);
        let core = vec![0.0; 40];
        let edges = mutual_reachability_mst(&ps, &core);
        let mut uf = UnionFind::new();
        for _ in 0..40 {
            uf.make_set();
        }
        for &(a, b, _) in &edges {
            assert!(!uf.same(a, b), "cycle edge ({a},{b})");
            uf.union(a, b);
        }
        for i in 1..40 {
            assert!(uf.same(0, i), "vertex {i} disconnected");
        }
    }

    #[test]
    fn core_distances_dominate_short_edges() {
        // With a huge core distance on one point, every edge touching it
        // weighs at least that much.
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let core = vec![0.0, 50.0, 0.0];
        let edges = mutual_reachability_mst(&ps, &core);
        for &(a, b, w) in &edges {
            if a == 1 || b == 1 {
                assert!(w >= 50.0, "edge ({a},{b}) weight {w}");
            }
        }
    }

    #[test]
    fn degenerate_sizes() {
        let ps = PointSet::new(2);
        assert!(mutual_reachability_mst(&ps, &[]).is_empty());
        let ps = PointSet::from_rows(&[vec![1.0, 1.0]]);
        assert!(mutual_reachability_mst(&ps, &[0.0]).is_empty());
    }
}
