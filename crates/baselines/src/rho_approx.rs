//! ρ-approximate DBSCAN (Gan & Tao, SIGMOD 2015).
//!
//! The state-of-the-art grid-based DBSCAN approximation the paper compares
//! against. Points are bucketed into cells of width `ε/√d` (cell diameter
//! ≤ ε, so a cell with ≥ MinPts points makes *all* its points core). Core
//! tests and cluster connectivity are answered with ρ-slack:
//!
//! * a point counts neighbors **at least** within ε and **at most** within
//!   `ε(1+ρ)` — whole cells inside the slack ball are counted without
//!   per-point distance checks;
//! * two core cells are connected when some pair of their core points is
//!   within `ε(1+ρ)` (pairs beyond ε but inside the slack may connect —
//!   exactly the approximation Gan & Tao license).
//!
//! Clusters are the connected components of the core-cell graph; non-core
//! points attach to the nearest core point within the slack radius.
//!
//! The cell population is exponential in the dimensionality (`(√d)^d`
//! cells per ε-ball), which is why the paper's Fig. 6 shows this method
//! deteriorating rapidly with d. A two-level grid (super-cells of width
//! `ε(1+ρ)`) keeps *this* implementation from enumerating empty cells, but
//! the fundamental growth remains — as it should, since that is the
//! behaviour the experiments demonstrate.

use std::collections::HashMap;

use dbsvec_core::labels::{Clustering, WorkingLabels};
use dbsvec_geometry::{PointId, PointSet};

/// Counters for a ρ-approximate DBSCAN run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RhoApproxStats {
    /// Occupied grid cells.
    pub cells: u64,
    /// Points that passed the (approximate) core test.
    pub core_points: u64,
    /// Cell pairs examined during connectivity.
    pub cell_pairs_checked: u64,
}

/// Result of a ρ-approximate DBSCAN run.
#[derive(Clone, Debug)]
pub struct RhoApproxResult {
    /// Final labels.
    pub clustering: Clustering,
    /// Cost counters.
    pub stats: RhoApproxStats,
}

/// ρ-approximate DBSCAN.
#[derive(Clone, Copy, Debug)]
pub struct RhoApproxDbscan {
    eps: f64,
    min_pts: usize,
    rho: f64,
}

impl RhoApproxDbscan {
    /// Creates the algorithm. The paper recommends `ρ = 0.001` (§V-A).
    ///
    /// # Panics
    ///
    /// Panics unless `eps > 0`, `min_pts >= 1`, and `rho >= 0`.
    pub fn new(eps: f64, min_pts: usize, rho: f64) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive and finite"
        );
        assert!(min_pts >= 1, "MinPts must be at least 1");
        assert!(rho.is_finite() && rho >= 0.0, "rho must be non-negative");
        Self { eps, min_pts, rho }
    }

    /// The slack radius `ε(1+ρ)`.
    fn slack(&self) -> f64 {
        self.eps * (1.0 + self.rho)
    }

    /// Clusters `points`.
    pub fn fit(&self, points: &PointSet) -> RhoApproxResult {
        let n = points.len();
        let mut labels = WorkingLabels::new(n);
        let mut stats = RhoApproxStats::default();
        if n == 0 {
            return RhoApproxResult {
                clustering: labels.finalize(|raw| raw),
                stats,
            };
        }

        let grid = TwoLevelGrid::build(points, self.eps, self.slack());
        stats.cells = grid.cells.len() as u64;

        // ---- Core tests.
        let mut core = vec![false; n];
        for cell in &grid.cells {
            if cell.ids.len() >= self.min_pts {
                // Cell diameter <= eps: every member sees the whole cell.
                for &id in &cell.ids {
                    core[id as usize] = true;
                }
                continue;
            }
            for &id in &cell.ids {
                if self.approx_count(points, &grid, id) >= self.min_pts {
                    core[id as usize] = true;
                }
            }
        }
        stats.core_points = core.iter().filter(|&&c| c).count() as u64;

        // ---- Connected components over the core-cell graph.
        let core_cells: Vec<usize> = (0..grid.cells.len())
            .filter(|&c| grid.cells[c].ids.iter().any(|&id| core[id as usize]))
            .collect();
        let mut cell_cluster: Vec<Option<u32>> = vec![None; grid.cells.len()];
        let mut next_cluster = 0u32;
        for &start in &core_cells {
            if cell_cluster[start].is_some() {
                continue;
            }
            let cid = next_cluster;
            next_cluster += 1;
            let mut stack = vec![start];
            cell_cluster[start] = Some(cid);
            while let Some(a) = stack.pop() {
                let coord_a = grid.cells[a].coord.clone();
                grid.for_each_cell_near(&coord_a, |b| {
                    if b == a || cell_cluster[b].is_some() {
                        return;
                    }
                    if !grid.cells[b].ids.iter().any(|&id| core[id as usize]) {
                        return;
                    }
                    stats.cell_pairs_checked += 1;
                    if grid.cell_min_dist(a, b) <= self.eps
                        && self.core_pair_within_slack(points, &grid, a, b, &core)
                    {
                        cell_cluster[b] = Some(cid);
                        stack.push(b);
                    }
                });
            }
        }

        // ---- Assign points.
        for (c, cell) in grid.cells.iter().enumerate() {
            if let Some(cid) = cell_cluster[c] {
                for &id in &cell.ids {
                    if core[id as usize] {
                        labels.set_cluster(id, cid);
                    }
                }
            }
        }
        // Border points: nearest core point within the slack radius.
        let slack_sq = self.slack() * self.slack();
        for id in 0..n as u32 {
            if core[id as usize] {
                continue;
            }
            let p = points.point(id);
            let mut best: Option<(f64, u32)> = None;
            grid.for_each_cell_near(&grid.coord_of(p), |b| {
                if let Some(cid) = cell_cluster[b] {
                    for &q in &grid.cells[b].ids {
                        if !core[q as usize] {
                            continue;
                        }
                        let d = points.squared_distance_to(q, p);
                        if d <= slack_sq && best.map_or(true, |(bd, _)| d < bd) {
                            best = Some((d, cid));
                        }
                    }
                }
            });
            match best {
                Some((_, cid)) => labels.set_cluster(id, cid),
                None => labels.set_noise(id),
            }
        }

        RhoApproxResult {
            clustering: labels.finalize(|raw| raw),
            stats,
        }
    }

    /// ρ-approximate neighbor count for one point: exact within ε, may
    /// include points up to `ε(1+ρ)`.
    fn approx_count(&self, points: &PointSet, grid: &TwoLevelGrid, id: PointId) -> usize {
        let p = points.point(id);
        let eps_sq = self.eps * self.eps;
        let slack = self.slack();
        let mut count = 0;
        grid.for_each_cell_near(&grid.coord_of(p), |b| {
            let cell = &grid.cells[b];
            let min_d = grid.point_cell_min_dist(p, &cell.coord);
            if min_d > self.eps {
                return; // no mandatory neighbors here
            }
            if grid.point_cell_max_dist(p, &cell.coord) <= slack {
                count += cell.ids.len(); // whole cell inside the slack ball
            } else {
                count += cell
                    .ids
                    .iter()
                    .filter(|&&q| points.squared_distance_to(q, p) <= eps_sq)
                    .count();
            }
        });
        count
    }

    /// Whether cells `a` and `b` contain a core pair within the slack
    /// radius.
    fn core_pair_within_slack(
        &self,
        points: &PointSet,
        grid: &TwoLevelGrid,
        a: usize,
        b: usize,
        core: &[bool],
    ) -> bool {
        let slack_sq = self.slack() * self.slack();
        for &p in &grid.cells[a].ids {
            if !core[p as usize] {
                continue;
            }
            for &q in &grid.cells[b].ids {
                if core[q as usize] && points.squared_distance(p, q) <= slack_sq {
                    return true;
                }
            }
        }
        false
    }
}

/// The ε/√d fine grid plus an ε(1+ρ)-wide super-grid used to enumerate
/// nearby cells without visiting the exponentially many empty ones.
struct TwoLevelGrid {
    cells: Vec<GridCell>,
    cell_width: f64,
    /// Fine-cell coordinate -> index into `cells` (kept for lookups in
    /// diagnostics and tests; the hot paths use the super-grid).
    #[cfg_attr(not(test), allow(dead_code))]
    index: HashMap<Vec<i64>, usize>,
    /// Super-cell coordinate -> fine cells inside it.
    supercells: HashMap<Vec<i64>, Vec<usize>>,
    /// Fine cells per super-cell edge.
    super_factor: i64,
}

struct GridCell {
    coord: Vec<i64>,
    ids: Vec<PointId>,
}

impl TwoLevelGrid {
    fn build(points: &PointSet, eps: f64, slack: f64) -> Self {
        let d = points.dims();
        let cell_width = eps / (d as f64).sqrt();
        let super_factor = (slack / cell_width).ceil() as i64 + 1;

        let mut index: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut cells: Vec<GridCell> = Vec::new();
        for (id, p) in points.iter() {
            let coord: Vec<i64> = p.iter().map(|&x| (x / cell_width).floor() as i64).collect();
            match index.get(&coord) {
                Some(&c) => cells[c].ids.push(id),
                None => {
                    index.insert(coord.clone(), cells.len());
                    cells.push(GridCell {
                        coord,
                        ids: vec![id],
                    });
                }
            }
        }

        let mut supercells: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
        for (c, cell) in cells.iter().enumerate() {
            let sc: Vec<i64> = cell
                .coord
                .iter()
                .map(|&x| x.div_euclid(super_factor))
                .collect();
            supercells.entry(sc).or_default().push(c);
        }
        Self {
            cells,
            cell_width,
            index,
            supercells,
            super_factor,
        }
    }

    fn coord_of(&self, p: &[f64]) -> Vec<i64> {
        p.iter()
            .map(|&x| (x / self.cell_width).floor() as i64)
            .collect()
    }

    /// Visits every occupied fine cell whose super-cell is within L∞
    /// offset 1 of `coord`'s super-cell — a superset of all cells within
    /// the slack radius.
    fn for_each_cell_near(&self, coord: &[i64], mut f: impl FnMut(usize)) {
        let sc: Vec<i64> = coord
            .iter()
            .map(|&x| x.div_euclid(self.super_factor))
            .collect();
        let d = sc.len();
        let enumerable =
            d <= 10 && 3usize.pow(d.min(10) as u32) <= 4 * self.supercells.len().max(1);
        if enumerable {
            let mut offset = vec![-1i64; d];
            loop {
                let key: Vec<i64> = sc.iter().zip(&offset).map(|(a, o)| a + o).collect();
                if let Some(members) = self.supercells.get(&key) {
                    for &c in members {
                        f(c);
                    }
                }
                let mut carry = true;
                for slot in offset.iter_mut() {
                    *slot += 1;
                    if *slot <= 1 {
                        carry = false;
                        break;
                    }
                    *slot = -1;
                }
                if carry {
                    break;
                }
            }
        } else {
            // High dimension: scan occupied super-cells with a cheap
            // L∞ filter instead of enumerating 3^d neighbors.
            for (key, members) in &self.supercells {
                if key.iter().zip(&sc).all(|(a, b)| (a - b).abs() <= 1) {
                    for &c in members {
                        f(c);
                    }
                }
            }
        }
    }

    fn cell_min_dist(&self, a: usize, b: usize) -> f64 {
        let w = self.cell_width;
        let mut acc = 0.0;
        for (&ca, &cb) in self.cells[a].coord.iter().zip(&self.cells[b].coord) {
            let gap = (ca - cb).abs().saturating_sub(1) as f64 * w;
            acc += gap * gap;
        }
        acc.sqrt()
    }

    fn point_cell_min_dist(&self, p: &[f64], coord: &[i64]) -> f64 {
        let w = self.cell_width;
        let mut acc = 0.0;
        for (&x, &c) in p.iter().zip(coord) {
            let lo = c as f64 * w;
            let hi = lo + w;
            let diff = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            acc += diff * diff;
        }
        acc.sqrt()
    }

    fn point_cell_max_dist(&self, p: &[f64], coord: &[i64]) -> f64 {
        let w = self.cell_width;
        let mut acc = 0.0;
        for (&x, &c) in p.iter().zip(coord) {
            let lo = c as f64 * w;
            let hi = lo + w;
            let diff = (x - lo).abs().max((x - hi).abs());
            acc += diff * diff;
        }
        acc.sqrt()
    }

    #[cfg(test)]
    fn cell_of(&self, p: &[f64]) -> Option<usize> {
        self.index.get(&self.coord_of(p)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use dbsvec_geometry::rng::SplitMix64;

    fn blobs(centers: &[[f64; 2]], per: usize, spread: f64, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for c in centers {
            for _ in 0..per {
                let x: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
                let y: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
                ps.push(&[c[0] + spread * x, c[1] + spread * y]);
            }
        }
        ps
    }

    #[test]
    fn agrees_with_exact_dbscan_on_separated_blobs() {
        let ps = blobs(&[[0.0, 0.0], [60.0, 0.0], [0.0, 60.0]], 70, 1.2, 1);
        let exact = Dbscan::new(3.0, 6).fit(&ps);
        let approx = RhoApproxDbscan::new(3.0, 6, 0.001).fit(&ps);
        assert_eq!(
            approx.clustering.num_clusters(),
            exact.clustering.num_clusters()
        );
        // Same partition up to relabeling: check via pairwise sample.
        let ea = exact.clustering.assignments();
        let aa = approx.clustering.assignments();
        for i in (0..ps.len()).step_by(7) {
            for j in (i + 1..ps.len()).step_by(11) {
                let same_exact = ea[i].is_some() && ea[i] == ea[j];
                let same_approx = aa[i].is_some() && aa[i] == aa[j];
                assert_eq!(same_exact, same_approx, "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn dense_cell_shortcut_marks_cores() {
        // 50 coincident points: the single cell exceeds MinPts.
        let ps = PointSet::from_rows(&vec![vec![5.0, 5.0]; 50]);
        let result = RhoApproxDbscan::new(1.0, 10, 0.001).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 1);
        assert_eq!(result.stats.core_points, 50);
    }

    #[test]
    fn noise_is_detected() {
        let mut ps = blobs(&[[0.0, 0.0]], 60, 1.0, 2);
        ps.push(&[500.0, 500.0]);
        let result = RhoApproxDbscan::new(3.0, 6, 0.001).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 1);
        assert!(result.clustering.is_noise(60));
    }

    #[test]
    fn works_in_higher_dimensions() {
        // d = 12 exercises the occupied-supercell fallback path.
        let mut rng = SplitMix64::new(3);
        let mut ps = PointSet::new(12);
        let mut row = vec![0.0; 12];
        for c in 0..2 {
            for _ in 0..50 {
                for x in row.iter_mut() {
                    *x = c as f64 * 100.0 + rng.next_f64();
                }
                ps.push(&row);
            }
        }
        let exact = Dbscan::new(2.0, 5).fit(&ps);
        let approx = RhoApproxDbscan::new(2.0, 5, 0.001).fit(&ps);
        assert_eq!(
            approx.clustering.num_clusters(),
            exact.clustering.num_clusters()
        );
    }

    #[test]
    fn rho_zero_is_still_correct() {
        let ps = blobs(&[[0.0, 0.0], [40.0, 0.0]], 60, 1.1, 4);
        let exact = Dbscan::new(2.5, 5).fit(&ps);
        let approx = RhoApproxDbscan::new(2.5, 5, 0.0).fit(&ps);
        assert_eq!(
            approx.clustering.num_clusters(),
            exact.clustering.num_clusters()
        );
    }

    #[test]
    fn grid_distances_are_consistent() {
        let ps = PointSet::from_rows(&[vec![0.5, 0.5], vec![10.0, 10.0]]);
        let grid = TwoLevelGrid::build(&ps, 1.0, 1.001);
        let c0 = grid.cell_of(&[0.5, 0.5]).unwrap();
        let c1 = grid.cell_of(&[10.0, 10.0]).unwrap();
        let min_d = grid.cell_min_dist(c0, c1);
        // True distance ~13.4; min cell distance must lower-bound it.
        assert!(min_d <= ps.distance(0, 1));
        assert!(min_d > 10.0);
        // Point-to-own-cell distance is zero; max dist bounds the diagonal.
        assert_eq!(
            grid.point_cell_min_dist(&[0.5, 0.5], &grid.coord_of(&[0.5, 0.5])),
            0.0
        );
        assert!(grid.point_cell_max_dist(&[0.5, 0.5], &grid.coord_of(&[0.5, 0.5])) <= 1.1);
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::new(2);
        let result = RhoApproxDbscan::new(1.0, 3, 0.001).fit(&ps);
        assert!(result.clustering.is_empty());
    }
}
