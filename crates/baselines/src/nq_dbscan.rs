//! NQ-DBSCAN (Chen et al., Pattern Recognition 2018).
//!
//! A fast *exact* DBSCAN variant that prunes unnecessary **distance
//! computations** (not range queries — the paper's §II-C notes it "does not
//! reduce the number of range queries"). Following the reference design, it
//! uses a local neighborhood grid with cells of width `ε/√d`:
//!
//! * a cell holding ≥ MinPts points makes all of them core with **zero**
//!   distance computations (cell diameter ≤ ε);
//! * range queries only touch cells overlapping the query ball, count whole
//!   cells that lie fully inside it, and compute distances only for the
//!   boundary cells.
//!
//! The clustering logic is exact DBSCAN, so the output matches
//! [`crate::Dbscan`] exactly; only the work per query differs.

use dbsvec_core::labels::{Clustering, WorkingLabels};
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_obs::{Event, NoopObserver, Observer, Phase};

use std::collections::HashMap;

/// Counters for an NQ-DBSCAN run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NqDbscanStats {
    /// Range queries issued.
    pub range_queries: u64,
    /// Point-to-point distance computations performed.
    pub distance_computations: u64,
    /// Points certified core by the dense-cell shortcut (no query needed).
    pub dense_cell_cores: u64,
}

/// Result of an NQ-DBSCAN run.
#[derive(Clone, Debug)]
pub struct NqDbscanResult {
    /// Final labels.
    pub clustering: Clustering,
    /// Cost counters.
    pub stats: NqDbscanStats,
}

/// NQ-DBSCAN.
#[derive(Clone, Copy, Debug)]
pub struct NqDbscan {
    eps: f64,
    min_pts: usize,
}

impl NqDbscan {
    /// Creates the algorithm.
    ///
    /// # Panics
    ///
    /// Panics unless `eps` is positive and finite and `min_pts >= 1`.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive and finite"
        );
        assert!(min_pts >= 1, "MinPts must be at least 1");
        Self { eps, min_pts }
    }

    /// Clusters `points`.
    pub fn fit(&self, points: &PointSet) -> NqDbscanResult {
        self.fit_observed(points, &mut NoopObserver)
    }

    /// [`NqDbscan::fit`] with an observer. Like plain DBSCAN this spans one
    /// `init` phase and emits one [`Event::RangeQuery`] per query, so θ is
    /// directly comparable with DBSVEC traces.
    pub fn fit_observed(&self, points: &PointSet, obs: &mut dyn Observer) -> NqDbscanResult {
        let n = points.len();
        let mut labels = WorkingLabels::new(n);
        let mut stats = NqDbscanStats::default();
        if n == 0 {
            return NqDbscanResult {
                clustering: labels.finalize(|raw| raw),
                stats,
            };
        }

        let grid = LocalGrid::build(points, self.eps);
        // Dense-cell shortcut: a full cell certifies all members core.
        let mut known_core = vec![false; n];
        for (_, ids) in &grid.cells {
            if ids.len() >= self.min_pts {
                for &id in ids {
                    known_core[id as usize] = true;
                }
                stats.dense_cell_cores += ids.len() as u64;
            }
        }

        let mut queried = vec![false; n];
        let mut next_cluster = 0u32;
        let mut queue: Vec<PointId> = Vec::new();
        let mut neighborhood: Vec<PointId> = Vec::new();

        obs.span_enter(Phase::Init);
        for i in 0..n as u32 {
            if !labels.is_unclassified(i) {
                continue;
            }
            neighborhood.clear();
            grid.range(points, i, self.eps, &mut neighborhood, &mut stats);
            stats.range_queries += 1;
            obs.event(&Event::RangeQuery {
                probe: i,
                result_len: neighborhood.len(),
            });
            queried[i as usize] = true;
            if !known_core[i as usize] && neighborhood.len() < self.min_pts {
                labels.set_noise(i);
                continue;
            }

            let cid = next_cluster;
            next_cluster += 1;
            labels.set_cluster(i, cid);
            queue.clear();
            for &j in &neighborhood {
                if labels.is_unclassified(j) || labels.is_noise(j) {
                    labels.set_cluster(j, cid);
                    queue.push(j);
                }
            }
            while let Some(p) = queue.pop() {
                if queried[p as usize] {
                    continue;
                }
                neighborhood.clear();
                grid.range(points, p, self.eps, &mut neighborhood, &mut stats);
                stats.range_queries += 1;
                obs.event(&Event::RangeQuery {
                    probe: p,
                    result_len: neighborhood.len(),
                });
                queried[p as usize] = true;
                if !known_core[p as usize] && neighborhood.len() < self.min_pts {
                    continue;
                }
                for &j in &neighborhood {
                    if labels.is_unclassified(j) || labels.is_noise(j) {
                        labels.set_cluster(j, cid);
                        queue.push(j);
                    }
                }
            }
        }
        obs.span_exit(Phase::Init);

        NqDbscanResult {
            clustering: labels.finalize(|raw| raw),
            stats,
        }
    }
}

/// Fine grid (`ε/√d` cells) answering exact range queries with
/// whole-cell shortcuts.
///
/// A second level of *super-cells* (a `⌈√d⌉+1` block of fine cells per
/// edge, so every fine cell within ε of a query lies in an adjacent
/// super-cell) bounds the candidate enumeration: the query visits at most
/// the occupied super-cells, never the exponentially many empty fine
/// cells.
struct LocalGrid {
    /// Fine cells: coordinate and member ids.
    cells: Vec<(Vec<i64>, Vec<PointId>)>,
    /// Super-cell coordinate -> indices into `cells`.
    supercells: HashMap<Vec<i64>, Vec<usize>>,
    cell_width: f64,
    super_factor: i64,
}

impl LocalGrid {
    fn build(points: &PointSet, eps: f64) -> Self {
        let cell_width = eps / (points.dims() as f64).sqrt();
        let super_factor = (eps / cell_width).ceil() as i64 + 1;
        let mut index: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut cells: Vec<(Vec<i64>, Vec<PointId>)> = Vec::new();
        for (id, p) in points.iter() {
            let coord: Vec<i64> = p.iter().map(|&x| (x / cell_width).floor() as i64).collect();
            match index.get(&coord) {
                Some(&c) => cells[c].1.push(id),
                None => {
                    index.insert(coord.clone(), cells.len());
                    cells.push((coord, vec![id]));
                }
            }
        }
        let mut supercells: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
        for (c, (coord, _)) in cells.iter().enumerate() {
            let sc: Vec<i64> = coord.iter().map(|&x| x.div_euclid(super_factor)).collect();
            supercells.entry(sc).or_default().push(c);
        }
        Self {
            cells,
            supercells,
            cell_width,
            super_factor,
        }
    }

    /// Exact ε-range query for point `id` with whole-cell accept/reject.
    fn range(
        &self,
        points: &PointSet,
        id: PointId,
        eps: f64,
        out: &mut Vec<PointId>,
        stats: &mut NqDbscanStats,
    ) {
        let p = points.point(id);
        let eps_sq = eps * eps;
        let d = points.dims();
        let w = self.cell_width;

        let mut visit = |coord: &[i64], ids: &[PointId]| {
            // Distance bounds from p to the cell box.
            let mut min_acc = 0.0;
            let mut max_acc = 0.0;
            for (&x, &c) in p.iter().zip(coord) {
                let lo = c as f64 * w;
                let hi = lo + w;
                let min_diff = if x < lo {
                    lo - x
                } else if x > hi {
                    x - hi
                } else {
                    0.0
                };
                min_acc += min_diff * min_diff;
                let max_diff = (x - lo).abs().max((x - hi).abs());
                max_acc += max_diff * max_diff;
            }
            if min_acc > eps_sq {
                return; // cell fully outside: zero distance computations
            }
            if max_acc <= eps_sq {
                out.extend_from_slice(ids); // fully inside: zero computations
                return;
            }
            for &q in ids {
                stats.distance_computations += 1;
                if points.squared_distance_to(q, p) <= eps_sq {
                    out.push(q);
                }
            }
        };

        let sc: Vec<i64> = p
            .iter()
            .map(|&x| ((x / w).floor() as i64).div_euclid(self.super_factor))
            .collect();
        let enumerable =
            d <= 10 && 3usize.pow(d.min(10) as u32) <= 4 * self.supercells.len().max(1);
        if enumerable {
            let mut offset = vec![-1i64; d];
            loop {
                let key: Vec<i64> = sc.iter().zip(&offset).map(|(a, o)| a + o).collect();
                if let Some(members) = self.supercells.get(&key) {
                    for &c in members {
                        let (coord, ids) = &self.cells[c];
                        visit(coord, ids);
                    }
                }
                let mut carry = true;
                for slot in offset.iter_mut() {
                    *slot += 1;
                    if *slot <= 1 {
                        carry = false;
                        break;
                    }
                    *slot = -1;
                }
                if carry {
                    break;
                }
            }
        } else {
            for (key, members) in &self.supercells {
                if key.iter().zip(&sc).all(|(a, b)| (a - b).abs() <= 1) {
                    for &c in members {
                        let (coord, ids) = &self.cells[c];
                        visit(coord, ids);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use dbsvec_geometry::rng::SplitMix64;

    fn random_blobs(seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for c in [[0.0, 0.0], [30.0, 10.0], [5.0, 40.0]] {
            for _ in 0..70 {
                ps.push(&[c[0] + rng.next_f64() * 5.0, c[1] + rng.next_f64() * 5.0]);
            }
        }
        ps.push(&[500.0, 500.0]); // noise
        ps
    }

    #[test]
    fn output_is_identical_to_exact_dbscan() {
        let ps = random_blobs(1);
        let exact = Dbscan::new(2.0, 5).fit(&ps);
        let nq = NqDbscan::new(2.0, 5).fit(&ps);
        // NQ-DBSCAN is exact: same partition (cluster ids may permute, but
        // both use first-visit order over the same point order).
        assert_eq!(exact.clustering, nq.clustering);
    }

    #[test]
    fn identical_across_parameter_grid() {
        let ps = random_blobs(2);
        for eps in [0.5, 1.5, 4.0] {
            for min_pts in [2, 5, 12] {
                let exact = Dbscan::new(eps, min_pts).fit(&ps);
                let nq = NqDbscan::new(eps, min_pts).fit(&ps);
                assert_eq!(
                    exact.clustering, nq.clustering,
                    "eps={eps} min_pts={min_pts}"
                );
            }
        }
    }

    #[test]
    fn dense_cells_skip_distance_computations() {
        // All points coincide: one dense cell, zero distance computations
        // needed to certify cores (queries still return the full cell).
        let ps = PointSet::from_rows(&vec![vec![1.0, 1.0]; 40]);
        let result = NqDbscan::new(1.0, 10).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 1);
        assert_eq!(result.stats.dense_cell_cores, 40);
        assert_eq!(result.stats.distance_computations, 0);
    }

    #[test]
    fn fewer_distance_computations_than_brute_force() {
        let ps = random_blobs(3);
        let result = NqDbscan::new(2.0, 5).fit(&ps);
        let brute = (ps.len() * ps.len()) as u64;
        assert!(
            result.stats.distance_computations < brute / 2,
            "{} of {} brute-force distances",
            result.stats.distance_computations,
            brute
        );
    }

    #[test]
    fn higher_dimensional_fallback_is_exact() {
        let mut rng = SplitMix64::new(5);
        let mut ps = PointSet::new(14);
        let mut row = vec![0.0; 14];
        for c in 0..2 {
            for _ in 0..40 {
                for x in row.iter_mut() {
                    *x = c as f64 * 50.0 + rng.next_f64() * 2.0;
                }
                ps.push(&row);
            }
        }
        let exact = Dbscan::new(4.0, 4).fit(&ps);
        let nq = NqDbscan::new(4.0, 4).fit(&ps);
        assert_eq!(exact.clustering, nq.clustering);
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::new(2);
        let result = NqDbscan::new(1.0, 2).fit(&ps);
        assert!(result.clustering.is_empty());
    }
}
