//! FDBSCAN (Zhou et al., Journal of Software 2000).
//!
//! The earliest "query fewer points" DBSCAN variant the paper discusses
//! (§II-C): instead of expanding from *every* neighbor of a core point,
//! FDBSCAN selects a handful of **representative points near the border of
//! the neighborhood, spread in different directions**, and only queries
//! those. The paper's criticisms are visible by construction:
//!
//! * it "lacks accuracy analysis" — a cluster connected only through a
//!   non-representative neighbor fragments, so the output is approximate
//!   with no guarantee;
//! * it "does not consider cluster expansion" — representatives are chosen
//!   per-neighborhood with no model of the growing cluster's shape, so
//!   interior representatives waste queries that DBSVEC's SVDD avoids.
//!
//! Representatives are picked by farthest-point sampling among the
//! neighborhood members: the farthest neighbor first, then greedily the
//! neighbor maximizing the minimum distance to those already chosen —
//! "border points in different directions" without any direction
//! bookkeeping.

use dbsvec_core::labels::{Clustering, WorkingLabels};
use dbsvec_geometry::{PointId, PointSet};
use dbsvec_index::{RStarTree, RangeIndex};

/// Counters for an FDBSCAN run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FDbscanStats {
    /// Range queries issued.
    pub range_queries: u64,
    /// Representatives enqueued across all expansions.
    pub representatives: u64,
}

/// Result of an FDBSCAN run.
#[derive(Clone, Debug)]
pub struct FDbscanResult {
    /// Final labels.
    pub clustering: Clustering,
    /// Cost counters.
    pub stats: FDbscanStats,
}

/// FDBSCAN.
#[derive(Clone, Copy, Debug)]
pub struct FDbscan {
    eps: f64,
    min_pts: usize,
    representatives: usize,
}

impl FDbscan {
    /// Default representatives per neighborhood (2·d is the usual rule of
    /// thumb — one per half-axis — capped by this when d is large).
    pub const DEFAULT_REPRESENTATIVES: usize = 8;

    /// Creates the algorithm with the default representative count.
    ///
    /// # Panics
    ///
    /// Panics unless `eps` is positive and finite and `min_pts >= 1`.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be positive and finite"
        );
        assert!(min_pts >= 1, "MinPts must be at least 1");
        Self {
            eps,
            min_pts,
            representatives: Self::DEFAULT_REPRESENTATIVES,
        }
    }

    /// Overrides how many representatives are queried per neighborhood.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn with_representatives(mut self, count: usize) -> Self {
        assert!(count >= 1, "at least one representative required");
        self.representatives = count;
        self
    }

    /// Clusters `points` over a bulk-loaded R\*-tree.
    pub fn fit(&self, points: &PointSet) -> FDbscanResult {
        let index = RStarTree::build(points);
        self.fit_with_index(points, &index)
    }

    /// Clusters `points` over a caller-provided engine.
    ///
    /// # Panics
    ///
    /// Panics if the index size disagrees with the point set.
    pub fn fit_with_index<I: RangeIndex>(&self, points: &PointSet, index: &I) -> FDbscanResult {
        assert_eq!(index.len(), points.len(), "index must cover the point set");
        let n = points.len();
        let mut labels = WorkingLabels::new(n);
        let mut stats = FDbscanStats::default();
        let mut queried = vec![false; n];
        let mut next_cluster = 0u32;
        let mut queue: Vec<PointId> = Vec::new();
        let mut neighborhood: Vec<PointId> = Vec::new();

        for i in 0..n as u32 {
            if !labels.is_unclassified(i) {
                continue;
            }
            neighborhood.clear();
            index.range(points.point(i), self.eps, &mut neighborhood);
            stats.range_queries += 1;
            queried[i as usize] = true;
            if neighborhood.len() < self.min_pts {
                labels.set_noise(i);
                continue;
            }

            let cid = next_cluster;
            next_cluster += 1;
            labels.set_cluster(i, cid);
            queue.clear();
            self.absorb_and_enqueue(points, i, &neighborhood, cid, &mut labels, &mut queue);
            stats.representatives += queue.len() as u64;

            while let Some(p) = queue.pop() {
                if queried[p as usize] {
                    continue;
                }
                neighborhood.clear();
                index.range(points.point(p), self.eps, &mut neighborhood);
                stats.range_queries += 1;
                queried[p as usize] = true;
                if neighborhood.len() < self.min_pts {
                    continue;
                }
                let before = queue.len();
                self.absorb_and_enqueue(points, p, &neighborhood, cid, &mut labels, &mut queue);
                stats.representatives += (queue.len() - before) as u64;
            }
        }

        FDbscanResult {
            clustering: labels.finalize(|raw| raw),
            stats,
        }
    }

    /// Labels every unclassified/noise neighbor into `cid`, then enqueues
    /// only the representative subset.
    fn absorb_and_enqueue(
        &self,
        points: &PointSet,
        center: PointId,
        neighborhood: &[PointId],
        cid: u32,
        labels: &mut WorkingLabels,
        queue: &mut Vec<PointId>,
    ) {
        let mut fresh: Vec<PointId> = Vec::new();
        for &j in neighborhood {
            if labels.is_unclassified(j) || labels.is_noise(j) {
                labels.set_cluster(j, cid);
                fresh.push(j);
            }
        }
        // Farthest-point sampling among the freshly absorbed neighbors.
        let mut chosen: Vec<PointId> = Vec::new();
        if let Some((first_idx, _)) = fresh
            .iter()
            .enumerate()
            .map(|(k, &j)| (k, points.squared_distance(center, j)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
        {
            chosen.push(fresh.swap_remove(first_idx));
        }
        while chosen.len() < self.representatives && !fresh.is_empty() {
            let (best_idx, _) = fresh
                .iter()
                .enumerate()
                .map(|(k, &j)| {
                    let spread = chosen
                        .iter()
                        .map(|&c| points.squared_distance(c, j))
                        .fold(f64::INFINITY, f64::min);
                    (k, spread)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"))
                .expect("fresh is nonempty");
            chosen.push(fresh.swap_remove(best_idx));
        }
        queue.extend_from_slice(&chosen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::Dbscan;
    use dbsvec_geometry::rng::SplitMix64;

    fn blobs(centers: &[[f64; 2]], per: usize, spread: f64, seed: u64) -> PointSet {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for c in centers {
            for _ in 0..per {
                ps.push(&[
                    c[0] + rng.next_f64() * spread,
                    c[1] + rng.next_f64() * spread,
                ]);
            }
        }
        ps
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let ps = blobs(&[[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]], 80, 5.0, 1);
        let result = FDbscan::new(2.0, 5).fit(&ps);
        assert_eq!(result.clustering.num_clusters(), 3);
        assert_eq!(result.clustering.noise_count(), 0);
    }

    #[test]
    fn issues_fewer_queries_than_dbscan() {
        let ps = blobs(&[[0.0, 0.0]], 500, 8.0, 2);
        let exact = Dbscan::new(2.0, 5).fit(&ps);
        let fast = FDbscan::new(2.0, 5).fit(&ps);
        assert_eq!(exact.stats.range_queries, 500);
        assert!(
            fast.stats.range_queries < exact.stats.range_queries / 2,
            "FDBSCAN used {} queries",
            fast.stats.range_queries
        );
        // Never more clusters lost than DBSCAN found: the blob must remain
        // a single cluster here (representatives cover a convex blob well).
        assert_eq!(fast.clustering.num_clusters(), 1);
    }

    #[test]
    fn representative_count_trades_queries_for_connectivity() {
        let ps = blobs(&[[0.0, 0.0]], 400, 10.0, 3);
        let few = FDbscan::new(1.5, 5).with_representatives(2).fit(&ps);
        let many = FDbscan::new(1.5, 5).with_representatives(16).fit(&ps);
        assert!(few.stats.range_queries <= many.stats.range_queries);
        // More representatives can only improve connectivity.
        assert!(many.clustering.num_clusters() <= few.clustering.num_clusters());
    }

    #[test]
    fn noise_is_still_detected() {
        let mut ps = blobs(&[[0.0, 0.0]], 60, 4.0, 4);
        ps.push(&[500.0, 500.0]);
        let result = FDbscan::new(2.0, 5).fit(&ps);
        assert!(result.clustering.is_noise(60));
    }

    #[test]
    fn deterministic() {
        let ps = blobs(&[[0.0, 0.0], [30.0, 30.0]], 100, 6.0, 5);
        let a = FDbscan::new(2.0, 5).fit(&ps);
        let b = FDbscan::new(2.0, 5).fit(&ps);
        assert_eq!(a.clustering, b.clustering);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn empty_input() {
        let ps = PointSet::new(2);
        let result = FDbscan::new(1.0, 2).fit(&ps);
        assert!(result.clustering.is_empty());
    }
}
