//! Every baseline algorithm of the DBSVEC paper's evaluation (§V-A).
//!
//! | paper name | here | nature |
//! |---|---|---|
//! | R-DBSCAN | [`Dbscan::fit`] (R\*-tree) | exact, the ground truth |
//! | kd-DBSCAN | [`Dbscan::fit_with_index`] + [`dbsvec_index::KdTree`] | exact |
//! | ρ-Approximate | [`RhoApproxDbscan`] | grid-based approximation |
//! | DBSCAN-LSH | [`DbscanLsh`] | hashing-based approximation |
//! | NQ-DBSCAN | [`NqDbscan`] | exact, prunes distance computations |
//! | FDBSCAN | [`FDbscan`] | approximate, representative-point expansion |
//! | k-MEANS | [`KMeans`] | partitioning baseline |
//!
//! Beyond the paper's comparison set, [`ParallelDbscan`] provides exact
//! DBSCAN with multi-threaded range queries — the "parallelizable spatial
//! index" direction the paper points at in §III-D — and [`Hdbscan`]
//! implements HDBSCAN\*, the hierarchical extension behind the paper's
//! reference \[9\], which handles clusters of different densities that no
//! single-ε method can.
//!
//! All of them emit the shared [`dbsvec_core::Clustering`] label type, so
//! `dbsvec-metrics` scores any pair of them interchangeably.

pub mod dbscan;
pub mod dbscan_lsh;
pub mod fdbscan;
pub mod hdbscan;
pub mod kmeans;
pub mod nq_dbscan;
pub mod parallel;
pub mod rho_approx;

pub use dbscan::{Dbscan, DbscanResult, DbscanStats};
pub use dbscan_lsh::{DbscanLsh, DbscanLshResult};
pub use fdbscan::{FDbscan, FDbscanResult, FDbscanStats};
pub use hdbscan::{Hdbscan, HdbscanResult, HdbscanStats};
pub use kmeans::{KMeans, KMeansResult};
pub use nq_dbscan::{NqDbscan, NqDbscanResult, NqDbscanStats};
pub use parallel::{ParallelDbscan, ParallelDbscanResult, ParallelDbscanStats};
pub use rho_approx::{RhoApproxDbscan, RhoApproxResult, RhoApproxStats};
