//! Penalty-factor and kernel-width selection (paper §IV-B.2 and §IV-C).

use dbsvec_geometry::{rng::SplitMix64, PointId, PointSet};

/// The paper's empirical penalty factor (Eq. 20):
///
/// ```text
/// ν* = d · √(log_MinPts ñ) / ñ
/// ```
///
/// `ν ∈ (0, 1]` upper-bounds the fraction of bounded support vectors and
/// lower-bounds the fraction of support vectors (Schölkopf & Smola), so it
/// directly controls how many range queries each expansion round issues.
/// The result is clamped to `[1/ñ, 1]`: below `1/ñ` the dual is infeasible
/// (a single multiplier could not reach `Σα = 1`), and `ν = 1` makes every
/// point a support vector, degenerating DBSVEC to DBSCAN (§IV-C).
///
/// # Panics
///
/// Panics if `target_size == 0` or `min_pts < 2` (the logarithm base must
/// exceed 1).
pub fn optimal_nu(dims: usize, target_size: usize, min_pts: usize) -> f64 {
    assert!(target_size > 0, "target set must be nonempty");
    assert!(
        min_pts >= 2,
        "MinPts must be at least 2 to serve as a log base"
    );
    let n = target_size as f64;
    let log_mp = n.ln() / (min_pts as f64).ln();
    let nu = dims as f64 * log_mp.max(0.0).sqrt() / n;
    nu.clamp(1.0 / n, 1.0)
}

/// The minimal penalty factor `ν = 1/ñ` used by the paper's `DBSVEC_min`
/// variant (Table III).
pub fn minimal_nu(target_size: usize) -> f64 {
    assert!(target_size > 0, "target set must be nonempty");
    1.0 / target_size as f64
}

/// Converts ν to the box penalty `C = 1/(ν·ñ)` (paper §IV-C).
pub fn nu_to_c(nu: f64, target_size: usize) -> f64 {
    assert!(nu > 0.0 && nu.is_finite(), "nu must be positive, got {nu}");
    assert!(target_size > 0, "target set must be nonempty");
    1.0 / (nu * target_size as f64)
}

/// How the Gaussian kernel width σ is chosen for each SVDD training.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KernelWidthStrategy {
    /// The paper's rule: `σ = r/√2` where `r` is the distance from the
    /// target-set centroid to its farthest member (§IV-B.2, Eq. 19).
    CenterRadius,
    /// A fixed width, for experiments that sweep σ explicitly.
    Fixed(f64),
    /// A width drawn uniformly from `[min‖x_i−x_j‖, max‖x_i−x_j‖]` — the
    /// paper's `DBSVEC\OK` ablation (Fig. 9b). Deterministic per seed.
    RandomRange { seed: u64 },
}

impl KernelWidthStrategy {
    /// Resolves the strategy to a concrete σ for one target set.
    ///
    /// Always returns a positive, finite width; degenerate targets (all
    /// points identical) fall back to 1.0, where the kernel is constant and
    /// any width is equivalent.
    pub fn resolve(&self, points: &PointSet, ids: &[PointId]) -> f64 {
        match *self {
            KernelWidthStrategy::CenterRadius => kernel_width_center_radius(points, ids),
            KernelWidthStrategy::Fixed(sigma) => {
                assert!(
                    sigma.is_finite() && sigma > 0.0,
                    "fixed width must be positive"
                );
                sigma
            }
            KernelWidthStrategy::RandomRange { seed } => random_range_width(points, ids, seed),
        }
    }
}

/// The paper's kernel width rule `σ = r/√2` (Eq. 19).
///
/// `r` is the Euclidean distance from the centroid of the target points to
/// the farthest target point. Returns 1.0 for degenerate targets.
pub fn kernel_width_center_radius(points: &PointSet, ids: &[PointId]) -> f64 {
    if ids.is_empty() {
        return 1.0;
    }
    let dims = points.dims();
    let mut center = vec![0.0; dims];
    for &id in ids {
        for (c, &x) in center.iter_mut().zip(points.point(id)) {
            *c += x;
        }
    }
    for c in &mut center {
        *c /= ids.len() as f64;
    }
    let r_sq = ids
        .iter()
        .map(|&id| dbsvec_geometry::squared_euclidean(points.point(id), &center))
        .fold(0.0, f64::max);
    let sigma = (r_sq.sqrt()) / std::f64::consts::SQRT_2;
    if sigma > 0.0 {
        sigma
    } else {
        1.0
    }
}

/// Width drawn uniformly from the pairwise-distance range (the `DBSVEC\OK`
/// ablation). O(ñ²); only used by the Fig. 9b experiment.
fn random_range_width(points: &PointSet, ids: &[PointId], seed: u64) -> f64 {
    if ids.len() < 2 {
        return 1.0;
    }
    let mut min_d = f64::INFINITY;
    let mut max_d: f64 = 0.0;
    for (a, &ia) in ids.iter().enumerate() {
        for &ib in &ids[a + 1..] {
            let d = points.distance(ia, ib);
            if d > 0.0 && d < min_d {
                min_d = d;
            }
            max_d = max_d.max(d);
        }
    }
    if !min_d.is_finite() || max_d <= 0.0 {
        return 1.0;
    }
    let mut rng = SplitMix64::new(seed ^ ids.len() as u64);
    let sigma = min_d + (max_d - min_d) * rng.next_f64();
    sigma.max(f64::MIN_POSITIVE.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_nu_matches_formula() {
        // d=2, ñ=100, MinPts=10: log_10(100)=2, ν = 2·√2/100.
        let nu = optimal_nu(2, 100, 10);
        assert!((nu - 2.0 * 2.0f64.sqrt() / 100.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_nu_is_clamped_to_unit() {
        // Very high dimensionality would push ν above 1.
        assert_eq!(optimal_nu(1000, 10, 2), 1.0);
    }

    #[test]
    fn optimal_nu_never_below_one_over_n() {
        // ñ = MinPts makes log = 1; tiny d keeps ν small.
        let nu = optimal_nu(1, 1_000_000, 100);
        assert!(nu >= 1.0 / 1_000_000.0);
    }

    #[test]
    fn minimal_nu_and_c() {
        assert_eq!(minimal_nu(50), 0.02);
        // C = 1/(ν·ñ): with ν = 1/ñ, C = 1 (every α may reach 1).
        assert!((nu_to_c(minimal_nu(50), 50) - 1.0).abs() < 1e-12);
        // With ν = 1, C = 1/ñ (all points must share the mass equally).
        assert!((nu_to_c(1.0, 50) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn center_radius_width_on_unit_circle() {
        // Points on a unit circle: centroid ≈ origin, r ≈ 1, σ ≈ 1/√2.
        let mut ps = PointSet::new(2);
        for i in 0..64 {
            let a = i as f64 / 64.0 * std::f64::consts::TAU;
            ps.push(&[a.cos(), a.sin()]);
        }
        let ids: Vec<PointId> = (0..64).collect();
        let sigma = kernel_width_center_radius(&ps, &ids);
        assert!((sigma - 1.0 / 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn degenerate_targets_fall_back_to_unit_width() {
        let ps = PointSet::from_rows(&vec![vec![3.0, 3.0]; 5]);
        let ids: Vec<PointId> = (0..5).collect();
        assert_eq!(kernel_width_center_radius(&ps, &ids), 1.0);
        assert_eq!(
            KernelWidthStrategy::RandomRange { seed: 1 }.resolve(&ps, &ids),
            1.0
        );
    }

    #[test]
    fn random_range_is_within_pairwise_distances_and_deterministic() {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![5.0]]);
        let ids: Vec<PointId> = (0..3).collect();
        let s1 = KernelWidthStrategy::RandomRange { seed: 9 }.resolve(&ps, &ids);
        let s2 = KernelWidthStrategy::RandomRange { seed: 9 }.resolve(&ps, &ids);
        assert_eq!(s1, s2);
        assert!((1.0..=5.0).contains(&s1));
    }

    #[test]
    fn fixed_strategy_returns_its_value() {
        let ps = PointSet::from_rows(&[vec![0.0]]);
        assert_eq!(KernelWidthStrategy::Fixed(2.5).resolve(&ps, &[0]), 2.5);
    }

    #[test]
    #[should_panic(expected = "MinPts must be at least 2")]
    fn optimal_nu_rejects_minpts_one() {
        let _ = optimal_nu(2, 100, 1);
    }
}
