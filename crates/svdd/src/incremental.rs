//! Incremental learning for repeated SVDD training (paper §IV-B.1).
//!
//! During support vector expansion the same sub-cluster is described by
//! SVDD over and over as it grows. Points that have already participated in
//! several trainings contribute little to the next model but dominate its
//! cost, so DBSVEC bounds participation with a *learning threshold* `T`:
//! every target point carries a counter `t_i`, incremented after each
//! training, and points with `t_i > T` are evicted from the target set.
//!
//! The counters do double duty: they are the `t_i` of the penalty-weight
//! formula (Eq. 7), which is why this type hands them out alongside the ids.
//!
//! [`SolverSession`] is the other half of the incremental story: it carries
//! the solver state worth keeping *between* trainings of the same
//! sub-cluster — the previous round's multipliers (for warm starts) and the
//! σ-invariant squared-distance row cache.

use dbsvec_geometry::PointId;

use crate::cache::{DistCacheStats, DistanceRowCache};

/// The paper's recommended learning threshold (`T = 3`, §IV-B.1: values in
/// 2–4 improve efficiency with negligible accuracy impact).
pub const DEFAULT_LEARNING_THRESHOLD: u32 = 3;

/// Cross-round solver state for repeated SVDD trainings of one sub-cluster.
///
/// A session owns two things that stay valid while the kernel width σ and
/// the per-point box constraints change every round:
///
/// * the **squared-distance row cache** — distances don't depend on σ, so
///   rows computed in round `k` serve round `k+1` unchanged;
/// * the **last multipliers** per [`PointId`] — the warm-start seed. The
///   solver projects them into the new box `[0, ω_i C]` and repairs
///   `Σα = 1` before iterating.
///
/// Attach one to a [`crate::SvddProblem`] with
/// [`crate::SvddProblem::with_session`]; without one the solver behaves as
/// a cold, single-shot solve.
#[derive(Debug)]
pub struct SolverSession {
    pub(crate) cache: DistanceRowCache,
    /// Last solved α per universe slot (aligned with the cache's universe).
    pub(crate) alpha: Vec<f64>,
    /// Completed solves in this session.
    pub(crate) solves: usize,
}

impl SolverSession {
    /// Creates an empty session (first solve through it is a cold start).
    pub fn new() -> Self {
        Self {
            cache: DistanceRowCache::new(2),
            alpha: Vec::new(),
            solves: 0,
        }
    }

    /// Completed solves through this session.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Cumulative distance-row cache counters across all solves.
    pub fn cache_stats(&self) -> DistCacheStats {
        self.cache.stats()
    }
}

impl Default for SolverSession {
    fn default() -> Self {
        Self::new()
    }
}

/// The evolving SVDD target set of one expanding sub-cluster.
#[derive(Clone, Debug)]
pub struct IncrementalTarget {
    ids: Vec<PointId>,
    counts: Vec<u32>,
    threshold: u32,
    /// Total points ever evicted (diagnostic).
    evicted: usize,
}

impl IncrementalTarget {
    /// Creates an empty target set with eviction threshold `T = threshold`.
    pub fn new(threshold: u32) -> Self {
        Self {
            ids: Vec::new(),
            counts: Vec::new(),
            threshold,
            evicted: 0,
        }
    }

    /// Adds newly discovered sub-cluster members with `t_i = 0`.
    pub fn add_new(&mut self, new_ids: &[PointId]) {
        self.ids.extend_from_slice(new_ids);
        self.counts.resize(self.ids.len(), 0);
    }

    /// Ids currently eligible for SVDD training.
    pub fn ids(&self) -> &[PointId] {
        &self.ids
    }

    /// Training-participation counters, aligned with [`IncrementalTarget::ids`].
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Current target-set size ñ.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no points remain eligible.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total points evicted so far.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Call once after each SVDD training: increments every counter and
    /// evicts points whose count exceeds the threshold.
    pub fn after_training(&mut self) {
        let mut write = 0;
        for read in 0..self.ids.len() {
            let c = self.counts[read] + 1;
            if c <= self.threshold {
                self.ids[write] = self.ids[read];
                self.counts[write] = c;
                write += 1;
            } else {
                self.evicted += 1;
            }
        }
        self.ids.truncate(write);
        self.counts.truncate(write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_points_start_at_zero() {
        let mut t = IncrementalTarget::new(3);
        t.add_new(&[5, 6, 7]);
        assert_eq!(t.ids(), &[5, 6, 7]);
        assert_eq!(t.counts(), &[0, 0, 0]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn eviction_after_threshold_trainings() {
        let mut t = IncrementalTarget::new(2);
        t.add_new(&[1, 2]);
        t.after_training(); // counts 1
        t.after_training(); // counts 2 (== T, retained)
        assert_eq!(t.len(), 2);
        t.after_training(); // counts 3 (> T, evicted)
        assert!(t.is_empty());
        assert_eq!(t.evicted(), 2);
    }

    #[test]
    fn staggered_arrivals_age_independently() {
        let mut t = IncrementalTarget::new(1);
        t.add_new(&[10]);
        t.after_training(); // 10 -> count 1
        t.add_new(&[20]);
        assert_eq!(t.counts(), &[1, 0]);
        t.after_training(); // 10 -> 2 (evicted), 20 -> 1
        assert_eq!(t.ids(), &[20]);
        assert_eq!(t.counts(), &[1]);
    }

    #[test]
    fn threshold_zero_keeps_only_fresh_points() {
        // T = 0 means "train on newly added points only" (paper §IV-B.1).
        let mut t = IncrementalTarget::new(0);
        t.add_new(&[1, 2, 3]);
        t.after_training();
        assert!(t.is_empty());
        t.add_new(&[4]);
        assert_eq!(t.ids(), &[4]);
    }

    #[test]
    fn order_is_preserved_under_compaction() {
        let mut t = IncrementalTarget::new(5);
        t.add_new(&[3, 1, 4, 1, 5]);
        t.after_training();
        assert_eq!(t.ids(), &[3, 1, 4, 1, 5]);
    }
}
