//! Weighted Support Vector Domain Description (SVDD) trained by a
//! from-scratch SMO solver.
//!
//! SVDD (Tax & Duin 1999) finds the minimum hypersphere — in a Gaussian
//! kernel feature space — that encloses all or most of a target point set.
//! The points with nonzero Lagrange multipliers are the *support vectors*
//! and lie on or outside the sphere, i.e. on the boundary of the data.
//! DBSVEC (ICDE 2019) exploits exactly this: it expands a growing
//! sub-cluster by running range queries only on the support vectors of the
//! sub-cluster.
//!
//! This crate implements the paper's *improved* SVDD (§IV):
//!
//! * the **adaptively weighted dual** (Eq. 11): per-point box constraints
//!   `0 <= α_i <= ω_i C` where the penalty weight `ω_i` (Eq. 7, computed in
//!   [`weights`]) favours newly added and far-from-center points as support
//!   vectors;
//! * **Sequential Minimal Optimization** ([`smo`]): pairwise multiplier
//!   updates under the simplex constraint `Σ α_i = 1`, first-order working
//!   set selection by maximum KKT violation, active-set shrinking with a
//!   full KKT re-scan before convergence, and a σ-invariant LRU
//!   squared-distance row cache ([`cache`]);
//! * **incremental learning** ([`incremental`]): a learning threshold `T`
//!   bounds how many trainings a point participates in, keeping the target
//!   set — and hence each SMO solve — small, and a cross-round
//!   [`SolverSession`] warm-starts each solve from the previous round's
//!   multipliers;
//! * **kernel width selection** ([`params`]): `σ = r/√2` for target radius
//!   `r`, the lower bound derived in the paper's Eq. 19 that avoids the
//!   "crater" overfitting regime, plus the penalty factor rule
//!   `ν* = d·√(log_MinPts ñ)/ñ` (Eq. 20).
//!
//! ```
//! use dbsvec_geometry::PointSet;
//! use dbsvec_svdd::{GaussianKernel, SvddProblem};
//!
//! // A ring of points: every point is on the boundary.
//! let mut ps = PointSet::new(2);
//! for i in 0..32 {
//!     let a = i as f64 / 32.0 * std::f64::consts::TAU;
//!     ps.push(&[a.cos(), a.sin()]);
//! }
//! let ids: Vec<u32> = (0..32).collect();
//! let kernel = GaussianKernel::from_width(1.0);
//! let model = SvddProblem::new(&ps, &ids, kernel).with_nu(0.5).solve();
//! assert!(!model.support_vectors().is_empty());
//! // The center of the ring is inside the described domain.
//! assert!(model.decision(&ps, &[0.0, 0.0]) <= model.radius_sq() + 1e-6);
//! ```

pub mod cache;
pub mod contour;
pub mod incremental;
pub mod kernel;
pub mod model;
pub mod params;
pub mod smo;
pub mod weights;

pub use cache::{DistCacheStats, DistanceRowCache};
pub use contour::{decision_boundary_2d, decision_boundary_around_targets, Segment};
pub use incremental::{IncrementalTarget, SolverSession, DEFAULT_LEARNING_THRESHOLD};
pub use kernel::GaussianKernel;
pub use model::{SolveDiagnostics, SvType, SvddModel};
pub use params::{kernel_width_center_radius, optimal_nu, KernelWidthStrategy};
pub use smo::{SmoOptions, SvddProblem};
pub use weights::{centroid_distances, kernel_distances, penalty_weights, WeightOptions};
