//! LRU cache of **squared-distance** rows, shared across SVDD trainings.
//!
//! SMO touches two kernel rows per iteration (the working pair) and
//! revisits the same small set of "active" rows many times before the
//! working set drifts. Materializing the full `ñ × ñ` Gram matrix would be
//! quadratic in memory, so — like libsvm, on which the paper's
//! implementation is based — we cache complete rows with LRU eviction and
//! recompute on miss.
//!
//! Unlike libsvm this cache does **not** store kernel values. DBSVEC
//! recomputes the kernel width `σ = r/√2` from the sub-cluster radius
//! before every expansion round, so a cached Gaussian value
//! `exp(−d²/2σ²)` is stale the moment σ moves. The squared distance `d²`
//! is σ-invariant, so the cache stores distance rows and the solver
//! applies [`GaussianKernel::eval_sq_dist`] on read — one `exp` per
//! active entry, against O(d) multiply-adds for a recomputed distance.
//! That is what lets one cache outlive every training of a sub-cluster.
//!
//! Rows are keyed by [`PointId`] through an append-only **universe**: the
//! first time an id is registered it receives a dense universe index that
//! never changes, even as the incremental target set evicts and re-orders
//! points between rounds. A resident row covers a prefix of the universe;
//! when later registrations grow the universe, the row is *extended* in
//! place (only the new tail columns are computed) instead of being thrown
//! away.

use std::collections::HashMap;

use dbsvec_geometry::{squared_euclidean, PointId, PointSet};

use crate::kernel::GaussianKernel;

/// Counters describing one cache's lifetime (across every solve that
/// shared it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistCacheStats {
    /// Row requests served from a resident row.
    pub hits: u64,
    /// Row requests that computed the row from scratch.
    pub misses: u64,
    /// Resident rows dropped to make room (LRU order).
    pub evictions: u64,
    /// Resident rows whose tail was recomputed after the universe grew
    /// (each such request also counts as a hit).
    pub extensions: u64,
}

/// Cached squared-distance rows `D[u][v] = ‖x_{ids[u]} − x_{ids[v]}‖²`
/// over the append-only universe of registered point ids.
#[derive(Debug)]
pub struct DistanceRowCache {
    /// `ids[u]` is the point behind universe index `u` (append-only).
    ids: Vec<PointId>,
    /// Inverse of `ids`. Iteration order is never used, so the map's
    /// nondeterministic layout cannot leak into results.
    index_of: HashMap<PointId, usize>,
    /// `slots[u]` holds row `u` when resident; a row may be shorter than
    /// the universe (computed before later registrations) and is extended
    /// on first use.
    slots: Vec<Option<Vec<f64>>>,
    /// Resident row indices in LRU order (front = oldest).
    lru: Vec<usize>,
    capacity_rows: usize,
    stats: DistCacheStats,
}

impl DistanceRowCache {
    /// Creates a cache holding at most `capacity_rows` rows (at least 2,
    /// the SMO working-pair size).
    pub fn new(capacity_rows: usize) -> Self {
        Self {
            ids: Vec::new(),
            index_of: HashMap::new(),
            slots: Vec::new(),
            lru: Vec::new(),
            capacity_rows: capacity_rows.max(2),
            stats: DistCacheStats::default(),
        }
    }

    /// Raises the row capacity to at least `capacity_rows`. Capacity only
    /// grows — an incremental target that shrank between rounds keeps the
    /// larger budget, so earlier rows stay reusable.
    pub fn ensure_capacity(&mut self, capacity_rows: usize) {
        self.capacity_rows = self.capacity_rows.max(capacity_rows);
    }

    /// Registers `target_ids` (appending unseen ids to the universe) and
    /// returns the universe index of each target position. Duplicate ids
    /// map to the same universe index.
    pub fn register(&mut self, target_ids: &[PointId]) -> Vec<usize> {
        target_ids
            .iter()
            .map(|&id| match self.index_of.get(&id) {
                Some(&u) => u,
                None => {
                    let u = self.ids.len();
                    self.ids.push(id);
                    self.index_of.insert(id, u);
                    self.slots.push(None);
                    u
                }
            })
            .collect()
    }

    /// Number of distinct ids ever registered.
    pub fn universe_len(&self) -> usize {
        self.ids.len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DistCacheStats {
        self.stats
    }

    /// Returns row `u` (full universe width), computing, extending, or
    /// caching it as needed.
    pub fn row(&mut self, points: &PointSet, u: usize) -> &[f64] {
        self.ensure_row(points, u);
        self.slots[u].as_deref().expect("row just ensured resident")
    }

    /// A single squared distance, bypassing the cache when neither row is
    /// resident. Resident rows are only consulted up to their computed
    /// length, so a stale (short) row never yields a wrong value.
    pub fn sq_dist(&self, points: &PointSet, u: usize, v: usize) -> f64 {
        if let Some(row) = &self.slots[u] {
            if v < row.len() {
                return row[v];
            }
        }
        if let Some(row) = &self.slots[v] {
            if u < row.len() {
                return row[u];
            }
        }
        squared_euclidean(points.point(self.ids[u]), points.point(self.ids[v]))
    }

    /// Visits the rows at `requests` in order, computing the missing ones
    /// across `threads` scoped worker threads first (per-thread shards,
    /// merged back into this cache). The callback receives the *position*
    /// within `requests` plus the full-width row.
    ///
    /// The hit/miss/eviction/extension counters, LRU transitions, and row
    /// values are **bit identical** to calling [`DistanceRowCache::row`]
    /// once per request in the same order: the shards only pre-compute
    /// values (each row is a pure function of the immutable point set),
    /// while all accounting is replayed sequentially in request order — a
    /// repeated index scores a hit on its second visit, and a shard row
    /// whose slot was evicted again before a later revisit is recomputed
    /// as a fresh miss, exactly as the sequential path would. Short
    /// resident rows are extended during the replay (the tail is O(new·d),
    /// too small to farm out). `threads <= 1` takes the sequential path
    /// outright.
    pub fn for_rows(
        &mut self,
        points: &PointSet,
        requests: &[usize],
        threads: usize,
        mut f: impl FnMut(usize, &[f64]),
    ) {
        if threads <= 1 || requests.len() < 2 {
            for (pos, &u) in requests.iter().enumerate() {
                self.ensure_row(points, u);
                f(pos, self.slots[u].as_deref().expect("row resident"));
            }
            return;
        }

        // Distinct absent rows, in first-occurrence order.
        let mut queued = vec![false; self.universe_len()];
        let mut missing: Vec<usize> = Vec::new();
        for &u in requests {
            if self.slots[u].is_none() && !queued[u] {
                queued[u] = true;
                missing.push(u);
            }
        }

        let mut shard: Vec<Option<Vec<f64>>> = (0..self.universe_len()).map(|_| None).collect();
        if missing.len() >= 2 {
            let workers = threads.min(missing.len());
            let chunk = missing.len().div_ceil(workers);
            let ids = &self.ids;
            let computed: Vec<Vec<(usize, Vec<f64>)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = missing
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|&u| (u, dist_row(points, ids, u, 0)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("distance-row worker panicked"))
                    .collect()
            });
            for (u, row) in computed.into_iter().flatten() {
                shard[u] = Some(row);
            }
        }

        // Sequential replay of the accounting, in request order.
        for (pos, &u) in requests.iter().enumerate() {
            if self.slots[u].is_some() {
                self.hit(points, u);
            } else {
                self.stats.misses += 1;
                let row = shard[u]
                    .take()
                    .unwrap_or_else(|| dist_row(points, &self.ids, u, 0));
                self.insert_row(u, row);
            }
            f(
                pos,
                self.slots[u].as_deref().expect("row resident after replay"),
            );
        }
    }

    /// Fetches the SMO working pair `(u, v)`, computing both rows
    /// concurrently when `parallel` is set and neither is resident.
    ///
    /// Row `u` comes back as an owned copy (the gradient update needs both
    /// rows at once, and the cache hands out overlapping borrows).
    /// Accounting and LRU state match two sequential
    /// [`DistanceRowCache::row`] calls exactly; the capacity floor of 2
    /// keeps the pair resident together.
    pub fn pair_rows(
        &mut self,
        points: &PointSet,
        u: usize,
        v: usize,
        parallel: bool,
    ) -> (Vec<f64>, &[f64]) {
        if parallel && u != v && self.slots[u].is_none() && self.slots[v].is_none() {
            let ids = &self.ids;
            let (row_u, row_v) = std::thread::scope(|scope| {
                let handle = scope.spawn(move || dist_row(points, ids, u, 0));
                let row_v = dist_row(points, ids, v, 0);
                (handle.join().expect("distance-row worker panicked"), row_v)
            });
            self.stats.misses += 1;
            self.insert_row(u, row_u);
            self.stats.misses += 1;
            self.insert_row(v, row_v);
            let row_u = self.slots[u]
                .as_deref()
                .expect("pair row survives one insertion (capacity >= 2)")
                .to_vec();
            (row_u, self.slots[v].as_deref().expect("row just inserted"))
        } else {
            let row_u = self.row(points, u).to_vec();
            (row_u, self.row(points, v))
        }
    }

    /// Makes row `u` resident at full universe width, with accounting.
    fn ensure_row(&mut self, points: &PointSet, u: usize) {
        if self.slots[u].is_some() {
            self.hit(points, u);
        } else {
            self.stats.misses += 1;
            let row = dist_row(points, &self.ids, u, 0);
            self.insert_row(u, row);
        }
    }

    /// Accounts a hit on resident row `u`, extending a short row first.
    fn hit(&mut self, points: &PointSet, u: usize) {
        let have = self.slots[u].as_ref().map_or(0, Vec::len);
        if have < self.universe_len() {
            let tail = dist_row(points, &self.ids, u, have);
            self.slots[u]
                .as_mut()
                .expect("hit on resident row")
                .extend(tail);
            self.stats.extensions += 1;
        }
        self.stats.hits += 1;
        self.touch(u);
    }

    fn insert_row(&mut self, u: usize, row: Vec<f64>) {
        if self.lru.len() >= self.capacity_rows {
            let evict = self.lru.remove(0);
            self.slots[evict] = None;
            self.stats.evictions += 1;
        }
        self.slots[u] = Some(row);
        self.lru.push(u);
    }

    fn touch(&mut self, u: usize) {
        if let Some(pos) = self.lru.iter().position(|&x| x == u) {
            self.lru.remove(pos);
            self.lru.push(u);
        }
    }
}

/// The squared-distance row columns `from..` for universe index `u` — a
/// pure function of the immutable point set and universe, shared by the
/// cached, extension, and parallel shard paths so all produce bit-identical
/// values. `from = 0` computes the whole row.
fn dist_row(points: &PointSet, ids: &[PointId], u: usize, from: usize) -> Vec<f64> {
    let pu = points.point(ids[u]);
    ids[from..]
        .iter()
        .map(|&id| squared_euclidean(pu, points.point(id)))
        .collect()
}

/// Materializes the Gaussian kernel over a cached distance row into
/// `out[t] = exp(−γ·row[uidx[t]])` — the on-read σ application that keeps
/// the cache itself σ-invariant.
pub fn kernel_row_into(kernel: GaussianKernel, row: &[f64], uidx: &[usize], out: &mut [f64]) {
    debug_assert_eq!(uidx.len(), out.len());
    for (o, &u) in out.iter_mut().zip(uidx) {
        *o = kernel.eval_sq_dist(row[u]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbsvec_geometry::rng::SplitMix64;

    fn setup() -> (PointSet, Vec<PointId>) {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let ids = vec![0, 1, 2, 3];
        (ps, ids)
    }

    #[test]
    fn rows_match_direct_evaluation() {
        let (ps, ids) = setup();
        let mut cache = DistanceRowCache::new(4);
        let uidx = cache.register(&ids);
        for &u in &uidx {
            let row = cache.row(&ps, u).to_vec();
            for (v, &d) in row.iter().enumerate() {
                let want = squared_euclidean(ps.point(ids[u]), ps.point(ids[v]));
                assert!((d - want).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn lru_eviction_keeps_capacity_and_counts() {
        let (ps, ids) = setup();
        let mut cache = DistanceRowCache::new(2);
        cache.register(&ids);
        cache.row(&ps, 0);
        cache.row(&ps, 1);
        cache.row(&ps, 2); // evicts 0
        assert!(cache.slots[0].is_none());
        assert!(cache.slots[1].is_some());
        assert!(cache.slots[2].is_some());
        assert_eq!(cache.stats().evictions, 1);
        // Touch 1, then insert 3: 2 must be evicted, not 1.
        cache.row(&ps, 1);
        cache.row(&ps, 3);
        assert!(cache.slots[1].is_some());
        assert!(cache.slots[2].is_none());
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn hit_and_miss_counters() {
        let (ps, ids) = setup();
        let mut cache = DistanceRowCache::new(4);
        cache.register(&ids);
        cache.row(&ps, 0);
        cache.row(&ps, 0);
        cache.row(&ps, 1);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.extensions, 0);
    }

    #[test]
    fn sq_dist_works_without_resident_rows() {
        let (ps, ids) = setup();
        let mut cache = DistanceRowCache::new(2);
        cache.register(&ids);
        let d = cache.sq_dist(&ps, 0, 3);
        assert!((d - 9.0).abs() < 1e-15);
        assert_eq!(cache.stats(), DistCacheStats::default());
    }

    #[test]
    fn registration_is_append_only_and_dedups() {
        let mut cache = DistanceRowCache::new(4);
        let a = cache.register(&[10, 20, 30]);
        assert_eq!(a, vec![0, 1, 2]);
        // Re-registering (with a duplicate and a newcomer, reordered)
        // keeps the old indices and appends only the newcomer.
        let b = cache.register(&[30, 40, 10, 30]);
        assert_eq!(b, vec![2, 3, 0, 2]);
        assert_eq!(cache.universe_len(), 4);
    }

    #[test]
    fn short_rows_extend_after_universe_growth() {
        let mut ps = PointSet::new(1);
        for i in 0..6 {
            ps.push(&[i as f64]);
        }
        let mut cache = DistanceRowCache::new(4);
        cache.register(&[0, 1, 2]);
        assert_eq!(cache.row(&ps, 0).len(), 3);
        cache.register(&[3, 4, 5]);
        // The resident row is short; the next read extends it in place.
        let row = cache.row(&ps, 0).to_vec();
        assert_eq!(row.len(), 6);
        for (v, &d) in row.iter().enumerate() {
            assert!((d - (v as f64).powi(2)).abs() < 1e-15, "column {v}");
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.extensions), (1, 1, 1));
    }

    /// The satellite property: a cached distance row with the kernel
    /// applied on read matches direct `kernel.rs` evaluation to ≤ 1e-15,
    /// across random widths, dimensions, and eviction pressure — i.e. the
    /// σ-invariant cache can serve *any* σ without error.
    #[test]
    fn kernel_on_read_matches_direct_evaluation_under_pressure() {
        let mut rng = SplitMix64::new(0xCAC4E);
        for trial in 0..24 {
            let d = 1 + rng.next_below(6) as usize;
            let n = 3 + rng.next_below(20) as usize;
            let rows: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..d).map(|_| rng.next_f64_range(-40.0, 40.0)).collect())
                .collect();
            let ps = PointSet::from_rows(&rows);
            let ids: Vec<PointId> = (0..n as u32).collect();
            let capacity = 2 + rng.next_below(4) as usize; // heavy eviction
            let mut cache = DistanceRowCache::new(capacity);
            let uidx = cache.register(&ids);
            // Several σ regimes against the same resident/evicted rows.
            for _ in 0..3 {
                let sigma = rng.next_f64_range(0.05, 50.0);
                let kernel = GaussianKernel::from_width(sigma);
                let mut out = vec![0.0; n];
                for _ in 0..8 {
                    let t = rng.next_below(n as u64) as usize;
                    let row = cache.row(&ps, uidx[t]).to_vec();
                    kernel_row_into(kernel, &row, &uidx, &mut out);
                    for (j, &got) in out.iter().enumerate() {
                        let want = kernel.eval(ps.point(ids[t]), ps.point(ids[j]));
                        assert!(
                            (got - want).abs() <= 1e-15,
                            "trial {trial}: σ={sigma} K[{t}][{j}] {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    /// Delivered `(position, row)` pairs, stats, and final slot residency
    /// of one request sequence — everything the parallel shard merge must
    /// reproduce.
    type OracleState = (
        Vec<(usize, Vec<f64>)>,
        DistCacheStats,
        Vec<Option<Vec<f64>>>,
    );

    /// Mirror of a request sequence through `row()` — the sequential
    /// oracle the parallel shard merge must reproduce exactly. The
    /// `grow_at` hook registers extra ids mid-stream so extension
    /// accounting is exercised too.
    fn sequential_oracle(
        ps: &PointSet,
        ids: &[PointId],
        capacity: usize,
        requests: &[usize],
    ) -> OracleState {
        let mut cache = DistanceRowCache::new(capacity);
        cache.register(ids);
        let mut seen = Vec::new();
        for (pos, &u) in requests.iter().enumerate() {
            seen.push((pos, cache.row(ps, u).to_vec()));
        }
        let slots = cache.slots.clone();
        (seen, cache.stats(), slots)
    }

    #[test]
    fn for_rows_shard_merge_equals_sequential_cache() {
        let mut ps = PointSet::new(2);
        for i in 0..12 {
            ps.push(&[i as f64 * 0.7, (i % 5) as f64]);
        }
        let ids: Vec<PointId> = (0..12).collect();
        // Repeats, revisits after eviction, and an undersized capacity all
        // in one request stream.
        let requests = [0usize, 1, 2, 0, 3, 4, 5, 1, 6, 7, 0, 8, 9, 10, 11, 2, 2];
        for capacity in [2, 3, 8, 16] {
            let (want_rows, want_stats, want_slots) =
                sequential_oracle(&ps, &ids, capacity, &requests);
            for threads in [2, 3, 8] {
                let mut cache = DistanceRowCache::new(capacity);
                cache.register(&ids);
                let mut got_rows = Vec::new();
                cache.for_rows(&ps, &requests, threads, |pos, row| {
                    got_rows.push((pos, row.to_vec()))
                });
                assert_eq!(got_rows, want_rows, "cap={capacity} threads={threads}");
                assert_eq!(
                    cache.stats(),
                    want_stats,
                    "cap={capacity} threads={threads}"
                );
                assert_eq!(cache.slots, want_slots, "cap={capacity} threads={threads}");
                // No duplicate resident rows: the LRU list is a set.
                let mut lru = cache.lru.clone();
                lru.sort_unstable();
                lru.dedup();
                assert_eq!(lru.len(), cache.lru.len(), "duplicate rows in LRU");
            }
        }
    }

    #[test]
    fn for_rows_counters_thread_invariant_across_universe_growth() {
        // Sequential oracle with a mid-life universe growth, then the same
        // (post-growth) request stream through the parallel path: the
        // hit/miss/eviction/extension counters must not move.
        let mut ps = PointSet::new(2);
        for i in 0..10 {
            ps.push(&[i as f64, (i * i % 7) as f64]);
        }
        let first: Vec<PointId> = (0..6).collect();
        let later: Vec<PointId> = (6..10).collect();
        let warmup = [0usize, 1, 2, 3];
        // Touch the short row 1 before eviction pressure pushes it out, so
        // the stream exercises the lazy tail extension.
        let requests = [1usize, 6, 2, 7, 0, 8, 9, 2, 0];
        let run = |threads: usize| -> (Vec<(usize, Vec<f64>)>, DistCacheStats) {
            let mut cache = DistanceRowCache::new(3);
            cache.register(&first);
            for &u in &warmup {
                cache.row(&ps, u);
            }
            cache.register(&later);
            let mut rows = Vec::new();
            cache.for_rows(&ps, &requests, threads, |pos, row| {
                rows.push((pos, row.to_vec()))
            });
            (rows, cache.stats())
        };
        let (want_rows, want_stats) = run(1);
        assert!(want_stats.extensions > 0, "growth must force extensions");
        assert!(want_stats.evictions > 0, "capacity 3 must force evictions");
        for threads in [2, 3, 8] {
            let (rows, stats) = run(threads);
            assert_eq!(rows, want_rows, "threads={threads}");
            assert_eq!(stats, want_stats, "threads={threads}");
        }
    }

    #[test]
    fn for_rows_sequential_path_is_plain_row_calls() {
        let (ps, ids) = setup();
        let requests = [0usize, 1, 0, 2, 3, 1];
        let (want_rows, want_stats, _) = sequential_oracle(&ps, &ids, 2, &requests);
        let mut cache = DistanceRowCache::new(2);
        cache.register(&ids);
        let mut got = Vec::new();
        cache.for_rows(&ps, &requests, 1, |pos, row| got.push((pos, row.to_vec())));
        assert_eq!(got, want_rows);
        assert_eq!(cache.stats(), want_stats);
    }

    #[test]
    fn pair_rows_parallel_matches_sequential() {
        let mut ps = PointSet::new(1);
        for i in 0..6 {
            ps.push(&[i as f64]);
        }
        let ids: Vec<PointId> = (0..6).collect();

        let mut seq = DistanceRowCache::new(2);
        seq.register(&ids);
        let want_u = seq.row(&ps, 4).to_vec();
        let want_v = seq.row(&ps, 5).to_vec();
        let want_stats = seq.stats();

        let mut par = DistanceRowCache::new(2);
        par.register(&ids);
        let (got_u, got_v) = par.pair_rows(&ps, 4, 5, true);
        assert_eq!(got_u, want_u);
        assert_eq!(got_v.to_vec(), want_v);
        assert_eq!(par.stats(), want_stats);
        assert!(par.slots[4].is_some() && par.slots[5].is_some());

        // Resident rows fall back to the plain path and score hits.
        let _ = par.pair_rows(&ps, 4, 5, true);
        let s = par.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }
}
