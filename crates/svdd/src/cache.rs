//! LRU cache of kernel matrix rows.
//!
//! SMO touches two kernel rows per iteration (the working pair) and revisits
//! the same small set of "active" rows many times before the working set
//! drifts. Materializing the full `ñ × ñ` Gram matrix would be quadratic in
//! memory, so — like libsvm, on which the paper's implementation is based —
//! we cache complete rows with LRU eviction and recompute on miss.

use dbsvec_geometry::{PointId, PointSet};

use crate::kernel::GaussianKernel;

/// Cached rows of the Gram matrix `K[i][j] = K(x_{ids[i]}, x_{ids[j]})`.
pub struct KernelCache<'a> {
    points: &'a PointSet,
    ids: &'a [PointId],
    kernel: GaussianKernel,
    /// `slots[i]` is `Some(row)` when row `i` is resident.
    slots: Vec<Option<Box<[f64]>>>,
    /// Resident row indices in LRU order (front = oldest).
    lru: Vec<usize>,
    capacity_rows: usize,
    hits: u64,
    misses: u64,
}

impl<'a> KernelCache<'a> {
    /// Creates a cache holding at most `capacity_rows` rows (at least 2, the
    /// SMO working-pair size).
    pub fn new(
        points: &'a PointSet,
        ids: &'a [PointId],
        kernel: GaussianKernel,
        capacity_rows: usize,
    ) -> Self {
        let n = ids.len();
        Self {
            points,
            ids,
            kernel,
            slots: (0..n).map(|_| None).collect(),
            lru: Vec::new(),
            capacity_rows: capacity_rows.max(2),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of target points (rows).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the target set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Returns row `i`, computing and caching it if absent.
    pub fn row(&mut self, i: usize) -> &[f64] {
        if self.slots[i].is_some() {
            self.hits += 1;
            self.touch(i);
        } else {
            self.misses += 1;
            self.insert(i);
        }
        self.slots[i].as_deref().expect("row just ensured resident")
    }

    /// A single kernel entry, bypassing the cache when the row is absent.
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        if let Some(row) = &self.slots[i] {
            return row[j];
        }
        if let Some(row) = &self.slots[j] {
            return row[i];
        }
        self.kernel.eval(
            self.points.point(self.ids[i]),
            self.points.point(self.ids[j]),
        )
    }

    /// `(hits, misses)` counters — used to validate cache effectiveness.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn insert(&mut self, i: usize) {
        if self.lru.len() >= self.capacity_rows {
            let evict = self.lru.remove(0);
            self.slots[evict] = None;
        }
        let pi = self.points.point(self.ids[i]);
        let row: Box<[f64]> = self
            .ids
            .iter()
            .map(|&id| self.kernel.eval(pi, self.points.point(id)))
            .collect();
        self.slots[i] = Some(row);
        self.lru.push(i);
    }

    fn touch(&mut self, i: usize) {
        if let Some(pos) = self.lru.iter().position(|&x| x == i) {
            self.lru.remove(pos);
            self.lru.push(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PointSet, Vec<PointId>) {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let ids = vec![0, 1, 2, 3];
        (ps, ids)
    }

    #[test]
    fn rows_match_direct_evaluation() {
        let (ps, ids) = setup();
        let k = GaussianKernel::from_width(1.0);
        let mut cache = KernelCache::new(&ps, &ids, k, 4);
        for i in 0..4 {
            let row = cache.row(i).to_vec();
            for (j, &v) in row.iter().enumerate() {
                let want = k.eval(ps.point(ids[i]), ps.point(ids[j]));
                assert!((v - want).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn lru_eviction_keeps_capacity() {
        let (ps, ids) = setup();
        let k = GaussianKernel::from_width(1.0);
        let mut cache = KernelCache::new(&ps, &ids, k, 2);
        cache.row(0);
        cache.row(1);
        cache.row(2); // evicts 0
        assert!(cache.slots[0].is_none());
        assert!(cache.slots[1].is_some());
        assert!(cache.slots[2].is_some());
        // Touch 1, then insert 3: 2 must be evicted, not 1.
        cache.row(1);
        cache.row(3);
        assert!(cache.slots[1].is_some());
        assert!(cache.slots[2].is_none());
    }

    #[test]
    fn hit_and_miss_counters() {
        let (ps, ids) = setup();
        let k = GaussianKernel::from_width(1.0);
        let mut cache = KernelCache::new(&ps, &ids, k, 4);
        cache.row(0);
        cache.row(0);
        cache.row(1);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 2);
    }

    #[test]
    fn entry_works_without_resident_rows() {
        let (ps, ids) = setup();
        let k = GaussianKernel::from_width(1.0);
        let cache = KernelCache::new(&ps, &ids, k, 2);
        let v = cache.entry(0, 3);
        assert!((v - k.eval(&[0.0], &[3.0])).abs() < 1e-15);
    }
}
