//! LRU cache of kernel matrix rows.
//!
//! SMO touches two kernel rows per iteration (the working pair) and revisits
//! the same small set of "active" rows many times before the working set
//! drifts. Materializing the full `ñ × ñ` Gram matrix would be quadratic in
//! memory, so — like libsvm, on which the paper's implementation is based —
//! we cache complete rows with LRU eviction and recompute on miss.

use dbsvec_geometry::{PointId, PointSet};

use crate::kernel::GaussianKernel;

/// Cached rows of the Gram matrix `K[i][j] = K(x_{ids[i]}, x_{ids[j]})`.
pub struct KernelCache<'a> {
    points: &'a PointSet,
    ids: &'a [PointId],
    kernel: GaussianKernel,
    /// `slots[i]` is `Some(row)` when row `i` is resident.
    slots: Vec<Option<Box<[f64]>>>,
    /// Resident row indices in LRU order (front = oldest).
    lru: Vec<usize>,
    capacity_rows: usize,
    hits: u64,
    misses: u64,
}

impl<'a> KernelCache<'a> {
    /// Creates a cache holding at most `capacity_rows` rows (at least 2, the
    /// SMO working-pair size).
    pub fn new(
        points: &'a PointSet,
        ids: &'a [PointId],
        kernel: GaussianKernel,
        capacity_rows: usize,
    ) -> Self {
        let n = ids.len();
        Self {
            points,
            ids,
            kernel,
            slots: (0..n).map(|_| None).collect(),
            lru: Vec::new(),
            capacity_rows: capacity_rows.max(2),
            hits: 0,
            misses: 0,
        }
    }

    /// Number of target points (rows).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the target set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Returns row `i`, computing and caching it if absent.
    pub fn row(&mut self, i: usize) -> &[f64] {
        if self.slots[i].is_some() {
            self.hits += 1;
            self.touch(i);
        } else {
            self.misses += 1;
            self.insert(i);
        }
        self.slots[i].as_deref().expect("row just ensured resident")
    }

    /// A single kernel entry, bypassing the cache when the row is absent.
    pub fn entry(&self, i: usize, j: usize) -> f64 {
        if let Some(row) = &self.slots[i] {
            return row[j];
        }
        if let Some(row) = &self.slots[j] {
            return row[i];
        }
        self.kernel.eval(
            self.points.point(self.ids[i]),
            self.points.point(self.ids[j]),
        )
    }

    /// `(hits, misses)` counters — used to validate cache effectiveness.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Visits the rows at `indices` in order, computing the missing ones
    /// across `threads` scoped worker threads first (per-thread shards,
    /// merged back into this cache).
    ///
    /// The hit/miss counters, LRU transitions, and row values are **bit
    /// identical** to calling [`KernelCache::row`] once per index in the
    /// same order: the shards only pre-compute values (each row is a pure
    /// function of the immutable target set), while all accounting is
    /// replayed sequentially in `indices` order — a repeated index scores
    /// a hit on its second visit, and a shard row whose slot was evicted
    /// again before a later revisit is recomputed as a fresh miss, exactly
    /// as the sequential path would. `threads <= 1` takes the sequential
    /// path outright.
    pub fn for_rows(
        &mut self,
        indices: &[usize],
        threads: usize,
        mut f: impl FnMut(usize, &[f64]),
    ) {
        if threads <= 1 || indices.len() < 2 {
            for &i in indices {
                let row = self.row(i);
                f(i, row);
            }
            return;
        }

        // Distinct absent rows, in first-occurrence order.
        let mut queued = vec![false; self.ids.len()];
        let mut missing: Vec<usize> = Vec::new();
        for &i in indices {
            if self.slots[i].is_none() && !queued[i] {
                queued[i] = true;
                missing.push(i);
            }
        }

        let mut shard: Vec<Option<Box<[f64]>>> = (0..self.ids.len()).map(|_| None).collect();
        if missing.len() >= 2 {
            let workers = threads.min(missing.len());
            let chunk = missing.len().div_ceil(workers);
            let (points, ids, kernel) = (self.points, self.ids, self.kernel);
            let computed: Vec<Vec<(usize, Box<[f64]>)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = missing
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|&i| (i, gram_row(points, ids, kernel, i)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("kernel-row worker panicked"))
                    .collect()
            });
            for (i, row) in computed.into_iter().flatten() {
                shard[i] = Some(row);
            }
        }

        // Sequential replay of the accounting, in request order.
        for &i in indices {
            if self.slots[i].is_some() {
                self.hits += 1;
                self.touch(i);
            } else {
                self.misses += 1;
                let row = shard[i].take().unwrap_or_else(|| self.compute_row(i));
                self.insert_row(i, row);
            }
            f(
                i,
                self.slots[i].as_deref().expect("row resident after replay"),
            );
        }
    }

    /// Fetches the SMO working pair `(i, j)`, computing both rows
    /// concurrently when `parallel` is set and neither is resident.
    ///
    /// Row `i` comes back as an owned copy (the gradient update needs both
    /// rows at once, and the cache hands out overlapping borrows).
    /// Accounting and LRU state match two sequential [`KernelCache::row`]
    /// calls exactly; the capacity floor of 2 keeps the pair resident
    /// together.
    pub fn pair_rows(&mut self, i: usize, j: usize, parallel: bool) -> (Vec<f64>, &[f64]) {
        if parallel && i != j && self.slots[i].is_none() && self.slots[j].is_none() {
            let (points, ids, kernel) = (self.points, self.ids, self.kernel);
            let (row_i, row_j) = std::thread::scope(|scope| {
                let handle = scope.spawn(move || gram_row(points, ids, kernel, i));
                let row_j = gram_row(points, ids, kernel, j);
                (handle.join().expect("kernel-row worker panicked"), row_j)
            });
            self.misses += 1;
            self.insert_row(i, row_i);
            self.misses += 1;
            self.insert_row(j, row_j);
            let row_i = self.slots[i]
                .as_deref()
                .expect("pair row survives one insertion (capacity >= 2)")
                .to_vec();
            (row_i, self.slots[j].as_deref().expect("row just inserted"))
        } else {
            let row_i = self.row(i).to_vec();
            (row_i, self.row(j))
        }
    }

    fn compute_row(&self, i: usize) -> Box<[f64]> {
        gram_row(self.points, self.ids, self.kernel, i)
    }

    fn insert(&mut self, i: usize) {
        let row = self.compute_row(i);
        self.insert_row(i, row);
    }

    fn insert_row(&mut self, i: usize, row: Box<[f64]>) {
        if self.lru.len() >= self.capacity_rows {
            let evict = self.lru.remove(0);
            self.slots[evict] = None;
        }
        self.slots[i] = Some(row);
        self.lru.push(i);
    }

    fn touch(&mut self, i: usize) {
        if let Some(pos) = self.lru.iter().position(|&x| x == i) {
            self.lru.remove(pos);
            self.lru.push(i);
        }
    }
}

/// One Gram-matrix row, computed from scratch. A pure function of the
/// target set, shared by the cached and the parallel shard paths so both
/// produce bit-identical values.
fn gram_row(points: &PointSet, ids: &[PointId], kernel: GaussianKernel, i: usize) -> Box<[f64]> {
    let pi = points.point(ids[i]);
    ids.iter()
        .map(|&id| kernel.eval(pi, points.point(id)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PointSet, Vec<PointId>) {
        let ps = PointSet::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let ids = vec![0, 1, 2, 3];
        (ps, ids)
    }

    #[test]
    fn rows_match_direct_evaluation() {
        let (ps, ids) = setup();
        let k = GaussianKernel::from_width(1.0);
        let mut cache = KernelCache::new(&ps, &ids, k, 4);
        for i in 0..4 {
            let row = cache.row(i).to_vec();
            for (j, &v) in row.iter().enumerate() {
                let want = k.eval(ps.point(ids[i]), ps.point(ids[j]));
                assert!((v - want).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn lru_eviction_keeps_capacity() {
        let (ps, ids) = setup();
        let k = GaussianKernel::from_width(1.0);
        let mut cache = KernelCache::new(&ps, &ids, k, 2);
        cache.row(0);
        cache.row(1);
        cache.row(2); // evicts 0
        assert!(cache.slots[0].is_none());
        assert!(cache.slots[1].is_some());
        assert!(cache.slots[2].is_some());
        // Touch 1, then insert 3: 2 must be evicted, not 1.
        cache.row(1);
        cache.row(3);
        assert!(cache.slots[1].is_some());
        assert!(cache.slots[2].is_none());
    }

    #[test]
    fn hit_and_miss_counters() {
        let (ps, ids) = setup();
        let k = GaussianKernel::from_width(1.0);
        let mut cache = KernelCache::new(&ps, &ids, k, 4);
        cache.row(0);
        cache.row(0);
        cache.row(1);
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 2);
    }

    #[test]
    fn entry_works_without_resident_rows() {
        let (ps, ids) = setup();
        let k = GaussianKernel::from_width(1.0);
        let cache = KernelCache::new(&ps, &ids, k, 2);
        let v = cache.entry(0, 3);
        assert!((v - k.eval(&[0.0], &[3.0])).abs() < 1e-15);
    }

    /// Delivered `(index, row)` pairs, `(hits, misses)`, and final slot
    /// residency of one request sequence — everything the parallel shard
    /// merge must reproduce.
    type OracleState = (Vec<(usize, Vec<f64>)>, (u64, u64), Vec<Option<Vec<f64>>>);

    /// Mirror of a request sequence through `row()` — the sequential
    /// oracle the parallel shard merge must reproduce exactly.
    fn sequential_oracle(
        ps: &PointSet,
        ids: &[PointId],
        capacity: usize,
        indices: &[usize],
    ) -> OracleState {
        let k = GaussianKernel::from_width(1.0);
        let mut cache = KernelCache::new(ps, ids, k, capacity);
        let mut seen = Vec::new();
        for &i in indices {
            seen.push((i, cache.row(i).to_vec()));
        }
        let slots = cache
            .slots
            .iter()
            .map(|s| s.as_deref().map(|r| r.to_vec()))
            .collect();
        (seen, cache.stats(), slots)
    }

    #[test]
    fn for_rows_shard_merge_equals_sequential_cache() {
        let mut ps = PointSet::new(2);
        for i in 0..12 {
            ps.push(&[i as f64 * 0.7, (i % 5) as f64]);
        }
        let ids: Vec<PointId> = (0..12).collect();
        let k = GaussianKernel::from_width(1.0);
        // Repeats, revisits after eviction, and an undersized capacity all
        // in one request stream.
        let indices = [0usize, 1, 2, 0, 3, 4, 5, 1, 6, 7, 0, 8, 9, 10, 11, 2, 2];
        for capacity in [2, 3, 8, 16] {
            let (want_rows, want_stats, want_slots) =
                sequential_oracle(&ps, &ids, capacity, &indices);
            for threads in [2, 3, 8] {
                let mut cache = KernelCache::new(&ps, &ids, k, capacity);
                let mut got_rows = Vec::new();
                cache.for_rows(&indices, threads, |i, row| got_rows.push((i, row.to_vec())));
                assert_eq!(got_rows, want_rows, "cap={capacity} threads={threads}");
                assert_eq!(
                    cache.stats(),
                    want_stats,
                    "cap={capacity} threads={threads}"
                );
                let got_slots: Vec<Option<Vec<f64>>> = cache
                    .slots
                    .iter()
                    .map(|s| s.as_deref().map(|r| r.to_vec()))
                    .collect();
                assert_eq!(got_slots, want_slots, "cap={capacity} threads={threads}");
                // No duplicate resident rows: the LRU list is a set.
                let mut lru = cache.lru.clone();
                lru.sort_unstable();
                lru.dedup();
                assert_eq!(lru.len(), cache.lru.len(), "duplicate rows in LRU");
            }
        }
    }

    #[test]
    fn for_rows_sequential_path_is_plain_row_calls() {
        let (ps, ids) = setup();
        let k = GaussianKernel::from_width(1.0);
        let indices = [0usize, 1, 0, 2, 3, 1];
        let (want_rows, want_stats, _) = sequential_oracle(&ps, &ids, 2, &indices);
        let mut cache = KernelCache::new(&ps, &ids, k, 2);
        let mut got = Vec::new();
        cache.for_rows(&indices, 1, |i, row| got.push((i, row.to_vec())));
        assert_eq!(got, want_rows);
        assert_eq!(cache.stats(), want_stats);
    }

    #[test]
    fn pair_rows_parallel_matches_sequential() {
        let mut ps = PointSet::new(1);
        for i in 0..6 {
            ps.push(&[i as f64]);
        }
        let ids: Vec<PointId> = (0..6).collect();
        let k = GaussianKernel::from_width(1.0);

        let mut seq = KernelCache::new(&ps, &ids, k, 2);
        let want_i = seq.row(4).to_vec();
        let want_j = seq.row(5).to_vec();
        let want_stats = seq.stats();

        let mut par = KernelCache::new(&ps, &ids, k, 2);
        let (got_i, got_j) = par.pair_rows(4, 5, true);
        assert_eq!(got_i, want_i);
        assert_eq!(got_j.to_vec(), want_j);
        assert_eq!(par.stats(), want_stats);
        assert!(par.slots[4].is_some() && par.slots[5].is_some());

        // Resident rows fall back to the plain path and score hits.
        let (_, _) = par.pair_rows(4, 5, true);
        assert_eq!(par.stats(), (2, 2));
    }
}
