//! Sequential Minimal Optimization for the (weighted) SVDD dual.
//!
//! The dual problem (paper Eq. 11, after dropping the constant linear term
//! `Σ α_i K_ii = 1` of the Gaussian kernel) is
//!
//! ```text
//! minimize   f(α) = αᵀ K α
//! subject to Σ_i α_i = 1,   0 <= α_i <= u_i        (u_i = ω_i C)
//! ```
//!
//! Because every coefficient in the equality constraint is `+1`, a feasible
//! direction moves mass from one multiplier to another. Each SMO iteration:
//!
//! 1. **selects** the pair with maximum first-order KKT violation —
//!    `i = argmin G_k` over `α_k < u_k` (most profitable to grow) and
//!    `j = argmax G_k` over `α_k > 0` (most profitable to shrink), where
//!    `G = 2Kα` is the gradient;
//! 2. **moves** `δ = (G_j − G_i) / (2η)` with curvature
//!    `η = K_ii + K_jj − 2K_ij = 2(1 − K_ij) > 0`, clipped to the box;
//! 3. **updates** the gradient with the two kernel rows:
//!    `G_k += 2δ (K_ik − K_jk)`.
//!
//! Convergence: the duality gap proxy `G_j − G_i` is monotone under exact
//! pair optimization (Keerthi et al.); iteration stops at
//! [`SmoOptions::tolerance`] or the iteration cap.
//!
//! Cost: O(active-set · ñ) gradient work plus O(ñ·d) per kernel-row cache
//! miss. With DBSVEC's small ν (few support vectors) the active set is tiny,
//! which is what makes per-expansion SVDD training effectively linear in ñ
//! (paper §IV-D).

use dbsvec_geometry::{PointId, PointSet};

use crate::cache::KernelCache;
use crate::kernel::GaussianKernel;
use crate::model::{SvddModel, ALPHA_TOL};
use crate::params::nu_to_c;

/// Solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct SmoOptions {
    /// Stop when the maximum KKT violation `G_j − G_i` drops below this.
    /// Gradient entries live in `[0, 2]` for a Gaussian kernel, so the
    /// default `1e-3` is a relative accuracy of about 5e-4 — DBSVEC only
    /// needs the *identity* of the boundary points, not polished
    /// multipliers, and the looser stop roughly halves SMO iterations.
    pub tolerance: f64,
    /// Hard iteration cap; `0` means `200·ñ + 10_000` (never reached in
    /// practice — typical solves take a few times the support-vector count).
    pub max_iterations: usize,
    /// Kernel-row cache capacity in rows; `0` means `min(ñ, 512)`.
    pub cache_rows: usize,
    /// Worker threads for batched kernel-row computation (the initial
    /// gradient rows and, on large targets, the per-iteration working
    /// pair). `1` (the default) keeps the solver on the exact sequential
    /// code path; `0` means all available cores. The solution, iteration
    /// count, and cache statistics are bit-identical at every setting —
    /// threads only precompute rows, all accounting replays in order.
    pub threads: usize,
}

impl Default for SmoOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-3,
            max_iterations: 0,
            cache_rows: 0,
            threads: 1,
        }
    }
}

impl SmoOptions {
    /// The effective worker count: `0` resolves to the machine's available
    /// parallelism.
    pub fn resolve_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }
}

/// Below this target size the per-iteration working pair is fetched
/// sequentially even when threads are available: two O(ñ·d) rows are too
/// cheap to amortize a spawn. The batched initial gradient (many rows per
/// scope) parallelizes at any size.
const PAIR_ROWS_PARALLEL_MIN: usize = 2048;

/// A weighted SVDD training problem over a subset of a [`PointSet`].
pub struct SvddProblem<'a> {
    points: &'a PointSet,
    ids: &'a [PointId],
    kernel: GaussianKernel,
    upper: Vec<f64>,
    options: SmoOptions,
}

impl<'a> SvddProblem<'a> {
    /// Creates a problem over `ids` with uniform unit bounds (`C = 1`,
    /// i.e. ν = 1/ñ — the `DBSVEC_min` setting). Use [`SvddProblem::with_nu`]
    /// or [`SvddProblem::with_bounds`] to change them.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty.
    pub fn new(points: &'a PointSet, ids: &'a [PointId], kernel: GaussianKernel) -> Self {
        assert!(!ids.is_empty(), "SVDD requires a nonempty target set");
        Self {
            points,
            ids,
            kernel,
            upper: vec![1.0; ids.len()],
            options: SmoOptions::default(),
        }
    }

    /// Sets uniform bounds from a penalty fraction ν: `u_i = C = 1/(ν·ñ)`.
    pub fn with_nu(mut self, nu: f64) -> Self {
        let c = nu_to_c(nu, self.ids.len());
        self.upper = vec![c; self.ids.len()];
        self
    }

    /// Sets per-point bounds `u_i = ω_i C` (the weighted dual of Eq. 11).
    ///
    /// # Panics
    ///
    /// Panics if the bound vector has the wrong length, contains
    /// non-positive entries, or sums below 1 (infeasible simplex).
    pub fn with_bounds(mut self, upper: Vec<f64>) -> Self {
        assert_eq!(upper.len(), self.ids.len(), "one bound per target point");
        assert!(
            upper.iter().all(|&u| u > 0.0 && u.is_finite()),
            "bounds must be positive"
        );
        let total: f64 = upper.iter().sum();
        assert!(
            total >= 1.0 - 1e-9,
            "Σ upper bounds = {total} < 1: dual infeasible"
        );
        self.upper = upper;
        self
    }

    /// Overrides solver options.
    pub fn with_options(mut self, options: SmoOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs SMO to convergence and returns the trained model.
    pub fn solve(self) -> SvddModel {
        let n = self.ids.len();
        let max_iter = if self.options.max_iterations == 0 {
            200 * n + 10_000
        } else {
            self.options.max_iterations
        };
        let cache_rows = if self.options.cache_rows == 0 {
            n.min(512)
        } else {
            self.options.cache_rows
        };
        let threads = self.options.resolve_threads();

        // ---- Initial feasible point: greedily fill bounds until Σα = 1.
        let mut alpha = vec![0.0; n];
        let mut remaining = 1.0;
        for (a, &u) in alpha.iter_mut().zip(&self.upper) {
            let take = u.min(remaining);
            *a = take;
            remaining -= take;
            if remaining <= 0.0 {
                break;
            }
        }
        debug_assert!(remaining <= 1e-9, "with_bounds guarantees feasibility");

        let mut cache = KernelCache::new(self.points, self.ids, self.kernel, cache_rows);

        // ---- Initial gradient G = 2Kα from the rows of nonzero multipliers.
        // The rows are independent, so `for_rows` may precompute them across
        // threads; the accumulation below runs on this thread in ascending
        // index order either way, keeping the float association identical.
        let mut grad = vec![0.0; n];
        let seeded: Vec<usize> = (0..n).filter(|&i| alpha[i] > 0.0).collect();
        cache.for_rows(&seeded, threads, |i, row| {
            let ai = alpha[i];
            for (g, &k) in grad.iter_mut().zip(row) {
                *g += 2.0 * ai * k;
            }
        });

        // ---- Main loop.
        let mut iterations = 0;
        while iterations < max_iter {
            // Working-set selection by maximum KKT violation.
            let mut i_up = usize::MAX; // candidate to increase
            let mut g_up = f64::INFINITY;
            let mut j_down = usize::MAX; // candidate to decrease
            let mut g_down = f64::NEG_INFINITY;
            for k in 0..n {
                if alpha[k] < self.upper[k] - ALPHA_TOL && grad[k] < g_up {
                    g_up = grad[k];
                    i_up = k;
                }
                if alpha[k] > ALPHA_TOL && grad[k] > g_down {
                    g_down = grad[k];
                    j_down = k;
                }
            }
            if i_up == usize::MAX || j_down == usize::MAX || i_up == j_down {
                break;
            }
            if g_down - g_up < self.options.tolerance {
                break; // KKT-optimal within tolerance
            }

            let (i, j) = (i_up, j_down);
            let k_ij = cache.entry(i, j);
            let eta = 2.0 * (1.0 - k_ij); // K_ii + K_jj − 2K_ij for Gaussian
            let max_step = (self.upper[i] - alpha[i]).min(alpha[j]);
            let delta = if eta > 1e-12 {
                ((g_down - g_up) / (2.0 * eta)).min(max_step)
            } else {
                // Coincident points: the objective is linear along the
                // direction; move as far as the box allows.
                max_step
            };
            if delta <= 0.0 {
                break; // numerically stuck; current iterate is KKT-ε optimal
            }

            alpha[i] += delta;
            alpha[j] -= delta;

            // Gradient maintenance with the two working rows (fetched
            // concurrently on large targets when both are cache misses).
            {
                let parallel = threads > 1 && n >= PAIR_ROWS_PARALLEL_MIN;
                let (row_i, row_j) = cache.pair_rows(i, j, parallel);
                for ((g, &ki), &kj) in grad.iter_mut().zip(&row_i).zip(row_j) {
                    *g += 2.0 * delta * (ki - kj);
                }
            }
            iterations += 1;
        }

        // ---- Radius and constants.
        let alpha_k_alpha: f64 = alpha.iter().zip(&grad).map(|(&a, &g)| a * g).sum::<f64>() / 2.0;
        let decision_at = |k: usize| 1.0 - grad[k] + alpha_k_alpha;

        // KKT: normal SVs sit exactly on the sphere. Average them for a
        // robust R²; fall back to bracketing when every SV is at its bound.
        let mut nsv_sum = 0.0;
        let mut nsv_count = 0usize;
        let mut max_inside = f64::NEG_INFINITY; // over α≈0 points (F <= R²)
        let mut min_outside = f64::INFINITY; // over bounded SVs (F >= R²)
        #[allow(clippy::needless_range_loop)] // k indexes alpha, upper, and grad together
        for k in 0..n {
            let f = decision_at(k);
            if alpha[k] <= ALPHA_TOL {
                max_inside = max_inside.max(f);
            } else if alpha[k] >= self.upper[k] - ALPHA_TOL {
                min_outside = min_outside.min(f);
            } else {
                nsv_sum += f;
                nsv_count += 1;
            }
        }
        let r_sq = if nsv_count > 0 {
            nsv_sum / nsv_count as f64
        } else {
            match (max_inside.is_finite(), min_outside.is_finite()) {
                (true, true) => 0.5 * (max_inside + min_outside),
                (true, false) => max_inside,
                (false, true) => min_outside,
                (false, false) => 0.0,
            }
        };

        SvddModel::new(
            self.ids.to_vec(),
            alpha,
            self.upper,
            self.kernel,
            r_sq,
            alpha_k_alpha,
            iterations,
            cache.stats(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SvType;
    use dbsvec_geometry::rng::SplitMix64;

    fn ring(n: usize, radius: f64) -> (PointSet, Vec<PointId>) {
        let mut ps = PointSet::new(2);
        for i in 0..n {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            ps.push(&[radius * a.cos(), radius * a.sin()]);
        }
        (ps, (0..n as u32).collect())
    }

    fn gaussian_blob(n: usize, seed: u64) -> (PointSet, Vec<PointId>) {
        let mut rng = SplitMix64::new(seed);
        let mut ps = PointSet::new(2);
        for _ in 0..n {
            // Irwin–Hall approximate normal.
            let x: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            let y: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
            ps.push(&[x, y]);
        }
        (ps, (0..n as u32).collect())
    }

    #[test]
    fn alphas_form_a_simplex_point() {
        let (ps, ids) = gaussian_blob(120, 5);
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.0))
            .with_nu(0.1)
            .solve();
        let sum: f64 = model.alphas().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "Σα = {sum}");
        assert!(model.alphas().iter().all(|&a| (-1e-12..=1.0).contains(&a)));
    }

    #[test]
    fn two_symmetric_points_split_mass_evenly() {
        let ps = PointSet::from_rows(&[vec![-1.0], vec![1.0]]);
        let ids = [0, 1];
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(1.0))
            .with_nu(0.5)
            .solve();
        assert!((model.alphas()[0] - 0.5).abs() < 1e-6);
        assert!((model.alphas()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn kkt_conditions_hold_at_solution() {
        let (ps, ids) = gaussian_blob(150, 7);
        let kernel = GaussianKernel::from_width(1.5);
        let model = SvddProblem::new(&ps, &ids, kernel).with_nu(0.2).solve();
        // Recompute the gradient from scratch and check the violation.
        let n = ids.len();
        let alpha = model.alphas();
        let mut grad = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                grad[i] += 2.0 * alpha[j] * kernel.eval(ps.point(ids[i]), ps.point(ids[j]));
            }
        }
        let c = 1.0 / (0.2 * n as f64);
        let g_up = (0..n)
            .filter(|&k| alpha[k] < c - 1e-9)
            .map(|k| grad[k])
            .fold(f64::INFINITY, f64::min);
        let g_down = (0..n)
            .filter(|&k| alpha[k] > 1e-9)
            .map(|k| grad[k])
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            g_down - g_up < 1e-3,
            "KKT violation {} too large",
            g_down - g_up
        );
    }

    #[test]
    fn support_vectors_lie_on_the_boundary_of_a_blob() {
        let (ps, ids) = gaussian_blob(200, 11);
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.0))
            .with_nu(0.1)
            .solve();
        let centroid = ps.centroid().unwrap();
        let mean_dist: f64 = ids
            .iter()
            .map(|&id| dbsvec_geometry::euclidean(ps.point(id), &centroid))
            .sum::<f64>()
            / ids.len() as f64;
        let svs = model.support_vectors();
        assert!(!svs.is_empty());
        let sv_mean_dist: f64 = svs
            .iter()
            .map(|&id| dbsvec_geometry::euclidean(ps.point(id), &centroid))
            .sum::<f64>()
            / svs.len() as f64;
        assert!(
            sv_mean_dist > mean_dist,
            "support vectors ({sv_mean_dist:.3}) should be farther out than average ({mean_dist:.3})"
        );
    }

    #[test]
    fn decision_separates_inside_from_far_outside() {
        let (ps, ids) = ring(48, 1.0);
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(1.0))
            .with_nu(0.5)
            .solve();
        let inside = model.decision(&ps, &[0.0, 0.0]);
        let on_data = model.decision(&ps, &[1.0, 0.0]);
        let outside = model.decision(&ps, &[5.0, 5.0]);
        assert!(inside < outside);
        assert!(on_data < outside);
        assert!(model.contains(&ps, &[1.0, 0.0]));
        assert!(!model.contains(&ps, &[5.0, 5.0]));
    }

    #[test]
    fn nu_controls_support_vector_count() {
        let (ps, ids) = gaussian_blob(200, 13);
        let kernel = GaussianKernel::from_width(2.0);
        let few = SvddProblem::new(&ps, &ids, kernel).with_nu(0.05).solve();
        let many = SvddProblem::new(&ps, &ids, kernel).with_nu(0.5).solve();
        assert!(
            few.num_support_vectors() < many.num_support_vectors(),
            "ν=0.05 gave {} SVs, ν=0.5 gave {}",
            few.num_support_vectors(),
            many.num_support_vectors()
        );
        // ν lower-bounds the SV fraction (Schölkopf & Smola).
        assert!(many.num_support_vectors() as f64 >= 0.5 * 200.0 * 0.9);
    }

    #[test]
    fn weighted_bounds_are_respected() {
        let (ps, ids) = gaussian_blob(60, 17);
        let mut upper = vec![0.5; 60];
        upper[0] = 1e-6; // effectively forbid point 0
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.0))
            .with_bounds(upper)
            .solve();
        assert!(model.alphas()[0] <= 1e-6 + 1e-12);
    }

    #[test]
    fn single_point_target_is_trivial() {
        let ps = PointSet::from_rows(&[vec![3.0, 4.0]]);
        let model = SvddProblem::new(&ps, &[0], GaussianKernel::from_width(1.0)).solve();
        assert_eq!(model.alphas(), &[1.0]);
        assert_eq!(model.support_vectors(), vec![0]);
        assert!(model.contains(&ps, &[3.0, 4.0]));
    }

    #[test]
    fn duplicate_points_do_not_stall() {
        let ps = PointSet::from_rows(&vec![vec![1.0, 1.0]; 30]);
        let ids: Vec<PointId> = (0..30).collect();
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(1.0))
            .with_nu(0.3)
            .solve();
        let sum: f64 = model.alphas().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_across_runs() {
        let (ps, ids) = gaussian_blob(100, 23);
        let kernel = GaussianKernel::from_width(1.7);
        let a = SvddProblem::new(&ps, &ids, kernel).with_nu(0.15).solve();
        let b = SvddProblem::new(&ps, &ids, kernel).with_nu(0.15).solve();
        assert_eq!(a.alphas(), b.alphas());
        assert_eq!(a.radius_sq(), b.radius_sq());
    }

    #[test]
    fn threads_do_not_change_the_solution() {
        // ν = 0.3 seeds ~60 nonzero multipliers, so the batched initial
        // gradient genuinely fans out; the solution must stay bit-identical.
        let (ps, ids) = gaussian_blob(200, 41);
        let kernel = GaussianKernel::from_width(1.6);
        let solve = |threads: usize| {
            let options = SmoOptions {
                threads,
                ..SmoOptions::default()
            };
            SvddProblem::new(&ps, &ids, kernel)
                .with_nu(0.3)
                .with_options(options)
                .solve()
        };
        let base = solve(1);
        for threads in [2, 4, 8] {
            let got = solve(threads);
            assert_eq!(base.alphas(), got.alphas(), "{threads} threads");
            assert_eq!(base.iterations(), got.iterations(), "{threads} threads");
            assert_eq!(base.cache_stats(), got.cache_stats(), "{threads} threads");
            assert_eq!(base.radius_sq(), got.radius_sq(), "{threads} threads");
            assert_eq!(
                base.support_vectors(),
                got.support_vectors(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let options = SmoOptions {
            threads: 0,
            ..SmoOptions::default()
        };
        assert!(options.resolve_threads() >= 1);
        assert_eq!(SmoOptions::default().resolve_threads(), 1);
    }

    #[test]
    fn sv_types_partition_correctly() {
        let (ps, ids) = gaussian_blob(150, 29);
        let model = SvddProblem::new(&ps, &ids, GaussianKernel::from_width(2.0))
            .with_nu(0.2)
            .solve();
        let mut interior = 0;
        let mut normal = 0;
        let mut bounded = 0;
        for i in 0..ids.len() {
            match model.sv_type(i) {
                SvType::Interior => interior += 1,
                SvType::Normal => normal += 1,
                SvType::Bounded => bounded += 1,
            }
        }
        assert_eq!(interior + normal + bounded, ids.len());
        assert_eq!(normal + bounded, model.num_support_vectors());
        assert!(interior > 0, "most blob points should be interior");
    }

    #[test]
    fn solver_objective_not_worse_than_uniform() {
        let (ps, ids) = gaussian_blob(80, 31);
        let kernel = GaussianKernel::from_width(2.0);
        let model = SvddProblem::new(&ps, &ids, kernel).with_nu(0.5).solve();
        let objective = |alpha: &[f64]| {
            let mut f = 0.0;
            for i in 0..ids.len() {
                for j in 0..ids.len() {
                    f += alpha[i] * alpha[j] * kernel.eval(ps.point(ids[i]), ps.point(ids[j]));
                }
            }
            f
        };
        let uniform = vec![1.0 / ids.len() as f64; ids.len()];
        assert!(objective(model.alphas()) <= objective(&uniform) + 1e-9);
    }
}
